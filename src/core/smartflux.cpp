#include "core/smartflux.h"

#include <algorithm>

#include "common/error.h"
#include "common/logging.h"

namespace smartflux::core {

namespace {

/// Audit-wave controller: records what the QoD classifier *would* decide for
/// every queried tolerant step, then forces execution anyway. Forwarding the
/// execution notifications keeps the QoD impact accumulators consistent with
/// the fact that the steps really ran.
class AuditController final : public wms::TriggerController {
 public:
  AuditController(QodController& qod, std::vector<int>& predicted)
      : qod_(&qod), predicted_(&predicted) {}

  void begin_wave(ds::Timestamp wave) override { qod_->begin_wave(wave); }

  bool should_execute(const wms::WorkflowSpec& spec, std::size_t step_index,
                      ds::Timestamp wave) override {
    const bool execute = qod_->should_execute(spec, step_index, wave);
    const std::size_t ord = qod_->index().ordinal_of(step_index);
    (*predicted_)[ord] = execute ? 1 : 0;
    return true;  // audit waves are synchronous: every queried step runs
  }

  void on_step_executed(const wms::WorkflowSpec& spec, std::size_t step_index,
                        ds::Timestamp wave) override {
    qod_->on_step_executed(spec, step_index, wave);
  }

  void end_wave(ds::Timestamp wave) override { qod_->end_wave(wave); }

 private:
  QodController* qod_;
  std::vector<int>* predicted_;
};

}  // namespace

SmartFluxEngine::SmartFluxEngine(wms::WorkflowEngine& engine, SmartFluxOptions options)
    : engine_(&engine), options_(options), predictor_(options.predictor) {}

std::vector<wms::WaveResult> SmartFluxEngine::train(ds::Timestamp first_wave,
                                                    std::size_t waves) {
  SF_CHECK(waves > 0, "training needs at least one wave");
  if (!trainer_) {
    trainer_ = std::make_unique<TrainingController>(engine_->spec(), engine_->store(),
                                                    options_.monitor);
  }
  phase_ = Phase::kTraining;
  auto results = engine_->run_waves(first_wave, waves, *trainer_);
  SF_LOG_INFO("smartflux") << "training phase: knowledge base now has "
                           << trainer_->knowledge_base().size() << " examples";
  return results;
}

void SmartFluxEngine::build_model() {
  if (!trainer_ || trainer_->knowledge_base().empty()) {
    throw StateError("no training data collected — run train() first");
  }
  predictor_.train(trainer_->knowledge_base());
  // A fresh QoD controller: its impact baselines re-anchor on the current
  // store state at the first application wave.
  qod_ = std::make_unique<QodController>(engine_->spec(), engine_->store(), predictor_,
                                         options_.monitor);
  if (options_.audit.enabled()) {
    const TolerantIndex& index = qod_->index();
    audit_monitors_.clear();
    audit_monitors_.reserve(index.count());
    bounds_.clear();
    bounds_.reserve(index.count());
    for (std::size_t step_index : index.step_indices()) {
      const wms::StepSpec& step = engine_->spec().step_at(step_index);
      audit_monitors_.emplace_back(step, options_.monitor);
      // Anchor on the current outputs: only changes the steps write from now
      // on count as deferred error.
      audit_monitors_.back().reset_outputs(engine_->store());
      bounds_.push_back(*step.max_error);
    }
    audit_window_.clear();
    waves_since_audit_ = 0;
  }
  phase_ = Phase::kReady;
}

Predictor::TestReport SmartFluxEngine::test() const {
  if (!trainer_ || trainer_->knowledge_base().empty()) {
    throw StateError("no training data collected — run train() first");
  }
  return predictor_.test(trainer_->knowledge_base(), options_.cv_folds);
}

bool SmartFluxEngine::passes_gates(const Predictor::TestReport& report) const {
  return report.mean_accuracy >= options_.min_accuracy &&
         report.mean_recall >= options_.min_recall;
}

std::vector<wms::WaveResult> SmartFluxEngine::run(ds::Timestamp first_wave, std::size_t waves) {
  std::vector<wms::WaveResult> out;
  out.reserve(waves);
  for (std::size_t k = 0; k < waves; ++k) out.push_back(run_wave(first_wave + k));
  return out;
}

wms::WaveResult SmartFluxEngine::run_wave(ds::Timestamp wave) {
  if (!qod_) throw StateError("model not built — call build_model() after training");
  if (phase_ == Phase::kDegraded) return run_degraded_wave(wave);
  phase_ = Phase::kApplication;
  if (options_.audit.enabled() && ++waves_since_audit_ >= options_.audit.audit_every) {
    return run_audit_wave(wave);
  }
  wms::WaveResult result = engine_->run_wave(wave, *qod_);
  if (options_.audit.enabled()) reset_executed_outputs(result);
  return result;
}

wms::WaveResult SmartFluxEngine::run_audit_wave(ds::Timestamp wave) {
  waves_since_audit_ = 0;
  const TolerantIndex& index = qod_->index();
  // Steps not queried this wave (ineligible) default to "execute" so they can
  // never register as a false negative below.
  std::vector<int> predicted(index.count(), 1);
  AuditController audit(*qod_, predicted);
  wms::WaveResult result = engine_->run_wave(wave, audit);
  ++audit_stats_.audits_run;

  bool violation = false;
  for (std::size_t ord = 0; ord < index.count(); ++ord) {
    const std::size_t step_index = index.step_indices()[ord];
    // Quarantined/failed steps did not actually run: their deferred error is
    // still pending and will be measured at the next successful audit.
    if (result.status[step_index] != wms::StepStatus::kExecuted) continue;
    const double eps = audit_monitors_[ord].observe_outputs(engine_->store());
    audit_monitors_[ord].reset_outputs(engine_->store());
    if (predicted[ord] == 0 && eps > bounds_[ord]) {
      violation = true;
      SF_LOG_INFO("smartflux") << "audit wave " << wave << ": step '"
                               << engine_->spec().step_at(step_index).id
                               << "' would have been skipped with true error " << eps
                               << " > max_error " << bounds_[ord];
    }
  }
  if (violation) ++audit_stats_.violations;
  audit_window_.push_back(violation);
  if (audit_window_.size() > options_.audit.window) audit_window_.erase(audit_window_.begin());

  if (audit_window_.size() >= options_.audit.min_audits) {
    const auto violations =
        static_cast<double>(std::count(audit_window_.begin(), audit_window_.end(), true));
    const double rate = violations / static_cast<double>(audit_window_.size());
    if (rate > options_.audit.max_violation_rate) enter_degraded_mode(wave);
  }
  return result;
}

wms::WaveResult SmartFluxEngine::run_degraded_wave(ds::Timestamp wave) {
  wms::WaveResult result = engine_->run_wave(wave, *trainer_);
  // Synchronous execution clears each executed step's deferred error; keep
  // the audit monitors anchored so post-recovery audits start clean.
  reset_executed_outputs(result);
  if (audit_stats_.retrain_waves_left > 0 && --audit_stats_.retrain_waves_left == 0) {
    SF_LOG_INFO("smartflux") << "degraded capture complete at wave " << wave
                             << ": rebuilding model from "
                             << trainer_->knowledge_base().size() << " examples";
    build_model();  // fresh predictor + QoD controller + audit anchors
    phase_ = Phase::kApplication;
  }
  return result;
}

void SmartFluxEngine::enter_degraded_mode(ds::Timestamp wave) {
  ++audit_stats_.degradations;
  audit_stats_.retrain_waves_left = options_.audit.retrain_waves;
  audit_window_.clear();
  waves_since_audit_ = 0;
  // Keep everything learned so far and append fresh tuples that reflect the
  // drifted behaviour (§3.1 online re-training).
  trainer_ = std::make_unique<TrainingController>(engine_->spec(), engine_->store(),
                                                  options_.monitor,
                                                  trainer_->take_knowledge_base());
  trainer_->anchor(engine_->store());
  phase_ = Phase::kDegraded;
  SF_LOG_INFO("smartflux") << "QoD guard: violation rate exceeded bound at wave " << wave
                           << " — degrading to synchronous capture for "
                           << options_.audit.retrain_waves << " waves";
}

void SmartFluxEngine::reset_executed_outputs(const wms::WaveResult& result) {
  if (!options_.audit.enabled()) return;
  const TolerantIndex& index = qod_->index();
  for (std::size_t ord = 0; ord < index.count(); ++ord) {
    const std::size_t step_index = index.step_indices()[ord];
    if (result.status[step_index] == wms::StepStatus::kExecuted) {
      audit_monitors_[ord].reset_outputs(engine_->store());
    }
  }
}

void SmartFluxEngine::restore_knowledge_base(KnowledgeBase kb) {
  trainer_ = std::make_unique<TrainingController>(engine_->spec(), engine_->store(),
                                                  options_.monitor, std::move(kb));
  trainer_->anchor(engine_->store());
  if (phase_ == Phase::kIdle) phase_ = Phase::kTraining;
}

void SmartFluxEngine::resume_from_journal(const wms::WaveJournal& journal) {
  if (!qod_) throw StateError("model not built — call build_model() before resuming");
  engine_->restore_from_journal(journal);
  // The datastore is the durable layer: every accumulation restarts from its
  // surviving state, exactly as if the steps had just executed.
  qod_->anchor(engine_->store());
  for (auto& monitor : audit_monitors_) monitor.reset_outputs(engine_->store());
  audit_window_.clear();
  waves_since_audit_ = 0;
  phase_ = Phase::kApplication;
}

const KnowledgeBase& SmartFluxEngine::knowledge_base() const {
  if (!trainer_) throw StateError("no training phase has run yet");
  return trainer_->knowledge_base();
}

QodController& SmartFluxEngine::controller() {
  if (!qod_) throw StateError("model not built — call build_model() after training");
  return *qod_;
}

}  // namespace smartflux::core
