#pragma once

#include <memory>
#include <vector>

#include "core/knowledge_base.h"
#include "core/monitoring.h"
#include "core/predictor.h"
#include "wms/engine.h"

namespace smartflux::core {

/// Maps workflow step indices to feature/label columns over the
/// error-tolerant steps, shared by the training and application controllers.
class TolerantIndex {
 public:
  explicit TolerantIndex(const wms::WorkflowSpec& spec);

  std::size_t count() const noexcept { return tolerant_.size(); }
  const std::vector<std::size_t>& step_indices() const noexcept { return tolerant_; }
  /// Feature column for a spec step index, or npos if not tolerant.
  std::size_t ordinal_of(std::size_t step_index) const noexcept;
  std::vector<std::string> step_ids(const wms::WorkflowSpec& spec) const;
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

 private:
  std::vector<std::size_t> tolerant_;           // ordinal -> step index
  std::vector<std::size_t> ordinal_of_;         // step index -> ordinal or npos
};

/// Training-mode controller (§3.2 "Training Phase" / §4.1 training mode):
/// executes every step synchronously while simulating the deferred-execution
/// policy — per wave it logs each tolerant step's accumulated input impact ι
/// and whether the simulated accumulated error ε exceeds max_ε; on a
/// simulated execution both accumulations reset.
class TrainingController final : public wms::TriggerController {
 public:
  TrainingController(const wms::WorkflowSpec& spec, const ds::DataStore& store,
                     StepMonitor::Options options);
  /// Resumes knowledge capture into an existing knowledge base (online
  /// re-training / degradation recovery): `resume_kb` must have been built
  /// for the same tolerant-step layout.
  TrainingController(const wms::WorkflowSpec& spec, const ds::DataStore& store,
                     StepMonitor::Options options, KnowledgeBase resume_kb);

  /// Re-anchors every monitor on the store's current state, so capture that
  /// starts mid-stream (e.g. after adaptive waves) does not see the entire
  /// accumulated history as one giant first-wave change.
  void anchor(const ds::DataStore& store);

  void begin_wave(ds::Timestamp wave) override;
  bool should_execute(const wms::WorkflowSpec& spec, std::size_t step_index,
                      ds::Timestamp wave) override;
  void on_step_executed(const wms::WorkflowSpec& spec, std::size_t step_index,
                        ds::Timestamp wave) override;
  void end_wave(ds::Timestamp wave) override;

  const KnowledgeBase& knowledge_base() const noexcept { return kb_; }
  KnowledgeBase take_knowledge_base() { return std::move(kb_); }
  const TolerantIndex& index() const noexcept { return index_; }

 private:
  const ds::DataStore* store_;
  TolerantIndex index_;
  std::vector<StepMonitor> monitors_;   // per tolerant ordinal
  std::vector<double> bounds_;          // max_ε per tolerant ordinal
  KnowledgeBase kb_;
  TrainingRow current_row_;
};

/// Application-mode controller (§4.1 execution mode): the paper's QoD Engine.
/// At each triggering query it folds the step's fresh input impact into the
/// feature vector, asks the Predictor which steps exceed their bound, and
/// triggers accordingly; an actual execution resets that step's impact
/// accumulation.
class QodController final : public wms::TriggerController {
 public:
  QodController(const wms::WorkflowSpec& spec, const ds::DataStore& store,
                const Predictor& predictor, StepMonitor::Options options);

  void begin_wave(ds::Timestamp wave) override;
  bool should_execute(const wms::WorkflowSpec& spec, std::size_t step_index,
                      ds::Timestamp wave) override;
  void on_step_executed(const wms::WorkflowSpec& spec, std::size_t step_index,
                        ds::Timestamp wave) override;

  /// Re-anchors impact accumulation on the store's current state (used when
  /// resuming from a wave journal after a crash: the store is the durable
  /// layer, so impacts restart from its surviving state).
  void anchor(const ds::DataStore& store);

  /// Decisions of the last completed/current wave, per tolerant ordinal
  /// (1 = execute). Steps not queried in a wave keep 0.
  const std::vector<int>& last_decisions() const noexcept { return decisions_; }
  /// Current accumulated impact feature vector.
  const std::vector<double>& features() const noexcept { return features_; }
  const TolerantIndex& index() const noexcept { return index_; }

  std::size_t skipped_count() const noexcept { return skipped_; }
  std::size_t triggered_count() const noexcept { return triggered_; }

 private:
  const ds::DataStore* store_;
  const Predictor* predictor_;
  TolerantIndex index_;
  std::vector<StepMonitor> monitors_;
  std::vector<double> features_;
  std::vector<int> decisions_;
  std::size_t skipped_ = 0;
  std::size_t triggered_ = 0;
};

}  // namespace smartflux::core
