#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "core/change_metric.h"

namespace smartflux::core {

/// Compiles a metric expression into a ChangeMetric factory — the high-level
/// DSL for non-expert users that the paper lists as future work (§4.2). The
/// expression is evaluated once per compute() over statistics accumulated
/// across the modified elements of a container.
///
/// Variables (per metric evaluation):
///   m              number of modified elements
///   n              total number of elements in the container
///   sum_abs_diff   Σ |x − x′| over modified elements
///   sum_sq_diff    Σ (x − x′)² over modified elements
///   sum_max        Σ max(x, x′) over modified elements
///   sum_cur        Σ x over modified elements
///   sum_prev_mod   Σ x′ over modified elements
///   max_abs_diff   max |x − x′| over modified elements
///   sum_prev       Σ x′ over ALL elements of the container
///
/// Functions: sqrt(e), abs(e), min(a,b), max(a,b), clamp01(e).
/// Operators: + − * / with usual precedence and parentheses; numeric
/// literals in decimal or scientific notation. Division by zero evaluates
/// to 0 (metrics must stay finite).
///
/// The paper's built-in equations expressed in the DSL:
///   Eq. 1:  "sum_abs_diff * m"
///   Eq. 2:  "clamp01((sum_abs_diff * m) / (sum_max * n))"
///   Eq. 3:  "clamp01((sum_abs_diff * m) / (sum_prev * n))"
///   Eq. 4:  "sqrt(sum_sq_diff / m)"
///
/// Throws smartflux::InvalidArgument (with position information) on syntax
/// errors or unknown identifiers.
std::function<std::unique_ptr<ChangeMetric>()> compile_metric(std::string_view expression);

/// Convenience: compile and instantiate once.
std::unique_ptr<ChangeMetric> make_dsl_metric(std::string_view expression);

}  // namespace smartflux::core
