#include "core/metric_dsl.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <map>
#include <vector>

#include "common/error.h"

namespace smartflux::core {

namespace {

/// Statistics accumulated over the modified elements (plus the container
/// totals supplied to compute()). This is the DSL's variable environment.
struct Stats {
  double m = 0.0;
  double n = 0.0;
  double sum_abs_diff = 0.0;
  double sum_sq_diff = 0.0;
  double sum_max = 0.0;
  double sum_cur = 0.0;
  double sum_prev_mod = 0.0;
  double max_abs_diff = 0.0;
  double sum_prev = 0.0;
};

using VariableGetter = double (*)(const Stats&);

const std::map<std::string, VariableGetter, std::less<>>& variable_table() {
  static const std::map<std::string, VariableGetter, std::less<>> kTable{
      {"m", [](const Stats& s) { return s.m; }},
      {"n", [](const Stats& s) { return s.n; }},
      {"sum_abs_diff", [](const Stats& s) { return s.sum_abs_diff; }},
      {"sum_sq_diff", [](const Stats& s) { return s.sum_sq_diff; }},
      {"sum_max", [](const Stats& s) { return s.sum_max; }},
      {"sum_cur", [](const Stats& s) { return s.sum_cur; }},
      {"sum_prev_mod", [](const Stats& s) { return s.sum_prev_mod; }},
      {"max_abs_diff", [](const Stats& s) { return s.max_abs_diff; }},
      {"sum_prev", [](const Stats& s) { return s.sum_prev; }},
  };
  return kTable;
}

struct Expr {
  virtual ~Expr() = default;
  virtual double eval(const Stats& stats) const = 0;
};
using ExprPtr = std::shared_ptr<const Expr>;

struct Literal final : Expr {
  explicit Literal(double v) : value(v) {}
  double eval(const Stats&) const override { return value; }
  double value;
};

struct Variable final : Expr {
  explicit Variable(VariableGetter g) : getter(g) {}
  double eval(const Stats& stats) const override { return getter(stats); }
  VariableGetter getter;
};

struct Binary final : Expr {
  Binary(char op, ExprPtr l, ExprPtr r) : op(op), lhs(std::move(l)), rhs(std::move(r)) {}
  double eval(const Stats& stats) const override {
    const double a = lhs->eval(stats);
    const double b = rhs->eval(stats);
    switch (op) {
      case '+': return a + b;
      case '-': return a - b;
      case '*': return a * b;
      case '/': return b == 0.0 ? 0.0 : a / b;  // metrics must stay finite
    }
    return 0.0;
  }
  char op;
  ExprPtr lhs, rhs;
};

struct Call final : Expr {
  enum class Fn { kSqrt, kAbs, kMin, kMax, kClamp01 };
  Call(Fn fn, std::vector<ExprPtr> args) : fn(fn), args(std::move(args)) {}
  double eval(const Stats& stats) const override {
    switch (fn) {
      case Fn::kSqrt: {
        const double v = args[0]->eval(stats);
        return v <= 0.0 ? 0.0 : std::sqrt(v);
      }
      case Fn::kAbs: return std::abs(args[0]->eval(stats));
      case Fn::kMin: return std::min(args[0]->eval(stats), args[1]->eval(stats));
      case Fn::kMax: return std::max(args[0]->eval(stats), args[1]->eval(stats));
      case Fn::kClamp01: return std::clamp(args[0]->eval(stats), 0.0, 1.0);
    }
    return 0.0;
  }
  Fn fn;
  std::vector<ExprPtr> args;
};

/// Recursive-descent parser over the expression grammar:
///   expr    := term (('+'|'-') term)*
///   term    := unary (('*'|'/') unary)*
///   unary   := '-' unary | primary
///   primary := number | identifier | identifier '(' expr (',' expr)* ')'
///            | '(' expr ')'
class DslParser {
 public:
  explicit DslParser(std::string_view text) : text_(text) {}

  ExprPtr parse() {
    auto expr = parse_expr();
    skip_space();
    if (pos_ != text_.size()) fail("unexpected trailing input");
    return expr;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw InvalidArgument("metric DSL error at position " + std::to_string(pos_) + ": " +
                          message + " in '" + std::string(text_) + "'");
  }

  void skip_space() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) ++pos_;
  }

  bool consume(char c) {
    skip_space();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  ExprPtr parse_expr() {
    auto lhs = parse_term();
    for (;;) {
      if (consume('+')) {
        lhs = std::make_shared<Binary>('+', lhs, parse_term());
      } else if (consume('-')) {
        lhs = std::make_shared<Binary>('-', lhs, parse_term());
      } else {
        return lhs;
      }
    }
  }

  ExprPtr parse_term() {
    auto lhs = parse_unary();
    for (;;) {
      if (consume('*')) {
        lhs = std::make_shared<Binary>('*', lhs, parse_unary());
      } else if (consume('/')) {
        lhs = std::make_shared<Binary>('/', lhs, parse_unary());
      } else {
        return lhs;
      }
    }
  }

  ExprPtr parse_unary() {
    if (consume('-')) {
      return std::make_shared<Binary>('-', std::make_shared<Literal>(0.0), parse_unary());
    }
    return parse_primary();
  }

  ExprPtr parse_primary() {
    skip_space();
    if (pos_ >= text_.size()) fail("unexpected end of expression");
    const char c = text_[pos_];

    if (std::isdigit(static_cast<unsigned char>(c)) || c == '.') {
      std::size_t consumed = 0;
      double value = 0.0;
      try {
        value = std::stod(std::string(text_.substr(pos_)), &consumed);
      } catch (const std::exception&) {
        fail("malformed number");
      }
      pos_ += consumed;
      return std::make_shared<Literal>(value);
    }

    if (c == '(') {
      ++pos_;
      auto inner = parse_expr();
      if (!consume(')')) fail("expected ')'");
      return inner;
    }

    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      const std::size_t start = pos_;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '_')) {
        ++pos_;
      }
      const std::string_view name = text_.substr(start, pos_ - start);

      if (consume('(')) {
        static const std::map<std::string, std::pair<Call::Fn, std::size_t>, std::less<>>
            kFunctions{{"sqrt", {Call::Fn::kSqrt, 1}},
                       {"abs", {Call::Fn::kAbs, 1}},
                       {"min", {Call::Fn::kMin, 2}},
                       {"max", {Call::Fn::kMax, 2}},
                       {"clamp01", {Call::Fn::kClamp01, 1}}};
        auto it = kFunctions.find(name);
        if (it == kFunctions.end()) fail("unknown function '" + std::string(name) + "'");
        std::vector<ExprPtr> args;
        args.push_back(parse_expr());
        while (consume(',')) args.push_back(parse_expr());
        if (!consume(')')) fail("expected ')' after function arguments");
        if (args.size() != it->second.second) {
          fail("function '" + std::string(name) + "' expects " +
               std::to_string(it->second.second) + " argument(s)");
        }
        return std::make_shared<Call>(it->second.first, std::move(args));
      }

      auto it = variable_table().find(name);
      if (it == variable_table().end()) fail("unknown variable '" + std::string(name) + "'");
      return std::make_shared<Variable>(it->second);
    }

    fail(std::string("unexpected character '") + c + "'");
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

/// ChangeMetric backed by a compiled DSL expression.
class DslMetric final : public ChangeMetric {
 public:
  DslMetric(ExprPtr expr, std::string source) : expr_(std::move(expr)), source_(std::move(source)) {}

  void reset() noexcept override { stats_ = Stats{}; }

  void update(double current, double previous) noexcept override {
    const double diff = current - previous;
    stats_.m += 1.0;
    stats_.sum_abs_diff += std::abs(diff);
    stats_.sum_sq_diff += diff * diff;
    stats_.sum_max += std::max(current, previous);
    stats_.sum_cur += current;
    stats_.sum_prev_mod += previous;
    stats_.max_abs_diff = std::max(stats_.max_abs_diff, std::abs(diff));
  }

  double compute(std::size_t total_elements, double previous_total_sum) const noexcept override {
    Stats stats = stats_;
    stats.n = static_cast<double>(total_elements);
    stats.sum_prev = previous_total_sum;
    return expr_->eval(stats);
  }

  std::unique_ptr<ChangeMetric> clone() const override {
    return std::make_unique<DslMetric>(expr_, source_);
  }

  std::string name() const override { return "DslMetric(" + source_ + ")"; }

 private:
  ExprPtr expr_;
  std::string source_;
  Stats stats_;
};

}  // namespace

std::function<std::unique_ptr<ChangeMetric>()> compile_metric(std::string_view expression) {
  auto expr = DslParser(expression).parse();
  std::string source(expression);
  return [expr = std::move(expr), source = std::move(source)]() {
    return std::make_unique<DslMetric>(expr, source);
  };
}

std::unique_ptr<ChangeMetric> make_dsl_metric(std::string_view expression) {
  return compile_metric(expression)();
}

}  // namespace smartflux::core
