#include "core/qod_engine.h"

#include "common/error.h"
#include "common/logging.h"

namespace smartflux::core {

TolerantIndex::TolerantIndex(const wms::WorkflowSpec& spec)
    : tolerant_(spec.error_tolerant_steps()), ordinal_of_(spec.size(), npos) {
  for (std::size_t ord = 0; ord < tolerant_.size(); ++ord) ordinal_of_[tolerant_[ord]] = ord;
}

std::size_t TolerantIndex::ordinal_of(std::size_t step_index) const noexcept {
  return step_index < ordinal_of_.size() ? ordinal_of_[step_index] : npos;
}

std::vector<std::string> TolerantIndex::step_ids(const wms::WorkflowSpec& spec) const {
  std::vector<std::string> out;
  out.reserve(tolerant_.size());
  for (std::size_t i : tolerant_) out.push_back(spec.step_at(i).id);
  return out;
}

namespace {
std::vector<StepMonitor> make_monitors(const wms::WorkflowSpec& spec, const TolerantIndex& index,
                                       const StepMonitor::Options& options) {
  std::vector<StepMonitor> monitors;
  monitors.reserve(index.count());
  for (std::size_t step_index : index.step_indices()) {
    monitors.emplace_back(spec.step_at(step_index), options);
  }
  return monitors;
}

std::vector<double> collect_bounds(const wms::WorkflowSpec& spec, const TolerantIndex& index) {
  std::vector<double> bounds;
  bounds.reserve(index.count());
  for (std::size_t step_index : index.step_indices()) {
    bounds.push_back(*spec.step_at(step_index).max_error);
  }
  return bounds;
}
}  // namespace

TrainingController::TrainingController(const wms::WorkflowSpec& spec, const ds::DataStore& store,
                                       StepMonitor::Options options)
    : store_(&store),
      index_(spec),
      monitors_(make_monitors(spec, index_, options)),
      bounds_(collect_bounds(spec, index_)),
      kb_(index_.count() > 0 ? KnowledgeBase(index_.step_ids(spec)) : KnowledgeBase()) {
  SF_CHECK(index_.count() > 0, "workflow has no error-tolerant steps — nothing to learn");
}

TrainingController::TrainingController(const wms::WorkflowSpec& spec, const ds::DataStore& store,
                                       StepMonitor::Options options, KnowledgeBase resume_kb)
    : TrainingController(spec, store, std::move(options)) {
  SF_CHECK(resume_kb.step_ids() == index_.step_ids(spec),
           "resumed knowledge base step ids must match the workflow's tolerant steps");
  kb_ = std::move(resume_kb);
}

void TrainingController::anchor(const ds::DataStore& store) {
  for (auto& monitor : monitors_) {
    monitor.reset_inputs(store);
    monitor.reset_outputs(store);
  }
}

void TrainingController::begin_wave(ds::Timestamp wave) {
  current_row_ = TrainingRow{};
  current_row_.wave = wave;
  // Steps not queried this wave (predecessors not yet executed) keep their
  // previous accumulated impact as the feature and a negative label.
  current_row_.impacts.resize(index_.count(), 0.0);
  current_row_.errors.resize(index_.count(), 0.0);
  current_row_.exceeds.resize(index_.count(), 0);
  for (std::size_t ord = 0; ord < index_.count(); ++ord) {
    current_row_.impacts[ord] = monitors_[ord].input_impact();
  }
}

bool TrainingController::should_execute(const wms::WorkflowSpec&, std::size_t step_index,
                                        ds::Timestamp) {
  const std::size_t ord = index_.ordinal_of(step_index);
  if (ord != TolerantIndex::npos) {
    // Fold this wave's input updates into the accumulated impact: this is the
    // feature the classifier will see at the same point in the application
    // phase.
    current_row_.impacts[ord] = monitors_[ord].observe_inputs(*store_);
  }
  return true;  // training mode runs fully synchronously
}

void TrainingController::on_step_executed(const wms::WorkflowSpec&, std::size_t step_index,
                                          ds::Timestamp) {
  const std::size_t ord = index_.ordinal_of(step_index);
  if (ord == TolerantIndex::npos) return;
  // Simulated deferred error: the changes this execution applied to the
  // output container are exactly what skipping it would have missed.
  const double eps = monitors_[ord].observe_outputs(*store_);
  current_row_.errors[ord] = eps;
  const bool exceeded = eps > bounds_[ord];
  current_row_.exceeds[ord] = exceeded ? 1 : 0;
  if (exceeded) {
    // Simulated execution: both the deferred error and the accumulated input
    // impact restart from the current state.
    monitors_[ord].reset_outputs(*store_);
    monitors_[ord].reset_inputs(*store_);
  }
}

void TrainingController::end_wave(ds::Timestamp) { kb_.append(current_row_); }

QodController::QodController(const wms::WorkflowSpec& spec, const ds::DataStore& store,
                             const Predictor& predictor, StepMonitor::Options options)
    : store_(&store),
      predictor_(&predictor),
      index_(spec),
      monitors_(make_monitors(spec, index_, options)),
      features_(index_.count(), 0.0),
      decisions_(index_.count(), 0) {
  SF_CHECK(index_.count() > 0, "workflow has no error-tolerant steps — nothing to control");
  if (!predictor.is_trained()) {
    throw StateError("QodController requires a trained Predictor (run the training phase first)");
  }
}

void QodController::anchor(const ds::DataStore& store) {
  for (auto& monitor : monitors_) monitor.reset_inputs(store);
  std::fill(features_.begin(), features_.end(), 0.0);
}

void QodController::begin_wave(ds::Timestamp) {
  std::fill(decisions_.begin(), decisions_.end(), 0);
}

bool QodController::should_execute(const wms::WorkflowSpec& spec, std::size_t step_index,
                                   ds::Timestamp wave) {
  const std::size_t ord = index_.ordinal_of(step_index);
  SF_CHECK(ord != TolerantIndex::npos, "queried for a non-tolerant step");
  features_[ord] = monitors_[ord].observe_inputs(*store_);
  const std::vector<int> predicted = predictor_->predict(features_);
  const bool execute = predicted[ord] == 1;
  decisions_[ord] = execute ? 1 : 0;
  if (execute) {
    ++triggered_;
  } else {
    ++skipped_;
  }
  SF_LOG_DEBUG("qod") << "wave " << wave << " step '" << spec.step_at(step_index).id
                      << "' impact=" << features_[ord] << " -> "
                      << (execute ? "execute" : "skip");
  return execute;
}

void QodController::on_step_executed(const wms::WorkflowSpec&, std::size_t step_index,
                                     ds::Timestamp) {
  const std::size_t ord = index_.ordinal_of(step_index);
  if (ord == TolerantIndex::npos) return;
  monitors_[ord].reset_inputs(*store_);
  features_[ord] = 0.0;
}

}  // namespace smartflux::core
