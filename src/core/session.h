#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/smartflux.h"

namespace smartflux::core {

/// One managed workflow: its WMS engine plus the SmartFlux middleware
/// coupled to it.
class Session {
 public:
  Session(std::string name, wms::WorkflowSpec spec, ds::DataStore& store,
          SmartFluxOptions options);

  const std::string& name() const noexcept { return name_; }
  wms::WorkflowEngine& engine() noexcept { return *engine_; }
  SmartFluxEngine& smartflux() noexcept { return *smartflux_; }
  const SmartFluxEngine& smartflux() const noexcept { return *smartflux_; }
  SmartFluxEngine::Phase phase() const noexcept { return smartflux_->phase(); }

 private:
  std::string name_;
  std::unique_ptr<wms::WorkflowEngine> engine_;
  std::unique_ptr<SmartFluxEngine> smartflux_;
};

/// The paper's Session Management component (Fig. 4): one SmartFlux
/// deployment serves several workflow applications over a shared data
/// store, each with its own monitoring state, knowledge base and model.
class SessionManager {
 public:
  explicit SessionManager(ds::DataStore& store) : store_(&store) {}

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Registers a workflow under a unique session name.
  Session& create_session(const std::string& name, wms::WorkflowSpec spec,
                          SmartFluxOptions options = {});

  Session& session(const std::string& name);
  const Session& session(const std::string& name) const;
  bool contains(const std::string& name) const noexcept;
  void remove_session(const std::string& name);

  std::vector<std::string> session_names() const;
  std::size_t size() const noexcept { return sessions_.size(); }

  /// Total step executions across all sessions (deployment-wide load).
  std::size_t total_executions() const;

  ds::DataStore& store() noexcept { return *store_; }

 private:
  ds::DataStore* store_;
  std::map<std::string, std::unique_ptr<Session>> sessions_;
};

}  // namespace smartflux::core
