#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <string>

#include "datastore/flat_snapshot.h"

namespace smartflux::core {

/// User-extensible metric over a set of element changes in a data container
/// (the paper's custom input-impact / output-error API, §4.2): `update` is
/// called once per modified element with its current and previous value;
/// `compute` is called when no more elements are expected and returns the
/// overall metric. `reset` clears accumulated state for reuse.
class ChangeMetric {
 public:
  virtual ~ChangeMetric() = default;

  virtual void reset() noexcept = 0;
  /// One modified element: `current` is the updated state x_i, `previous` the
  /// latest saved state x'_i (0 for inserted elements, per §2.1).
  virtual void update(double current, double previous) noexcept = 0;
  /// Overall metric. `total_elements` is n, the number of elements in the
  /// container; `previous_total_sum` is Σx'_i over all n elements (needed by
  /// Eq. 3).
  virtual double compute(std::size_t total_elements, double previous_total_sum) const noexcept = 0;
  virtual std::unique_ptr<ChangeMetric> clone() const = 0;
  virtual std::string name() const = 0;
};

/// Eq. 1: ι = Σ|x_i − x'_i| · m — magnitude of change scaled by the number of
/// modified elements. Unbounded above.
class MagnitudeCountImpact final : public ChangeMetric {
 public:
  void reset() noexcept override;
  void update(double current, double previous) noexcept override;
  double compute(std::size_t total_elements, double previous_total_sum) const noexcept override;
  std::unique_ptr<ChangeMetric> clone() const override;
  std::string name() const override { return "MagnitudeCountImpact(Eq1)"; }

 private:
  double sum_abs_diff_ = 0.0;
  std::size_t modified_ = 0;
};

/// Eq. 2: ι = (Σ|x_i − x'_i| · m) / (Σ max(x_i, x'_i) · n) — relative impact
/// in [0, 1] (clamped).
class RelativeImpact final : public ChangeMetric {
 public:
  void reset() noexcept override;
  void update(double current, double previous) noexcept override;
  double compute(std::size_t total_elements, double previous_total_sum) const noexcept override;
  std::unique_ptr<ChangeMetric> clone() const override;
  std::string name() const override { return "RelativeImpact(Eq2)"; }

 private:
  double sum_abs_diff_ = 0.0;
  double sum_max_ = 0.0;
  std::size_t modified_ = 0;
};

/// Eq. 3: ε = (Σ|x_i − x'_i| · m) / (Σ_{i=1..n} x'_i · n) — relative impact of
/// new updates on the latest state, in [0, 1] (clamped).
class RelativeError final : public ChangeMetric {
 public:
  void reset() noexcept override;
  void update(double current, double previous) noexcept override;
  double compute(std::size_t total_elements, double previous_total_sum) const noexcept override;
  std::unique_ptr<ChangeMetric> clone() const override;
  std::string name() const override { return "RelativeError(Eq3)"; }

 private:
  double sum_abs_diff_ = 0.0;
  std::size_t modified_ = 0;
};

/// Eq. 4: ε = sqrt(Σ(x_i − x'_i)² / m) — RMSE over modified elements,
/// optionally normalized by a known value range so it is comparable with
/// bounds in [0, 1].
class RmseError final : public ChangeMetric {
 public:
  /// `value_range` > 0 divides the RMSE (e.g. 100 for sensors in [0, 100]);
  /// 1.0 keeps the raw RMSE of the paper's Eq. 4.
  explicit RmseError(double value_range = 1.0);

  void reset() noexcept override;
  void update(double current, double previous) noexcept override;
  double compute(std::size_t total_elements, double previous_total_sum) const noexcept override;
  std::unique_ptr<ChangeMetric> clone() const override;
  std::string name() const override { return "RmseError(Eq4)"; }

 private:
  double value_range_;
  double sum_sq_diff_ = 0.0;
  std::size_t modified_ = 0;
};

/// Built-in metric selection for configuration structs.
enum class ImpactKind { kMagnitudeCount, kRelative };
enum class ErrorKind { kRelative, kRmse };

std::unique_ptr<ChangeMetric> make_impact_metric(ImpactKind kind);
std::unique_ptr<ChangeMetric> make_error_metric(ErrorKind kind, double value_range = 1.0);

/// Runs a metric over the difference between two container snapshots (maps
/// from element key to value). Elements present in `current` but not in
/// `previous` are inserts (previous = 0); elements only in `previous` are
/// deletes (current = 0). Returns metric.compute(n, Σ previous).
/// n = size of `current` (falling back to `previous` when current is empty).
double compute_change(const std::map<std::string, double>& current,
                      const std::map<std::string, double>& previous, ChangeMetric& metric);

/// Same diff over two flat snapshots (merge-join of the sorted entry
/// vectors): no per-element allocation, and when both snapshots come from
/// the same table (`keyspace()` equal) element identity is decided by one
/// integer compare instead of string comparisons. Produces the same values
/// as the map-based overload — classification and visit order match —
/// proven by the flat-vs-map equivalence tests.
double compute_change(const ds::FlatSnapshot& current, const ds::FlatSnapshot& previous,
                      ChangeMetric& metric);

}  // namespace smartflux::core
