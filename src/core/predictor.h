#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/knowledge_base.h"
#include "ml/evaluation.h"
#include "ml/multilabel.h"
#include "ml/random_forest.h"

namespace smartflux::core {

/// Classification algorithm to back the predictor. Random Forest is the
/// paper's default (§3.2: best mean ROC area across both benchmarks); the
/// others are the algorithms it was compared against.
enum class Algorithm {
  kRandomForest,
  kDecisionTree,
  kNaiveBayes,
  kLogisticRegression,
  kLinearSvm,
  kKNearestNeighbors,
  kNeuralNetwork,
};

const char* algorithm_name(Algorithm a) noexcept;

/// Which impact columns each step's per-label classifier sees.
enum class FeatureScope {
  /// Only the step's own accumulated input impact — the paper's core premise
  /// (§2: a step's QoD "corresponds to the impact on its input"). Robust to
  /// the distribution shift that adaptive execution induces on *other*
  /// steps' impact columns, so this is the default.
  kOwnImpact,
  /// The full impact vector of all tolerant steps (the X matrix of §3.1).
  kAllImpacts,
};

struct PredictorOptions {
  Algorithm algorithm = Algorithm::kRandomForest;
  FeatureScope scope = FeatureScope::kOwnImpact;
  /// Paper §3.2: prediction quality is adjusted through the number of trees
  /// and their maximum depth. Moderately shallow trees with a minimum leaf
  /// population generalize to the application phase far better than
  /// memorizing trees (the training set is a few hundred rows).
  ml::ForestOptions forest{
      .num_trees = 64,
      .tree = {.max_depth = 8, .min_samples_leaf = 5, .min_samples_split = 2,
               .max_features = 0, .positive_class_weight = 1.0},
      .bootstrap_fraction = 1.0,
      .decision_threshold = 0.5};
  /// > 1 weights the positive (execute) class, favouring recall over
  /// precision; the paper tunes its classifier this way to minimize max_ε
  /// violations (§3.2, §5.2: "we decided to optimize its classifier for
  /// recall"). Error compliance matters more than savings for decision
  /// making, so the default is recall-biased. Applies to tree-based
  /// algorithms; for the others the decision threshold is lowered instead.
  double recall_bias = 4.0;
  std::uint64_t seed = 17;
};

/// The paper's Predictor component: a multi-label classifier that maps the
/// per-step input-impact vector to the configuration of steps whose error
/// bound would be exceeded (i.e. that must execute this wave).
class Predictor {
 public:
  explicit Predictor(PredictorOptions options = {});

  /// Builds a model from the knowledge base (the paper's "model construction"
  /// at the end of the training phase).
  void train(const KnowledgeBase& kb);
  void train(const ml::MultiLabelDataset& data);

  bool is_trained() const noexcept { return model_ != nullptr && model_->is_fitted(); }
  std::size_t num_labels() const;

  /// Per-step execute/skip decisions for one impact vector.
  std::vector<int> predict(std::span<const double> impacts) const;
  std::vector<double> predict_scores(std::span<const double> impacts) const;

  /// Batched variants over `num_rows` impact vectors stored contiguously
  /// row-major. Each per-label forest traverses the whole batch in one pass
  /// (instead of being re-entered per row), which is what evaluation sweeps
  /// and replayed wave decisions should use. Returns a num_rows × num_labels
  /// row-major matrix with entries identical to the per-row calls.
  std::vector<int> predict_batch(std::span<const double> impact_rows, std::size_t num_rows) const;
  std::vector<double> predict_scores_batch(std::span<const double> impact_rows,
                                           std::size_t num_rows) const;

  /// The paper's test phase: stratified k-fold cross-validation per label on
  /// the training set (accuracy / precision / recall). Labels whose column is
  /// constant are skipped (their step either always or never re-executes).
  struct TestReport {
    std::vector<ml::CvMetrics> per_label;  ///< empty metrics for constant labels
    double mean_accuracy = 0.0;
    double mean_precision = 0.0;
    double mean_recall = 0.0;
    std::size_t evaluated_labels = 0;
  };
  TestReport test(const KnowledgeBase& kb, std::size_t folds = 10) const;

  const PredictorOptions& options() const noexcept { return options_; }

  /// Factory for the configured base classifier (used by CV and the §3.2
  /// algorithm-comparison bench).
  ml::ClassifierFactory factory() const;

 private:
  /// Clamps a query vector to the per-feature range seen during training.
  /// Accumulated impacts in the application phase can exceed anything the
  /// synchronous training phase produced; tree models extrapolate poorly, so
  /// out-of-range queries are mapped to the nearest trained region.
  std::vector<double> clamp_to_training_range(std::span<const double> impacts) const;

  PredictorOptions options_;
  std::unique_ptr<ml::BinaryRelevance> model_;
  std::vector<std::pair<double, double>> feature_ranges_;
};

}  // namespace smartflux::core
