#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/baselines.h"
#include "core/smartflux.h"
#include "wms/engine.h"

namespace smartflux::core {

/// Configuration of one paired (adaptive vs synchronous-shadow) experiment.
struct ExperimentOptions {
  std::size_t training_waves = 100;
  std::size_t eval_waves = 400;
  SmartFluxOptions smartflux{};
  /// Options for the primary (adaptive) WorkflowEngine — retry policies,
  /// journal, observability sinks. The synchronous shadow engine always runs
  /// with defaults so its waves never pollute the primary's metrics.
  wms::WorkflowEngine::Options engine{};
  /// Steps whose output error is measured against the synchronous shadow;
  /// empty = every error-tolerant step.
  std::vector<wms::StepId> tracked_steps;
};

/// Per-wave record of the evaluation phase.
struct WaveStats {
  ds::Timestamp wave = 0;
  std::size_t adaptive_executions = 0;      ///< tolerant steps executed (adaptive)
  std::size_t sync_executions = 0;          ///< tolerant steps executed (shadow)
  std::map<wms::StepId, int> decision;      ///< 1 = executed
  std::map<wms::StepId, double> measured_error;   ///< adaptive output vs shadow output
  std::map<wms::StepId, double> predicted_error;  ///< accumulated shadow deltas while skipping
  std::map<wms::StepId, bool> violation;          ///< measured > max_ε
};

/// Full result of an experiment run.
struct ExperimentResult {
  std::string policy;  ///< "smartflux", "sync", "random", "seq3", "oracle", ...
  std::vector<WaveStats> waves;
  std::vector<wms::StepId> tracked_steps;
  std::map<wms::StepId, double> bounds;

  /// Test-phase cross-validation report (smartflux policy only).
  std::optional<Predictor::TestReport> test_report;

  std::size_t total_adaptive_executions = 0;  ///< tolerant-step executions, eval phase
  std::size_t total_sync_executions = 0;      ///< shadow tolerant-step executions

  /// 1 − adaptive/sync execution ratio over the evaluation phase.
  double savings_ratio() const noexcept;
  /// Fraction of evaluation waves where `step` stayed within its bound.
  double confidence(const wms::StepId& step) const;
  /// Normalized cumulative confidence per wave (Fig. 10): entry w is the
  /// fraction of waves ≤ w without violation for `step`.
  std::vector<double> confidence_curve(const wms::StepId& step) const;
  /// Minimum confidence curve across all tracked steps (workflow-level).
  std::vector<double> overall_confidence_curve() const;
  /// Cumulative executed-fraction per wave relative to sync (Fig. 12a/c).
  std::vector<double> normalized_executions_curve() const;
  std::size_t violation_count(const wms::StepId& step) const;
  /// Largest measured-error overshoot above the bound for `step`.
  double max_violation_magnitude(const wms::StepId& step) const;
};

/// Runs the paper's evaluation protocol for one workload (§5): a training
/// phase executed synchronously, model construction and cross-validation,
/// then an evaluation phase where the adaptive engine runs side by side with
/// a synchronous shadow of the same deterministic workload. The shadow gives
/// ground-truth outputs, from which measured errors, predicted errors, and
/// the oracle ("optimal") execution counts derive.
class Experiment {
 public:
  /// `spec` must be driven by a deterministic generator: running it twice on
  /// two stores over the same waves must produce identical data.
  Experiment(wms::WorkflowSpec spec, ExperimentOptions options);

  /// Adaptive SmartFlux run (training → test → application).
  ExperimentResult run_smartflux();

  /// Baseline run under an arbitrary controller for the evaluation phase
  /// (training waves run synchronously for warm-up, no learning).
  ExperimentResult run_controller(const std::string& policy_name,
                                  wms::TriggerController& controller);

  /// Perfect-predictor run: executes only when the true deferred error would
  /// exceed the bound (Fig. 12 "optimal").
  ExperimentResult run_oracle();

  /// The synchronous model itself (every step every wave).
  ExperimentResult run_sync();

  /// Per-step per-wave true error deltas from a synchronous profiling run of
  /// the evaluation waves (consumed by run_oracle; exposed for benches).
  std::map<std::size_t, std::map<ds::Timestamp, double>> profile_sync_deltas();

  const wms::WorkflowSpec& spec() const noexcept { return spec_; }
  const ExperimentOptions& options() const noexcept { return options_; }

 private:
  std::vector<std::size_t> tracked_indices() const;

  /// Shared evaluation loop. `run_adaptive_wave` executes one adaptive wave
  /// and returns its result; the shadow runs the same wave synchronously.
  ExperimentResult evaluate(
      const std::string& policy_name,
      const std::function<wms::WaveResult(ds::Timestamp)>& run_adaptive_wave,
      ds::DataStore& adaptive_store);

  wms::WorkflowSpec spec_;
  ExperimentOptions options_;
};

}  // namespace smartflux::core
