#include "core/baselines.h"

#include "common/error.h"

namespace smartflux::core {

RandomController::RandomController(double execute_probability, std::uint64_t seed)
    : p_(execute_probability), rng_(seed) {
  SF_CHECK(execute_probability >= 0.0 && execute_probability <= 1.0,
           "execute_probability must be in [0,1]");
}

bool RandomController::should_execute(const wms::WorkflowSpec&, std::size_t, ds::Timestamp) {
  return rng_.bernoulli(p_);
}

PeriodicController::PeriodicController(std::size_t period) : period_(period) {
  SF_CHECK(period >= 1, "period must be >= 1");
}

bool PeriodicController::should_execute(const wms::WorkflowSpec&, std::size_t step_index,
                                        ds::Timestamp) {
  return ++waves_since_exec_[step_index] >= period_;
}

void PeriodicController::on_step_executed(const wms::WorkflowSpec&, std::size_t step_index,
                                          ds::Timestamp) {
  waves_since_exec_[step_index] = 0;
}

OracleController::OracleController(
    const wms::WorkflowSpec& spec,
    std::map<std::size_t, std::map<ds::Timestamp, double>> delta_errors)
    : deltas_(std::move(delta_errors)) {
  for (const auto& [step_index, _] : deltas_) {
    SF_CHECK(step_index < spec.size(), "oracle delta for unknown step index");
    SF_CHECK(spec.step_at(step_index).tolerates_error(),
             "oracle deltas must target error-tolerant steps");
  }
}

bool OracleController::should_execute(const wms::WorkflowSpec& spec, std::size_t step_index,
                                      ds::Timestamp wave) {
  auto step_it = deltas_.find(step_index);
  if (step_it == deltas_.end()) return true;  // no ground truth — be safe
  const auto wave_it = step_it->second.find(wave);
  const double delta = wave_it == step_it->second.end() ? 0.0 : wave_it->second;
  const double bound = *spec.step_at(step_index).max_error;
  double& acc = accumulated_[step_index];
  if (acc + delta > bound) {
    // Skipping this wave would push the deferred error past max_ε: execute
    // now, which brings the output up to date (error back to zero).
    acc = 0.0;
    return true;
  }
  acc += delta;
  return false;
}

double OracleController::accumulated_error(std::size_t step_index) const {
  auto it = accumulated_.find(step_index);
  return it == accumulated_.end() ? 0.0 : it->second;
}

}  // namespace smartflux::core
