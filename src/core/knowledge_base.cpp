#include "core/knowledge_base.h"

#include <istream>
#include <ostream>
#include <sstream>

#include "common/error.h"

namespace smartflux::core {

KnowledgeBase::KnowledgeBase(std::vector<std::string> step_ids) : step_ids_(std::move(step_ids)) {
  SF_CHECK(!step_ids_.empty(), "KnowledgeBase needs at least one tolerant step");
}

void KnowledgeBase::append(TrainingRow row) {
  SF_CHECK(row.impacts.size() == step_ids_.size(), "impact vector width mismatch");
  SF_CHECK(row.exceeds.size() == step_ids_.size(), "label vector width mismatch");
  SF_CHECK(row.errors.size() == step_ids_.size(), "error vector width mismatch");
  rows_.push_back(std::move(row));
}

ml::MultiLabelDataset KnowledgeBase::to_dataset(std::size_t begin, std::size_t end) const {
  end = std::min(end, rows_.size());
  SF_CHECK(begin <= end, "invalid row range");
  ml::MultiLabelDataset out(step_ids_.size(), step_ids_.size());
  for (std::size_t i = begin; i < end; ++i) {
    out.add(rows_[i].impacts, rows_[i].exceeds);
  }
  return out;
}

double KnowledgeBase::positive_rate(std::size_t step_index) const {
  SF_CHECK(step_index < step_ids_.size(), "step index out of range");
  if (rows_.empty()) return 0.0;
  std::size_t positives = 0;
  for (const auto& row : rows_) positives += row.exceeds[step_index] == 1 ? 1 : 0;
  return static_cast<double>(positives) / static_cast<double>(rows_.size());
}

void KnowledgeBase::save_csv(std::ostream& os) const {
  os << "wave";
  for (const auto& id : step_ids_) os << ",imp_" << id;
  for (const auto& id : step_ids_) os << ",err_" << id;
  for (const auto& id : step_ids_) os << ",lab_" << id;
  os << '\n';
  os.precision(17);
  for (const auto& row : rows_) {
    os << row.wave;
    for (double v : row.impacts) os << ',' << v;
    for (double v : row.errors) os << ',' << v;
    for (int v : row.exceeds) os << ',' << v;
    os << '\n';
  }
}

KnowledgeBase KnowledgeBase::load_csv(std::istream& is) {
  std::string header;
  if (!std::getline(is, header)) throw InvalidArgument("empty knowledge-base CSV");

  std::vector<std::string> step_ids;
  {
    std::stringstream ss(header);
    std::string field;
    if (!std::getline(ss, field, ',') || field != "wave") {
      throw InvalidArgument("knowledge-base CSV must start with a 'wave' column");
    }
    while (std::getline(ss, field, ',')) {
      if (field.rfind("imp_", 0) == 0) step_ids.push_back(field.substr(4));
    }
  }
  if (step_ids.empty()) throw InvalidArgument("knowledge-base CSV has no imp_ columns");

  KnowledgeBase kb(step_ids);
  const std::size_t k = step_ids.size();
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::stringstream ss(line);
    std::string field;
    TrainingRow row;
    SF_CHECK(static_cast<bool>(std::getline(ss, field, ',')), "truncated CSV row");
    row.wave = static_cast<ds::Timestamp>(std::stoull(field));
    auto read_doubles = [&](std::vector<double>& out) {
      for (std::size_t i = 0; i < k; ++i) {
        SF_CHECK(static_cast<bool>(std::getline(ss, field, ',')), "truncated CSV row");
        out.push_back(std::stod(field));
      }
    };
    read_doubles(row.impacts);
    read_doubles(row.errors);
    for (std::size_t i = 0; i < k; ++i) {
      SF_CHECK(static_cast<bool>(std::getline(ss, field, ',')), "truncated CSV row");
      row.exceeds.push_back(std::stoi(field));
    }
    kb.append(std::move(row));
  }
  return kb;
}

}  // namespace smartflux::core
