#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>

#include "core/change_metric.h"
#include "core/monitoring.h"
#include "datastore/datastore.h"

namespace smartflux::core {

/// Observer-driven container tracking — the paper's data-store-level
/// integration option (§4: "custom code that is triggered and executed at
/// the data store level upon client requests", like HBase co-processors).
///
/// Where ContainerTracker snapshots the whole container every wave (O(n)),
/// an IncrementalTracker subscribes to the store's mutation stream and folds
/// each write into pending per-element change records, so harvesting a
/// wave's metric costs O(changed elements). Semantics match
/// ContainerTracker exactly: for an element mutated several times within a
/// wave, the change is measured from its value at the previous harvest to
/// its latest value (equivalence is covered by tests).
///
/// Thread-compatible like the rest of monitoring: mutations may arrive from
/// any thread (the observer only appends under its own lock), but harvest /
/// reset must not race with mutating steps.
class IncrementalTracker {
 public:
  IncrementalTracker(ds::DataStore& store, ds::ContainerRef container,
                     std::unique_ptr<ChangeMetric> metric, AccumulationMode mode);
  ~IncrementalTracker();

  IncrementalTracker(const IncrementalTracker&) = delete;
  IncrementalTracker& operator=(const IncrementalTracker&) = delete;

  /// Folds the pending mutations into the accumulation and returns the new
  /// accumulated value. Call once per wave (the equivalent of
  /// ContainerTracker::observe).
  double harvest();

  double accumulated() const noexcept { return accumulated_; }
  double last_delta() const noexcept { return last_delta_; }

  /// Marks the consumer step as executed: accumulation restarts and the
  /// current state becomes the new reference.
  void reset();

  const ds::ContainerRef& container() const noexcept { return container_; }
  /// Number of element changes currently pending (diagnostics).
  std::size_t pending_changes() const;

 private:
  /// (row, column) element keys in container scan order. The transparent
  /// comparator lets the mutation hot path probe with string_views straight
  /// off the Mutation — no key concatenation or copy unless the element is
  /// genuinely new to the map.
  struct ElementKeyLess {
    using is_transparent = void;
    template <typename A, typename B>
    bool operator()(const A& a, const B& b) const noexcept {
      const int r = std::string_view(a.first).compare(std::string_view(b.first));
      if (r != 0) return r < 0;
      return std::string_view(a.second) < std::string_view(b.second);
    }
  };
  using ElementMap = std::map<std::pair<std::string, std::string>, double, ElementKeyLess>;

  void on_mutation(const ds::Mutation& m);

  ds::DataStore* store_;
  ds::ContainerRef container_;
  std::unique_ptr<ChangeMetric> metric_;
  AccumulationMode mode_;
  std::size_t token_ = 0;

  mutable std::mutex mutex_;
  /// Live mirror of the container (maintained from mutations).
  ElementMap current_;
  /// Element value at the previous harvest, recorded on first mutation since.
  ElementMap pending_prev_;
  /// Baseline state at the last reset (cancelling mode).
  ElementMap baseline_;
  double accumulated_ = 0.0;
  double last_delta_ = 0.0;
};

}  // namespace smartflux::core
