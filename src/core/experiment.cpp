#include "core/experiment.h"

#include <algorithm>

#include "common/error.h"
#include "core/change_metric.h"

namespace smartflux::core {

double ExperimentResult::savings_ratio() const noexcept {
  if (total_sync_executions == 0) return 0.0;
  return 1.0 - static_cast<double>(total_adaptive_executions) /
                   static_cast<double>(total_sync_executions);
}

double ExperimentResult::confidence(const wms::StepId& step) const {
  if (waves.empty()) return 1.0;
  std::size_t ok = 0;
  for (const auto& w : waves) {
    auto it = w.violation.find(step);
    if (it == w.violation.end() || !it->second) ++ok;
  }
  return static_cast<double>(ok) / static_cast<double>(waves.size());
}

std::vector<double> ExperimentResult::confidence_curve(const wms::StepId& step) const {
  std::vector<double> out;
  out.reserve(waves.size());
  std::size_t ok = 0;
  for (std::size_t i = 0; i < waves.size(); ++i) {
    auto it = waves[i].violation.find(step);
    if (it == waves[i].violation.end() || !it->second) ++ok;
    out.push_back(static_cast<double>(ok) / static_cast<double>(i + 1));
  }
  return out;
}

std::vector<double> ExperimentResult::overall_confidence_curve() const {
  std::vector<double> out;
  out.reserve(waves.size());
  std::size_t ok = 0;
  for (std::size_t i = 0; i < waves.size(); ++i) {
    bool any_violation = false;
    for (const auto& [_, v] : waves[i].violation) any_violation = any_violation || v;
    if (!any_violation) ++ok;
    out.push_back(static_cast<double>(ok) / static_cast<double>(i + 1));
  }
  return out;
}

std::vector<double> ExperimentResult::normalized_executions_curve() const {
  std::vector<double> out;
  out.reserve(waves.size());
  double adaptive = 0.0, sync = 0.0;
  for (const auto& w : waves) {
    adaptive += static_cast<double>(w.adaptive_executions);
    sync += static_cast<double>(w.sync_executions);
    out.push_back(sync > 0.0 ? adaptive / sync : 1.0);
  }
  return out;
}

std::size_t ExperimentResult::violation_count(const wms::StepId& step) const {
  std::size_t n = 0;
  for (const auto& w : waves) {
    auto it = w.violation.find(step);
    if (it != w.violation.end() && it->second) ++n;
  }
  return n;
}

double ExperimentResult::max_violation_magnitude(const wms::StepId& step) const {
  double worst = 0.0;
  const auto bound_it = bounds.find(step);
  if (bound_it == bounds.end()) return 0.0;
  for (const auto& w : waves) {
    auto it = w.measured_error.find(step);
    if (it != w.measured_error.end() && it->second > bound_it->second) {
      worst = std::max(worst, it->second - bound_it->second);
    }
  }
  return worst;
}

Experiment::Experiment(wms::WorkflowSpec spec, ExperimentOptions options)
    : spec_(std::move(spec)), options_(std::move(options)) {
  SF_CHECK(options_.training_waves >= 1, "need at least one training wave");
  SF_CHECK(options_.eval_waves >= 1, "need at least one evaluation wave");
}

std::vector<std::size_t> Experiment::tracked_indices() const {
  if (options_.tracked_steps.empty()) return spec_.error_tolerant_steps();
  std::vector<std::size_t> out;
  out.reserve(options_.tracked_steps.size());
  for (const auto& id : options_.tracked_steps) {
    const std::size_t idx = spec_.index_of(id);
    SF_CHECK(spec_.step_at(idx).tolerates_error(),
             "tracked step '" + id + "' has no error bound");
    out.push_back(idx);
  }
  return out;
}

ExperimentResult Experiment::evaluate(
    const std::string& policy_name,
    const std::function<wms::WaveResult(ds::Timestamp)>& run_adaptive_wave,
    ds::DataStore& adaptive_store) {
  // Synchronous shadow: same deterministic workload on its own store.
  ds::DataStore shadow_store;
  wms::WorkflowEngine shadow(spec_, shadow_store);
  wms::SyncController sync;
  shadow.run_waves(1, options_.training_waves, sync);

  const auto tracked = tracked_indices();
  const auto tolerant = spec_.error_tolerant_steps();

  // Per-tracked-step output trackers on the shadow store give the true
  // per-wave error deltas (what one skipped wave costs).
  std::vector<StepMonitor> shadow_monitors;
  shadow_monitors.reserve(tracked.size());
  for (std::size_t idx : tracked) {
    shadow_monitors.emplace_back(spec_.step_at(idx), options_.smartflux.monitor);
  }
  for (auto& m : shadow_monitors) {
    m.observe_outputs(shadow_store);
    m.reset_outputs(shadow_store);  // anchor the baseline at end of training
  }

  ExperimentResult result;
  result.policy = policy_name;
  for (std::size_t idx : tracked) {
    result.tracked_steps.push_back(spec_.step_at(idx).id);
    result.bounds[spec_.step_at(idx).id] = *spec_.step_at(idx).max_error;
  }

  std::map<wms::StepId, double> predicted_acc;
  const ds::Timestamp first_eval = options_.training_waves + 1;

  for (std::size_t k = 0; k < options_.eval_waves; ++k) {
    const ds::Timestamp wave = first_eval + k;
    const wms::WaveResult shadow_result = shadow.run_wave(wave, sync);
    const wms::WaveResult adaptive_result = run_adaptive_wave(wave);

    WaveStats ws;
    ws.wave = wave;
    for (std::size_t idx : tolerant) {
      ws.adaptive_executions += adaptive_result.executed[idx] ? 1 : 0;
      ws.sync_executions += shadow_result.executed[idx] ? 1 : 0;
    }

    for (std::size_t t = 0; t < tracked.size(); ++t) {
      const std::size_t idx = tracked[t];
      const wms::StepSpec& step = spec_.step_at(idx);
      shadow_monitors[t].observe_outputs(shadow_store);
      const double delta = shadow_monitors[t].last_output_delta();

      const int decision = adaptive_result.executed[idx] ? 1 : 0;
      ws.decision[step.id] = decision;
      if (decision == 1) {
        predicted_acc[step.id] = 0.0;
      } else {
        predicted_acc[step.id] += delta;
      }
      ws.predicted_error[step.id] = predicted_acc[step.id];

      // Measured error: adaptive (possibly stale) output vs shadow output.
      double measured = 0.0;
      for (const auto& container : step.outputs) {
        // Different stores, so the merge-join falls back to string compares
        // (no shared keyspace) — still allocation-free per element.
        const auto fresh = shadow_store.snapshot_flat(container);
        const auto stale = adaptive_store.snapshot_flat(container);
        auto metric = make_error_metric(options_.smartflux.monitor.error,
                                        options_.smartflux.monitor.rmse_value_range);
        measured = std::max(measured, compute_change(fresh, stale, *metric));
      }
      ws.measured_error[step.id] = measured;
      ws.violation[step.id] = measured > *step.max_error;
    }

    result.total_adaptive_executions += ws.adaptive_executions;
    result.total_sync_executions += ws.sync_executions;
    result.waves.push_back(std::move(ws));
  }
  return result;
}

ExperimentResult Experiment::run_smartflux() {
  ds::DataStore store;
  wms::WorkflowEngine engine(spec_, store, options_.engine);
  SmartFluxEngine sf(engine, options_.smartflux);
  sf.train(1, options_.training_waves);
  sf.build_model();
  Predictor::TestReport report;
  const std::size_t folds =
      std::min(options_.smartflux.cv_folds, sf.knowledge_base().size());
  if (folds >= 2) report = sf.predictor().test(sf.knowledge_base(), folds);

  auto result = evaluate(
      "smartflux", [&sf](ds::Timestamp wave) { return sf.run_wave(wave); }, store);
  result.test_report = report;
  return result;
}

ExperimentResult Experiment::run_controller(const std::string& policy_name,
                                            wms::TriggerController& controller) {
  ds::DataStore store;
  wms::WorkflowEngine engine(spec_, store, options_.engine);
  wms::SyncController sync;
  engine.run_waves(1, options_.training_waves, sync);  // warm-up, matches shadow
  return evaluate(
      policy_name,
      [&engine, &controller](ds::Timestamp wave) { return engine.run_wave(wave, controller); },
      store);
}

ExperimentResult Experiment::run_sync() {
  wms::SyncController sync;
  return run_controller("sync", sync);
}

std::map<std::size_t, std::map<ds::Timestamp, double>> Experiment::profile_sync_deltas() {
  ds::DataStore store;
  wms::WorkflowEngine engine(spec_, store);
  wms::SyncController sync;
  engine.run_waves(1, options_.training_waves, sync);

  const auto tolerant = spec_.error_tolerant_steps();
  std::vector<StepMonitor> monitors;
  monitors.reserve(tolerant.size());
  for (std::size_t idx : tolerant) {
    monitors.emplace_back(spec_.step_at(idx), options_.smartflux.monitor);
  }
  for (auto& m : monitors) {
    m.observe_outputs(store);
    m.reset_outputs(store);
  }

  std::map<std::size_t, std::map<ds::Timestamp, double>> deltas;
  const ds::Timestamp first_eval = options_.training_waves + 1;
  for (std::size_t k = 0; k < options_.eval_waves; ++k) {
    const ds::Timestamp wave = first_eval + k;
    engine.run_wave(wave, sync);
    for (std::size_t t = 0; t < tolerant.size(); ++t) {
      monitors[t].observe_outputs(store);
      deltas[tolerant[t]][wave] = monitors[t].last_output_delta();
    }
  }
  return deltas;
}

ExperimentResult Experiment::run_oracle() {
  OracleController oracle(spec_, profile_sync_deltas());
  return run_controller("oracle", oracle);
}

}  // namespace smartflux::core
