#pragma once

#include <functional>
#include <mutex>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace smartflux {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Receives every emitted log record (already level-filtered). Called under
/// the logger mutex, so sinks need no synchronization of their own but must
/// not log re-entrantly.
using LogSink = std::function<void(LogLevel, std::string_view component, std::string_view message)>;

/// Minimal thread-safe leveled logger. Global level is process-wide; default
/// kWarn so library users are not spammed. By default records go to stderr;
/// set_sink() redirects them (tests use this to assert on log output, embeds
/// to route into their own logging stack).
class Logger {
 public:
  static LogLevel level() noexcept;
  static void set_level(LogLevel level) noexcept;
  static void write(LogLevel level, const std::string& component, const std::string& message);

  /// Replaces the output sink; an empty function restores the stderr default.
  static void set_sink(LogSink sink);

 private:
  static std::mutex& mutex();
  static LogSink& sink();  ///< guarded by mutex()
};

/// RAII capture sink: while alive, log records are appended to records()
/// instead of reaching stderr; the previous default is restored on
/// destruction. One capture at a time — nesting restores stderr, not the
/// outer capture.
class LogCapture {
 public:
  struct Record {
    LogLevel level;
    std::string component;
    std::string message;
  };

  LogCapture();
  ~LogCapture();
  LogCapture(const LogCapture&) = delete;
  LogCapture& operator=(const LogCapture&) = delete;

  /// Snapshot of everything captured so far.
  std::vector<Record> records() const;
  /// True when any captured message contains `needle`.
  bool contains(std::string_view needle) const;
  void clear();

 private:
  mutable std::mutex mutex_;
  std::vector<Record> records_;
};

namespace detail {
class LogLine {
 public:
  LogLine(LogLevel level, std::string component)
      : level_(level), component_(std::move(component)) {}
  ~LogLine() { Logger::write(level_, component_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace smartflux

#define SF_LOG(sf_level_, sf_component_)                              \
  if (::smartflux::Logger::level() <= (sf_level_))                    \
  ::smartflux::detail::LogLine{(sf_level_), (sf_component_)}

#define SF_LOG_DEBUG(component) SF_LOG(::smartflux::LogLevel::kDebug, (component))
#define SF_LOG_INFO(component) SF_LOG(::smartflux::LogLevel::kInfo, (component))
#define SF_LOG_WARN(component) SF_LOG(::smartflux::LogLevel::kWarn, (component))
#define SF_LOG_ERROR(component) SF_LOG(::smartflux::LogLevel::kError, (component))
