#pragma once

#include <mutex>
#include <sstream>
#include <string>

namespace smartflux {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Minimal thread-safe leveled logger writing to stderr. Global level is
/// process-wide; default kWarn so library users are not spammed.
class Logger {
 public:
  static LogLevel level() noexcept;
  static void set_level(LogLevel level) noexcept;
  static void write(LogLevel level, const std::string& component, const std::string& message);

 private:
  static std::mutex& mutex();
};

namespace detail {
class LogLine {
 public:
  LogLine(LogLevel level, std::string component)
      : level_(level), component_(std::move(component)) {}
  ~LogLine() { Logger::write(level_, component_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace smartflux

#define SF_LOG(sf_level_, sf_component_)                              \
  if (::smartflux::Logger::level() <= (sf_level_))                    \
  ::smartflux::detail::LogLine{(sf_level_), (sf_component_)}

#define SF_LOG_DEBUG(component) SF_LOG(::smartflux::LogLevel::kDebug, (component))
#define SF_LOG_INFO(component) SF_LOG(::smartflux::LogLevel::kInfo, (component))
#define SF_LOG_WARN(component) SF_LOG(::smartflux::LogLevel::kWarn, (component))
#define SF_LOG_ERROR(component) SF_LOG(::smartflux::LogLevel::kError, (component))
