#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <limits>
#include <mutex>
#include <optional>

#include "common/error.h"

namespace smartflux {

/// Raised when a cooperative deadline expires (e.g. a step exceeding its
/// RetryPolicy timeout).
class Timeout : public Error {
 public:
  explicit Timeout(const std::string& what) : Error(what) {}
};

/// Raised by CancellationToken::throw_if_cancelled after an explicit cancel().
class Cancelled : public Error {
 public:
  explicit Cancelled(const std::string& what) : Error(what) {}
};

/// Cooperative cancellation: the engine arms a token with a deadline (and may
/// request cancellation explicitly); long-running work polls it and unwinds
/// via throw_if_cancelled(). Purely cooperative — nothing is interrupted
/// preemptively, so a step that never polls can still overrun its deadline
/// (the engine detects the overrun when the step returns).
///
/// One token, many deadline sources: set_deadline() installs the per-attempt
/// budget, cancel_at() *tightens* it (never loosens), so the retry-policy
/// timeout and the stall watchdog share a single mechanism — whichever
/// deadline is earlier wins. cancel()/cancel_at() may be called from any
/// thread; sleepers blocked in sleep_for() are woken through a condition
/// variable, not by polling.
class CancellationToken {
 public:
  using Clock = std::chrono::steady_clock;

  CancellationToken() = default;
  explicit CancellationToken(Clock::time_point deadline)
      : deadline_ns_(deadline.time_since_epoch().count()) {}

  CancellationToken(const CancellationToken&) = delete;
  CancellationToken& operator=(const CancellationToken&) = delete;

  /// Installs (or replaces) the deadline. Not a tightening operation — use
  /// cancel_at() for that.
  void set_deadline(Clock::time_point deadline) noexcept {
    deadline_ns_.store(deadline.time_since_epoch().count(), std::memory_order_relaxed);
    notify();
  }

  /// Absolute-deadline cancellation: arms (or *tightens*) the deadline to
  /// `deadline`. A later deadline than the current one is ignored, so
  /// multiple watchers can each declare their budget and the earliest wins.
  /// Safe to call from any thread, concurrently with a sleeper.
  void cancel_at(Clock::time_point deadline) noexcept {
    const Clock::rep target = deadline.time_since_epoch().count();
    Clock::rep current = deadline_ns_.load(std::memory_order_relaxed);
    while (target < current &&
           !deadline_ns_.compare_exchange_weak(current, target, std::memory_order_relaxed)) {
    }
    notify();
  }

  std::optional<Clock::time_point> deadline() const noexcept {
    const Clock::rep ns = deadline_ns_.load(std::memory_order_relaxed);
    if (ns == kNoDeadline) return std::nullopt;
    return Clock::time_point(Clock::duration(ns));
  }

  /// Requests cancellation. Safe to call from any thread; wakes sleepers.
  void cancel() noexcept {
    cancel_requested_.store(true, std::memory_order_relaxed);
    notify();
  }

  bool cancel_requested() const noexcept {
    return cancel_requested_.load(std::memory_order_relaxed);
  }
  bool expired() const noexcept {
    const Clock::rep ns = deadline_ns_.load(std::memory_order_relaxed);
    return ns != kNoDeadline && Clock::now().time_since_epoch().count() >= ns;
  }
  bool cancelled() const noexcept { return cancel_requested() || expired(); }

  /// Throws Cancelled on an explicit cancel(), Timeout past the deadline.
  void throw_if_cancelled() const {
    if (cancel_requested()) throw Cancelled("operation cancelled");
    if (expired()) throw Timeout("deadline exceeded");
  }

  /// Blocks up to `duration` on a condition variable, waking early the
  /// moment the token is cancelled or its (possibly tightening) deadline
  /// passes. Returns false on that early wake, true after a full sleep.
  bool sleep_for(std::chrono::nanoseconds duration) const {
    const auto until = Clock::now() + duration;
    std::unique_lock lock(mutex_);
    for (;;) {
      if (cancelled()) return false;
      const auto now = Clock::now();
      if (now >= until) return true;
      auto wake = until;
      if (const auto dl = deadline(); dl && *dl < wake) wake = *dl;
      cv_.wait_until(lock, wake);
    }
  }

 private:
  static constexpr Clock::rep kNoDeadline = std::numeric_limits<Clock::rep>::max();

  /// cancel()/cancel_at() publish their state *before* this; the empty
  /// critical section pairs with the sleeper's predicate-check-under-lock so
  /// a wakeup between check and wait can never be missed.
  void notify() const noexcept {
    { std::lock_guard lock(mutex_); }
    cv_.notify_all();
  }

  std::atomic<bool> cancel_requested_{false};
  std::atomic<Clock::rep> deadline_ns_{kNoDeadline};
  mutable std::mutex mutex_;
  mutable std::condition_variable cv_;
};

}  // namespace smartflux
