#pragma once

#include <atomic>
#include <chrono>
#include <optional>
#include <thread>

#include "common/error.h"

namespace smartflux {

/// Raised when a cooperative deadline expires (e.g. a step exceeding its
/// RetryPolicy timeout).
class Timeout : public Error {
 public:
  explicit Timeout(const std::string& what) : Error(what) {}
};

/// Raised by CancellationToken::throw_if_cancelled after an explicit cancel().
class Cancelled : public Error {
 public:
  explicit Cancelled(const std::string& what) : Error(what) {}
};

/// Cooperative cancellation: the engine arms a token with a deadline (and may
/// request cancellation explicitly); long-running work polls it and unwinds
/// via throw_if_cancelled(). Purely cooperative — nothing is interrupted
/// preemptively, so a step that never polls can still overrun its deadline
/// (the engine detects the overrun when the step returns).
class CancellationToken {
 public:
  using Clock = std::chrono::steady_clock;

  CancellationToken() = default;
  explicit CancellationToken(Clock::time_point deadline) : deadline_(deadline) {}

  void set_deadline(Clock::time_point deadline) noexcept { deadline_ = deadline; }
  std::optional<Clock::time_point> deadline() const noexcept { return deadline_; }

  /// Requests cancellation. Safe to call from any thread.
  void cancel() noexcept { cancel_requested_.store(true, std::memory_order_relaxed); }

  bool cancel_requested() const noexcept {
    return cancel_requested_.load(std::memory_order_relaxed);
  }
  bool expired() const noexcept { return deadline_ && Clock::now() >= *deadline_; }
  bool cancelled() const noexcept { return cancel_requested() || expired(); }

  /// Throws Cancelled on an explicit cancel(), Timeout past the deadline.
  void throw_if_cancelled() const {
    if (cancel_requested()) throw Cancelled("operation cancelled");
    if (expired()) throw Timeout("deadline exceeded");
  }

  /// Sleeps up to `duration` in small slices, polling for cancellation.
  /// Returns false (early) as soon as the token is cancelled or expired.
  bool sleep_for(std::chrono::nanoseconds duration) const {
    constexpr auto kSlice = std::chrono::milliseconds(1);
    const auto until = Clock::now() + duration;
    while (Clock::now() < until) {
      if (cancelled()) return false;
      const auto left = until - Clock::now();
      std::this_thread::sleep_for(left < kSlice ? left : std::chrono::nanoseconds(kSlice));
    }
    return !cancelled();
  }

 private:
  std::atomic<bool> cancel_requested_{false};
  std::optional<Clock::time_point> deadline_;
};

}  // namespace smartflux
