#include "common/fsync.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/error.h"

namespace smartflux {

namespace {
std::string errno_suffix() { return std::string(": ") + std::strerror(errno); }
}  // namespace

void fsync_path(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) throw Error("fsync_path: cannot open '" + path + "'" + errno_suffix());
  const int rc = ::fsync(fd);
  const int saved = errno;
  ::close(fd);
  if (rc != 0) {
    errno = saved;
    throw Error("fsync failed for '" + path + "'" + errno_suffix());
  }
}

void fsync_dir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) throw Error("fsync_dir: cannot open '" + dir + "'" + errno_suffix());
  const int rc = ::fsync(fd);
  const int saved = errno;
  ::close(fd);
  if (rc != 0) {
    errno = saved;
    throw Error("fsync failed for directory '" + dir + "'" + errno_suffix());
  }
}

SyncFile::~SyncFile() { close(); }

SyncFile::SyncFile(SyncFile&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), path_(std::move(other.path_)) {}

SyncFile& SyncFile::operator=(SyncFile&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    path_ = std::move(other.path_);
  }
  return *this;
}

SyncFile SyncFile::open_append(const std::string& path) {
  SyncFile f;
  f.fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (f.fd_ < 0) {
    throw Error("SyncFile: cannot open '" + path + "' for append" + errno_suffix());
  }
  f.path_ = path;
  return f;
}

void SyncFile::write_all(const void* data, std::size_t n) {
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    const ssize_t written = ::write(fd_, p, n);
    if (written < 0) {
      if (errno == EINTR) continue;
      throw Error("write failed for '" + path_ + "'" + errno_suffix());
    }
    p += written;
    n -= static_cast<std::size_t>(written);
  }
}

void SyncFile::sync() {
  if (::fsync(fd_) != 0) throw Error("fsync failed for '" + path_ + "'" + errno_suffix());
}

void SyncFile::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace smartflux
