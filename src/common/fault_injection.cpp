#include "common/fault_injection.h"

#include <functional>
#include <thread>

#include "common/hashing.h"
#include "common/logging.h"

namespace smartflux {

FaultInjector& FaultInjector::add_rule(FaultRule rule) {
  SF_CHECK(rule.probability >= 0.0 && rule.probability <= 1.0,
           "fault probability must be in [0, 1]");
  SF_CHECK(rule.first_wave <= rule.last_wave, "fault rule wave range is inverted");
  rules_.push_back(std::move(rule));
  return *this;
}

bool FaultInjector::matches(const FaultRule& rule, std::size_t rule_index,
                            const std::string& step_id, std::uint64_t wave,
                            std::size_t attempt) const {
  if (!rule.step_id.empty() && rule.step_id != step_id) return false;
  if (wave < rule.first_wave || wave > rule.last_wave) return false;
  if (rule.max_attempt != 0 && attempt > rule.max_attempt) return false;
  if (rule.probability >= 1.0) return true;
  // Stateless draw: independent of call order and thread interleaving.
  const std::uint64_t step_hash = std::hash<std::string>{}(step_id);
  return hash_unit(seed_ ^ (rule_index + 1), step_hash, wave, attempt) < rule.probability;
}

void FaultInjector::on_attempt(const std::string& step_id, std::uint64_t wave,
                               std::size_t attempt, const CancellationToken* token) {
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    const FaultRule& rule = rules_[i];
    if (rule.kind == FaultKind::kFailPut) continue;  // handled via should_fail_put
    if (!matches(rule, i, step_id, wave, attempt)) continue;
    injected_.fetch_add(1, std::memory_order_relaxed);
    if (rule.kind == FaultKind::kThrow) {
      SF_LOG_DEBUG("fault") << "injected throw: step '" << step_id << "' wave " << wave
                            << " attempt " << attempt;
      throw InjectedFault(rule.message + " (step '" + step_id + "', wave " +
                          std::to_string(wave) + ", attempt " + std::to_string(attempt) + ")");
    }
    // kHang: cooperative stall. The token's condition-variable sleep returns
    // early the moment the attempt's deadline passes or the watchdog cancels
    // it, and throw_if_cancelled then raises Timeout/Cancelled — exactly how
    // a hung step dies, without a busy poll.
    SF_LOG_DEBUG("fault") << "injected hang: step '" << step_id << "' wave " << wave
                          << " attempt " << attempt << " for " << rule.hang_for.count() << "ms";
    if (token != nullptr) {
      if (!token->sleep_for(rule.hang_for)) token->throw_if_cancelled();
    } else {
      std::this_thread::sleep_for(rule.hang_for);
    }
    return;  // hang elapsed without a deadline: slow but alive
  }
}

FaultInjector& FaultInjector::add_disk_rule(DiskFaultRule rule) {
  SF_CHECK(rule.probability >= 0.0 && rule.probability <= 1.0,
           "disk fault probability must be in [0, 1]");
  SF_CHECK(rule.first_record <= rule.last_record, "disk fault rule record range is inverted");
  disk_rules_.push_back(std::move(rule));
  return *this;
}

namespace {
/// Domain-separates disk-fault draws from step-fault draws sharing a seed.
constexpr std::uint64_t kDiskSalt = 0x6469736b66617ULL;

std::uint64_t tag_hash(std::string_view tag) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : tag) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}
}  // namespace

bool FaultInjector::disk_matches(const DiskFaultRule& rule, std::size_t rule_index,
                                 std::string_view file_tag, std::uint64_t seq) const {
  if (!rule.file_tag.empty() && rule.file_tag != file_tag) return false;
  if (seq < rule.first_record || seq > rule.last_record) return false;
  if (rule.probability >= 1.0) return true;
  // Stateless draw: independent of call order and thread interleaving.
  return hash_unit(seed_ ^ kDiskSalt ^ (rule_index + 1), tag_hash(file_tag), seq) <
         rule.probability;
}

DiskWriteFault FaultInjector::disk_write_fault(std::string_view file_tag,
                                               std::uint64_t record_seq) const {
  for (std::size_t i = 0; i < disk_rules_.size(); ++i) {
    const DiskFaultRule& rule = disk_rules_[i];
    if (rule.kind == DiskFaultKind::kFsyncFail) continue;  // handled via disk_fsync_fault
    if (!disk_matches(rule, i, file_tag, record_seq)) continue;
    injected_.fetch_add(1, std::memory_order_relaxed);
    switch (rule.kind) {
      case DiskFaultKind::kTornWrite: return DiskWriteFault::kTornWrite;
      case DiskFaultKind::kShortWrite: return DiskWriteFault::kShortWrite;
      default: return DiskWriteFault::kCrash;
    }
  }
  return DiskWriteFault::kNone;
}

bool FaultInjector::disk_fsync_fault(std::string_view file_tag, std::uint64_t sync_seq) const {
  for (std::size_t i = 0; i < disk_rules_.size(); ++i) {
    const DiskFaultRule& rule = disk_rules_[i];
    if (rule.kind != DiskFaultKind::kFsyncFail) continue;
    if (!disk_matches(rule, i, file_tag, sync_seq)) continue;
    injected_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

std::size_t FaultInjector::torn_write_bytes(std::string_view file_tag, std::uint64_t record_seq,
                                            std::size_t total_bytes) const noexcept {
  if (total_bytes < 2) return total_bytes;
  return 1 + static_cast<std::size_t>(hash64(seed_ ^ kDiskSalt, tag_hash(file_tag),
                                             record_seq) %
                                      (total_bytes - 1));
}

namespace {
/// Domain-separates net-chaos draws from step/disk draws sharing a seed.
constexpr std::uint64_t kNetSalt = 0x6e657463686173ULL;
}  // namespace

NetFaultKind NetChaosSchedule::draw(std::uint64_t stream, std::uint64_t request,
                                    std::uint64_t attempt) const noexcept {
  const double u = hash_unit(options_.seed ^ kNetSalt, stream, request, attempt);
  double threshold = options_.partial_write;
  if (u < threshold) return NetFaultKind::kPartialWrite;
  threshold += options_.reset;
  if (u < threshold) return NetFaultKind::kReset;
  threshold += options_.stall;
  if (u < threshold) return NetFaultKind::kStall;
  threshold += options_.duplicate;
  if (u < threshold) return NetFaultKind::kDuplicate;
  return NetFaultKind::kNone;
}

std::size_t NetChaosSchedule::cut_point(std::uint64_t stream, std::uint64_t request,
                                        std::uint64_t attempt, std::uint64_t salt,
                                        std::size_t total) const noexcept {
  if (total < 2) return total;
  return 1 + static_cast<std::size_t>(
                 hash64(options_.seed ^ kNetSalt ^ mix64(salt), stream, request, attempt) %
                 (total - 1));
}

bool FaultInjector::should_fail_put(const std::string& step_id, std::uint64_t wave,
                                    std::size_t attempt) const {
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    const FaultRule& rule = rules_[i];
    if (rule.kind != FaultKind::kFailPut) continue;
    if (!matches(rule, i, step_id, wave, attempt)) continue;
    injected_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

}  // namespace smartflux
