#include "common/fault_injection.h"

#include <functional>

#include "common/hashing.h"
#include "common/logging.h"

namespace smartflux {

FaultInjector& FaultInjector::add_rule(FaultRule rule) {
  SF_CHECK(rule.probability >= 0.0 && rule.probability <= 1.0,
           "fault probability must be in [0, 1]");
  SF_CHECK(rule.first_wave <= rule.last_wave, "fault rule wave range is inverted");
  rules_.push_back(std::move(rule));
  return *this;
}

bool FaultInjector::matches(const FaultRule& rule, std::size_t rule_index,
                            const std::string& step_id, std::uint64_t wave,
                            std::size_t attempt) const {
  if (!rule.step_id.empty() && rule.step_id != step_id) return false;
  if (wave < rule.first_wave || wave > rule.last_wave) return false;
  if (rule.max_attempt != 0 && attempt > rule.max_attempt) return false;
  if (rule.probability >= 1.0) return true;
  // Stateless draw: independent of call order and thread interleaving.
  const std::uint64_t step_hash = std::hash<std::string>{}(step_id);
  return hash_unit(seed_ ^ (rule_index + 1), step_hash, wave, attempt) < rule.probability;
}

void FaultInjector::on_attempt(const std::string& step_id, std::uint64_t wave,
                               std::size_t attempt, const CancellationToken* token) {
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    const FaultRule& rule = rules_[i];
    if (rule.kind == FaultKind::kFailPut) continue;  // handled via should_fail_put
    if (!matches(rule, i, step_id, wave, attempt)) continue;
    injected_.fetch_add(1, std::memory_order_relaxed);
    if (rule.kind == FaultKind::kThrow) {
      SF_LOG_DEBUG("fault") << "injected throw: step '" << step_id << "' wave " << wave
                            << " attempt " << attempt;
      throw InjectedFault(rule.message + " (step '" + step_id + "', wave " +
                          std::to_string(wave) + ", attempt " + std::to_string(attempt) + ")");
    }
    // kHang: cooperative stall. throw_if_cancelled raises Timeout the moment
    // the attempt's deadline passes, which is exactly how a hung step dies.
    SF_LOG_DEBUG("fault") << "injected hang: step '" << step_id << "' wave " << wave
                          << " attempt " << attempt << " for " << rule.hang_for.count() << "ms";
    const auto until = CancellationToken::Clock::now() + rule.hang_for;
    while (CancellationToken::Clock::now() < until) {
      if (token) token->throw_if_cancelled();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return;  // hang elapsed without a deadline: slow but alive
  }
}

bool FaultInjector::should_fail_put(const std::string& step_id, std::uint64_t wave,
                                    std::size_t attempt) const {
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    const FaultRule& rule = rules_[i];
    if (rule.kind != FaultKind::kFailPut) continue;
    if (!matches(rule, i, step_id, wave, attempt)) continue;
    injected_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

}  // namespace smartflux
