#pragma once

#include <cstddef>
#include <limits>
#include <span>
#include <vector>

namespace smartflux {

/// Numerically stable streaming mean/variance accumulator (Welford).
/// Thread-compatible; external synchronization required for shared use.
class RunningStats {
 public:
  void add(double x) noexcept;
  /// Merge another accumulator (parallel reduction, Chan et al.).
  void merge(const RunningStats& other) noexcept;

  std::size_t count() const noexcept { return n_; }
  bool has_samples() const noexcept { return n_ > 0; }
  double mean() const noexcept { return n_ == 0 ? 0.0 : mean_; }
  /// Population variance; 0 when fewer than 2 samples.
  double variance() const noexcept;
  /// Sample (Bessel-corrected) variance; 0 when fewer than 2 samples.
  double sample_variance() const noexcept;
  double stddev() const noexcept;
  /// NaN when no samples were added (an empty accumulator has no extremes;
  /// 0.0 here would fabricate a bound). Gate on has_samples() to avoid NaN.
  double min() const noexcept {
    return n_ == 0 ? std::numeric_limits<double>::quiet_NaN() : min_;
  }
  double max() const noexcept {
    return n_ == 0 ? std::numeric_limits<double>::quiet_NaN() : max_;
  }
  double sum() const noexcept { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Sample Pearson correlation coefficient r in [-1, 1].
/// Returns 0 when either series has zero variance or sizes mismatch/empty.
double pearson_correlation(std::span<const double> x, std::span<const double> y) noexcept;

/// Arithmetic mean; 0 for empty input.
double mean(std::span<const double> v) noexcept;

/// Geometric mean of non-negative values; 0 if any value is 0 or input empty.
double geometric_mean(std::span<const double> v) noexcept;

/// p-quantile (linear interpolation) of an unsorted copy; p in [0,1].
double quantile(std::vector<double> v, double p) noexcept;

/// Root-mean-square error between two equal-length series.
double rmse(std::span<const double> a, std::span<const double> b) noexcept;

}  // namespace smartflux
