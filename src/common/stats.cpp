#include "common/stats.h"

#include <algorithm>
#include <cmath>

namespace smartflux {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double n = na + nb;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  mean_ += delta * nb / n;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_);
}

double RunningStats::sample_variance() const noexcept {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double pearson_correlation(std::span<const double> x, std::span<const double> y) noexcept {
  if (x.size() != y.size() || x.empty()) return 0.0;
  const auto n = static_cast<double>(x.size());
  double mx = 0.0, my = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    mx += x[i];
    my += y[i];
  }
  mx /= n;
  my /= n;
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double mean(std::span<const double> v) noexcept {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

double geometric_mean(std::span<const double> v) noexcept {
  if (v.empty()) return 0.0;
  double log_sum = 0.0;
  for (double x : v) {
    if (x <= 0.0) return 0.0;
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(v.size()));
}

double quantile(std::vector<double> v, double p) noexcept {
  if (v.empty()) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  std::sort(v.begin(), v.end());
  const double idx = p * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

double rmse(std::span<const double> a, std::span<const double> b) noexcept {
  if (a.size() != b.size() || a.empty()) return 0.0;
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return std::sqrt(s / static_cast<double>(a.size()));
}

}  // namespace smartflux
