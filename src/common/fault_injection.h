#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/cancellation.h"
#include "common/error.h"

namespace smartflux {

/// Raised by injected step and datastore faults (distinguishable from real
/// workload exceptions in logs and tests).
class InjectedFault : public Error {
 public:
  explicit InjectedFault(const std::string& what) : Error(what) {}
};

/// What an activated fault rule does to the matched step attempt.
enum class FaultKind {
  /// The attempt throws InjectedFault before the step function runs.
  kThrow,
  /// The attempt stalls cooperatively for `hang_for`. With a per-step timeout
  /// armed this surfaces as Timeout through the CancellationToken — the
  /// reproducible version of "step hung past its deadline".
  kHang,
  /// Every datastore write issued by the attempt throws InjectedFault.
  kFailPut,
};

/// One chaos scenario: which step, which waves, which attempts, how often.
/// All matching is deterministic: probabilistic rules draw from a stateless
/// hash of (seed, rule, step, wave, attempt), so the same seed reproduces the
/// exact same fault schedule on every run, at any thread count.
struct FaultRule {
  /// Exact step id to fault; empty matches every step.
  std::string step_id;
  FaultKind kind = FaultKind::kThrow;
  /// Inclusive wave range the rule is active in.
  std::uint64_t first_wave = 0;
  std::uint64_t last_wave = ~std::uint64_t{0};
  /// Fault only attempts 1..max_attempt of a wave (0 = every attempt). E.g.
  /// max_attempt = 1 makes the first attempt fail and the retry succeed.
  std::size_t max_attempt = 0;
  /// Activation probability per (step, wave, attempt), deterministic per seed.
  double probability = 1.0;
  /// kHang: how long the attempt stalls before returning normally.
  std::chrono::milliseconds hang_for{100};
  std::string message = "injected fault";
};

/// What an activated disk-fault rule does to the matched record append or
/// fsync of a durable sink (the datastore WAL, the journal sink).
enum class DiskFaultKind {
  /// The append writes only a deterministic prefix of the record's bytes and
  /// then dies (throws InjectedFault) — a power cut mid-write. Recovery must
  /// tolerate the partial trailing record.
  kTornWrite,
  /// The append writes everything but the final byte and dies — the
  /// boundary case of a torn write (checksum present but wrong length).
  kShortWrite,
  /// The matched fsync call throws InjectedFault. Sinks must treat this as
  /// fatal for the file (fsyncgate: retrying is not safe).
  kFsyncFail,
  /// The append dies *before* writing any byte of the matched record — the
  /// crash-at-record-N primitive the crash-matrix harness sweeps.
  kCrash,
};

/// One disk chaos scenario, matched against (file_tag, record_seq) — the
/// sink's tag ("wal", "journal") and its zero-based append/sync sequence
/// number. Same determinism guarantee as FaultRule: probabilistic draws come
/// from a stateless hash of (seed, rule, tag, seq), so the schedule is
/// byte-identical at any thread count and call order.
struct DiskFaultRule {
  DiskFaultKind kind = DiskFaultKind::kCrash;
  /// Exact sink tag to fault; empty matches every sink.
  std::string file_tag;
  /// Inclusive record/sync sequence range the rule is active in.
  std::uint64_t first_record = 0;
  std::uint64_t last_record = ~std::uint64_t{0};
  /// Activation probability per (tag, seq), deterministic per seed.
  double probability = 1.0;
  std::string message = "injected disk fault";
};

/// Outcome of querying the disk-fault schedule for one record append.
enum class DiskWriteFault : std::uint8_t { kNone, kTornWrite, kShortWrite, kCrash };

/// Deterministic, seeded fault-injection layer. Hooked into the workflow
/// engine (step attempts), the per-attempt datastore client (writes), and
/// the durable sinks (WAL/journal record appends and fsyncs); inert when no
/// rule matches, so it can stay wired in production configs.
class FaultInjector {
 public:
  explicit FaultInjector(std::uint64_t seed = 0) noexcept : seed_(seed) {}

  FaultInjector& add_rule(FaultRule rule);
  FaultInjector& add_disk_rule(DiskFaultRule rule);
  void clear_rules() {
    rules_.clear();
    disk_rules_.clear();
  }
  std::uint64_t seed() const noexcept { return seed_; }

  /// Engine hook, called at the start of every step attempt. Throws
  /// InjectedFault (kThrow) or stalls cooperatively (kHang, unwinding with
  /// Timeout when `token` has an armed deadline that expires mid-hang).
  void on_attempt(const std::string& step_id, std::uint64_t wave, std::size_t attempt,
                  const CancellationToken* token);

  /// Datastore hook: should the writes of this attempt fail?
  bool should_fail_put(const std::string& step_id, std::uint64_t wave,
                       std::size_t attempt) const;

  /// Durable-sink hook, queried once per record append (`record_seq` is the
  /// sink's zero-based append counter). Returns the first matching write
  /// fault, kNone otherwise. Counting a hit is the only side effect; acting
  /// on it (partial write + throw) is the sink's job.
  DiskWriteFault disk_write_fault(std::string_view file_tag, std::uint64_t record_seq) const;

  /// Durable-sink hook, queried once per fsync (`sync_seq` is the sink's
  /// zero-based sync counter). True = the sink must fail this fsync.
  bool disk_fsync_fault(std::string_view file_tag, std::uint64_t sync_seq) const;

  /// For a torn write of `total_bytes`: how many bytes actually reach the
  /// file. Deterministic in (seed, tag, seq); always in [1, total_bytes - 1]
  /// (for total_bytes >= 2), so the record is genuinely partial.
  std::size_t torn_write_bytes(std::string_view file_tag, std::uint64_t record_seq,
                               std::size_t total_bytes) const noexcept;

  /// Total faults activated so far (throws, hangs, failed-put attempts, and
  /// disk faults).
  std::size_t injected_count() const noexcept {
    return injected_.load(std::memory_order_relaxed);
  }

 private:
  bool matches(const FaultRule& rule, std::size_t rule_index, const std::string& step_id,
               std::uint64_t wave, std::size_t attempt) const;
  bool disk_matches(const DiskFaultRule& rule, std::size_t rule_index,
                    std::string_view file_tag, std::uint64_t seq) const;

  std::uint64_t seed_;
  std::vector<FaultRule> rules_;
  std::vector<DiskFaultRule> disk_rules_;
  mutable std::atomic<std::size_t> injected_{0};
};

/// What the network chaos schedule does to one client request attempt.
enum class NetFaultKind : std::uint8_t {
  kNone,
  /// The request bytes go out fragmented into several small writes with
  /// pauses in between — exercises the server's incremental parser and
  /// mid-request read-deadline tracking without tripping it.
  kPartialWrite,
  /// The connection is dropped mid-request (after a deterministic prefix of
  /// the wire bytes) — the client never learns whether the server staged
  /// the rows, which is exactly the window idempotent retry exists for.
  kReset,
  /// The client sends a prefix and then stalls past the server's
  /// request_read_timeout_ms; the server should answer 408 and close.
  kStall,
  /// The full request is sent twice back-to-back with the same idempotency
  /// key; the second answer must be the duplicate re-ack.
  kDuplicate,
};

/// Per-attempt activation probabilities for ChaosClient (net/testing). All
/// zero = inert. The draws are stateless-hash-seeded, so one seed yields
/// one exact fault schedule regardless of timing or interleaving.
struct NetChaosOptions {
  std::uint64_t seed = 0;
  double partial_write = 0.0;
  double reset = 0.0;
  double stall = 0.0;
  double duplicate = 0.0;
  /// kStall: how long the client sits silent mid-request.
  std::chrono::milliseconds stall_for{150};
};

/// Deterministic schedule of socket-level client faults, keyed by
/// (stream, request, attempt) — the network-side sibling of FaultInjector's
/// disk rules. Pure draws: the same coordinates always answer the same
/// fault, so a chaos soak run is reproducible from its seed alone.
class NetChaosSchedule {
 public:
  explicit NetChaosSchedule(NetChaosOptions options = {}) noexcept : options_(options) {}

  /// The fault (if any) for this attempt. Probabilities stack in declared
  /// order over one uniform draw, so kinds are mutually exclusive per
  /// attempt and each keeps its configured marginal rate.
  NetFaultKind draw(std::uint64_t stream, std::uint64_t request,
                    std::uint64_t attempt) const noexcept;

  /// Deterministic cut point in [1, total - 1] for partial writes and
  /// mid-request resets (`salt` separates independent cuts of one attempt).
  /// total < 2 returns total.
  std::size_t cut_point(std::uint64_t stream, std::uint64_t request, std::uint64_t attempt,
                        std::uint64_t salt, std::size_t total) const noexcept;

  void reseed(std::uint64_t seed) noexcept { options_.seed = seed; }
  const NetChaosOptions& options() const noexcept { return options_; }

 private:
  NetChaosOptions options_;
};

}  // namespace smartflux
