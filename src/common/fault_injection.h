#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "common/cancellation.h"
#include "common/error.h"

namespace smartflux {

/// Raised by injected step and datastore faults (distinguishable from real
/// workload exceptions in logs and tests).
class InjectedFault : public Error {
 public:
  explicit InjectedFault(const std::string& what) : Error(what) {}
};

/// What an activated fault rule does to the matched step attempt.
enum class FaultKind {
  /// The attempt throws InjectedFault before the step function runs.
  kThrow,
  /// The attempt stalls cooperatively for `hang_for`. With a per-step timeout
  /// armed this surfaces as Timeout through the CancellationToken — the
  /// reproducible version of "step hung past its deadline".
  kHang,
  /// Every datastore write issued by the attempt throws InjectedFault.
  kFailPut,
};

/// One chaos scenario: which step, which waves, which attempts, how often.
/// All matching is deterministic: probabilistic rules draw from a stateless
/// hash of (seed, rule, step, wave, attempt), so the same seed reproduces the
/// exact same fault schedule on every run, at any thread count.
struct FaultRule {
  /// Exact step id to fault; empty matches every step.
  std::string step_id;
  FaultKind kind = FaultKind::kThrow;
  /// Inclusive wave range the rule is active in.
  std::uint64_t first_wave = 0;
  std::uint64_t last_wave = ~std::uint64_t{0};
  /// Fault only attempts 1..max_attempt of a wave (0 = every attempt). E.g.
  /// max_attempt = 1 makes the first attempt fail and the retry succeed.
  std::size_t max_attempt = 0;
  /// Activation probability per (step, wave, attempt), deterministic per seed.
  double probability = 1.0;
  /// kHang: how long the attempt stalls before returning normally.
  std::chrono::milliseconds hang_for{100};
  std::string message = "injected fault";
};

/// Deterministic, seeded fault-injection layer. Hooked into the workflow
/// engine (step attempts) and the per-attempt datastore client (writes);
/// inert when no rule matches, so it can stay wired in production configs.
class FaultInjector {
 public:
  explicit FaultInjector(std::uint64_t seed = 0) noexcept : seed_(seed) {}

  FaultInjector& add_rule(FaultRule rule);
  void clear_rules() { rules_.clear(); }
  std::uint64_t seed() const noexcept { return seed_; }

  /// Engine hook, called at the start of every step attempt. Throws
  /// InjectedFault (kThrow) or stalls cooperatively (kHang, unwinding with
  /// Timeout when `token` has an armed deadline that expires mid-hang).
  void on_attempt(const std::string& step_id, std::uint64_t wave, std::size_t attempt,
                  const CancellationToken* token);

  /// Datastore hook: should the writes of this attempt fail?
  bool should_fail_put(const std::string& step_id, std::uint64_t wave,
                       std::size_t attempt) const;

  /// Total faults activated so far (throws, hangs, and failed-put attempts).
  std::size_t injected_count() const noexcept {
    return injected_.load(std::memory_order_relaxed);
  }

 private:
  bool matches(const FaultRule& rule, std::size_t rule_index, const std::string& step_id,
               std::uint64_t wave, std::size_t attempt) const;

  std::uint64_t seed_;
  std::vector<FaultRule> rules_;
  mutable std::atomic<std::size_t> injected_{0};
};

}  // namespace smartflux
