#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <ctime>

namespace smartflux {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

LogLevel Logger::level() noexcept { return g_level.load(std::memory_order_relaxed); }

void Logger::set_level(LogLevel level) noexcept {
  g_level.store(level, std::memory_order_relaxed);
}

std::mutex& Logger::mutex() {
  static std::mutex m;
  return m;
}

LogSink& Logger::sink() {
  static LogSink s;
  return s;
}

void Logger::set_sink(LogSink sink) {
  std::lock_guard<std::mutex> lock(mutex());
  Logger::sink() = std::move(sink);
}

void Logger::write(LogLevel level, const std::string& component, const std::string& message) {
  if (Logger::level() > level) return;
  std::lock_guard<std::mutex> lock(mutex());
  if (const LogSink& custom = sink()) {
    custom(level, component, message);
    return;
  }
  const auto now = std::chrono::system_clock::now();
  const std::time_t t = std::chrono::system_clock::to_time_t(now);
  std::tm tm{};
  localtime_r(&t, &tm);
  char ts[32];
  std::strftime(ts, sizeof ts, "%H:%M:%S", &tm);
  std::fprintf(stderr, "[%s] %-5s %s: %s\n", ts, level_name(level), component.c_str(),
               message.c_str());
}

LogCapture::LogCapture() {
  Logger::set_sink([this](LogLevel level, std::string_view component, std::string_view message) {
    std::lock_guard<std::mutex> lock(mutex_);
    records_.push_back({level, std::string(component), std::string(message)});
  });
}

LogCapture::~LogCapture() { Logger::set_sink({}); }

std::vector<LogCapture::Record> LogCapture::records() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return records_;
}

bool LogCapture::contains(std::string_view needle) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& r : records_) {
    if (r.message.find(needle) != std::string::npos) return true;
  }
  return false;
}

void LogCapture::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  records_.clear();
}

}  // namespace smartflux
