#pragma once

#include <cstdint>
#include <cstddef>
#include <cmath>
#include <vector>

namespace smartflux {

/// Deterministic, fast pseudo-random generator (xoshiro256**), seeded via
/// splitmix64. All simulation and learning components take an explicit Rng so
/// that every experiment in the repo is reproducible from a single seed.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    // splitmix64 to spread a small seed over the full 256-bit state.
    auto next = [&seed]() noexcept {
      seed += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      return z ^ (z >> 31);
    };
    for (auto& s : state_) s = next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). Precondition: n > 0.
  std::uint64_t uniform_index(std::uint64_t n) noexcept {
    // Lemire's multiply-shift rejection method (unbiased).
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = -n % n;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    uniform_index(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Standard normal via Marsaglia polar method.
  double normal() noexcept {
    if (has_spare_) {
      has_spare_ = false;
      return spare_;
    }
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double f = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * f;
    has_spare_ = true;
    return u * f;
  }

  double normal(double mean, double stddev) noexcept { return mean + stddev * normal(); }

  bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Poisson-distributed count (Knuth for small lambda, normal approx above 64).
  std::uint64_t poisson(double lambda) noexcept {
    if (lambda <= 0.0) return 0;
    if (lambda > 64.0) {
      const double x = normal(lambda, std::sqrt(lambda));
      return x <= 0.0 ? 0 : static_cast<std::uint64_t>(x + 0.5);
    }
    const double limit = std::exp(-lambda);
    double prod = uniform();
    std::uint64_t n = 0;
    while (prod > limit) {
      ++n;
      prod *= uniform();
    }
    return n;
  }

  /// In-place Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      using std::swap;
      swap(v[i - 1], v[uniform_index(i)]);
    }
  }

  /// Fork a statistically independent child stream (for per-thread use).
  Rng fork() noexcept { return Rng{(*this)() ^ 0xa0761d6478bd642fULL}; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
  double spare_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace smartflux
