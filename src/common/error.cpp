#include "common/error.h"

#include <sstream>

namespace smartflux::detail {

void throw_check_failure(std::string_view cond, std::string_view file, int line,
                         std::string_view msg) {
  std::ostringstream os;
  os << "check failed: (" << cond << ") at " << file << ":" << line << " — " << msg;
  throw InvalidArgument(os.str());
}

}  // namespace smartflux::detail
