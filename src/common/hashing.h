#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace smartflux {

/// splitmix64 finalizer — a strong 64-bit bit mixer.
constexpr std::uint64_t mix64(std::uint64_t z) noexcept {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Stateless hash of up to four coordinates — the basis of the pure
/// (call-order-independent) synthetic data generators: the same
/// (seed, a, b, c, d) always yields the same value, so the adaptive run and
/// its synchronous shadow see identical streams.
constexpr std::uint64_t hash64(std::uint64_t seed, std::uint64_t a, std::uint64_t b = 0,
                               std::uint64_t c = 0, std::uint64_t d = 0) noexcept {
  std::uint64_t h = mix64(seed ^ 0x2545f4914f6cdd1dULL);
  h = mix64(h ^ a);
  h = mix64(h ^ b);
  h = mix64(h ^ c);
  h = mix64(h ^ d);
  return h;
}

/// Uniform double in [0, 1) from a stateless hash.
constexpr double hash_unit(std::uint64_t seed, std::uint64_t a, std::uint64_t b = 0,
                           std::uint64_t c = 0, std::uint64_t d = 0) noexcept {
  return static_cast<double>(hash64(seed, a, b, c, d) >> 11) * 0x1.0p-53;
}

/// Stateless byte-string hash (FNV-1a accumulation, splitmix64 finalizer):
/// the row-key hash the datastore's consistent-hashing shard ring is built
/// on. Seedable so distinct rings draw independent placements; the same
/// (seed, key) always lands on the same point, which is what makes shard
/// routing stable across processes and restarts.
constexpr std::uint64_t hash64_bytes(std::string_view s, std::uint64_t seed = 0) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL ^ mix64(seed);
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return mix64(h);
}

namespace detail {
/// Slice-by-1 CRC32C (Castagnoli) lookup table, built at compile time.
struct Crc32cTable {
  std::uint32_t entry[256] = {};
  constexpr Crc32cTable() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? (0x82f63b78u ^ (c >> 1)) : (c >> 1);
      }
      entry[i] = c;
    }
  }
};
inline constexpr Crc32cTable kCrc32cTable{};
}  // namespace detail

/// CRC32C (Castagnoli polynomial, the checksum HBase/LevelDB/etc. frame WAL
/// records with). Software table-driven implementation — portable, no SSE4.2
/// requirement. Chainable: pass a previous result as `seed` to checksum data
/// split across buffers.
constexpr std::uint32_t crc32c(const char* data, std::size_t n,
                               std::uint32_t seed = 0) noexcept {
  std::uint32_t c = seed ^ 0xffffffffu;
  for (std::size_t i = 0; i < n; ++i) {
    c = detail::kCrc32cTable.entry[(c ^ static_cast<unsigned char>(data[i])) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

inline std::uint32_t crc32c(const void* data, std::size_t n, std::uint32_t seed = 0) noexcept {
  return crc32c(static_cast<const char*>(data), n, seed);
}

/// Piecewise-linear "smooth noise" in [-1, 1]: interpolates hash values at
/// knots every `knot_period` waves, so consecutive waves vary gently (used to
/// emulate the paper's smoothly varying sensor fields, §5.1).
constexpr double smooth_noise(std::uint64_t seed, std::uint64_t stream, std::uint64_t wave,
                              std::uint64_t knot_period) noexcept {
  const std::uint64_t k = wave / knot_period;
  const double frac =
      static_cast<double>(wave % knot_period) / static_cast<double>(knot_period);
  const double a = 2.0 * hash_unit(seed, stream, k) - 1.0;
  const double b = 2.0 * hash_unit(seed, stream, k + 1) - 1.0;
  return a * (1.0 - frac) + b * frac;
}

}  // namespace smartflux
