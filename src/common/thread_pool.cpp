#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>

#include "common/error.h"

namespace smartflux {

ThreadPool::ThreadPool(std::size_t threads) {
  SF_CHECK(threads >= 1, "a thread pool needs at least one worker");
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock lock(mutex_);
      wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // exceptions land in the associated future
  }
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  SF_CHECK(static_cast<bool>(task), "task must be callable");
  std::packaged_task<void()> packaged(std::move(task));
  auto future = packaged.get_future();
  {
    std::lock_guard lock(mutex_);
    SF_CHECK(!stopping_, "thread pool is shutting down");
    queue_.push_back(std::move(packaged));
  }
  wake_.notify_one();
  return future;
}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  SF_CHECK(static_cast<bool>(fn), "fn must be callable");
  if (n == 0) return;
  std::atomic<std::size_t> next{0};
  const std::size_t workers = std::min(n, thread_count());
  std::vector<std::function<void()>> tasks;
  tasks.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    // run_all blocks until every task finished, so capturing locals by
    // reference is safe.
    tasks.push_back([&next, &fn, n] {
      for (std::size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) fn(i);
    });
  }
  run_all(std::move(tasks));
}

void ThreadPool::run_all(std::vector<std::function<void()>> tasks) {
  std::vector<std::future<void>> futures;
  futures.reserve(tasks.size());
  for (auto& task : tasks) futures.push_back(submit(std::move(task)));

  std::exception_ptr first_error;
  for (auto& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace smartflux
