#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>

#include "common/error.h"

namespace smartflux {

ThreadPool::ThreadPool(std::size_t threads) {
  SF_CHECK(threads >= 1, "a thread pool needs at least one worker");
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock lock(mutex_);
      wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // exceptions land in the associated future
  }
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  SF_CHECK(static_cast<bool>(task), "task must be callable");
  std::packaged_task<void()> packaged(std::move(task));
  auto future = packaged.get_future();
  {
    std::lock_guard lock(mutex_);
    SF_CHECK(!stopping_, "thread pool is shutting down");
    queue_.push_back(std::move(packaged));
  }
  wake_.notify_one();
  return future;
}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  SF_CHECK(static_cast<bool>(fn), "fn must be callable");
  if (n == 0) return;
  std::atomic<std::size_t> next{0};
  const std::size_t workers = std::min(n, thread_count());
  std::vector<std::function<void()>> tasks;
  tasks.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    // run_all blocks until every task finished, so capturing locals by
    // reference is safe.
    tasks.push_back([&next, &fn, n] {
      for (std::size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) fn(i);
    });
  }
  run_all(std::move(tasks));
}

void ThreadPool::run_all(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  // Shared batch state: the caller and the pool helpers all pull indices
  // from `next` until the batch is dry. The caller participating is what
  // makes nested run_all (called from inside a pool task) deadlock-free —
  // even if every worker is busy running the outer tasks, the caller drains
  // its own inner batch to completion.
  struct Batch {
    std::vector<std::function<void()>> tasks;
    std::vector<std::exception_ptr> errors;  ///< per task, for in-order rethrow
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::mutex mutex;
    std::condition_variable all_done;
  };
  auto batch = std::make_shared<Batch>();
  batch->tasks = std::move(tasks);
  const std::size_t n = batch->tasks.size();
  batch->errors.resize(n);

  const auto run_one = [](Batch& b) -> bool {
    const std::size_t i = b.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= b.tasks.size()) return false;
    try {
      b.tasks[i]();
    } catch (...) {
      b.errors[i] = std::current_exception();
    }
    if (b.done.fetch_add(1, std::memory_order_acq_rel) + 1 == b.tasks.size()) {
      std::lock_guard lock(b.mutex);
      b.all_done.notify_all();
    }
    return true;
  };

  // Helpers never outnumber the remaining tasks (the caller takes one), and
  // they hold the batch alive via the shared_ptr — a helper scheduled after
  // the batch drained just exits.
  const std::size_t helpers = std::min(n - 1, thread_count());
  for (std::size_t h = 0; h < helpers; ++h) {
    submit([batch, run_one] {
      while (run_one(*batch)) {
      }
    });
  }
  while (run_one(*batch)) {
  }
  {
    std::unique_lock lock(batch->mutex);
    batch->all_done.wait(lock, [&] {
      return batch->done.load(std::memory_order_acquire) == n;
    });
  }
  for (const std::exception_ptr& error : batch->errors) {
    if (error) std::rethrow_exception(error);
  }
}

}  // namespace smartflux
