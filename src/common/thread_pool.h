#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace smartflux {

/// Fixed-size worker pool. Tasks are plain callables; submit() returns a
/// future that either holds the task's completion or its exception.
/// Destruction drains the queue (pending tasks still run) and joins.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::future<void> submit(std::function<void()> task);

  /// Runs every task and blocks until all complete. The first exception (in
  /// task order) is rethrown after all tasks finished.
  void run_all(std::vector<std::function<void()>> tasks);

  std::size_t thread_count() const noexcept { return workers_.size(); }

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable wake_;
  std::deque<std::packaged_task<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace smartflux
