#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace smartflux {

/// Fixed-size worker pool. Tasks are plain callables; submit() returns a
/// future that either holds the task's completion or its exception.
/// Destruction drains the queue (pending tasks still run) and joins.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::future<void> submit(std::function<void()> task);

  /// Runs every task and blocks until all complete. The first exception (in
  /// task order) is rethrown after all tasks finished.
  ///
  /// Caller-participating: the calling thread drains the batch alongside up
  /// to thread_count() pool helpers, so run_all is safe to call from INSIDE
  /// a pool task (nested use — e.g. a workflow step issuing a sharded
  /// put_batch on the same pool). Even with every worker busy, the caller
  /// finishes its own batch and cannot deadlock waiting for itself.
  void run_all(std::vector<std::function<void()>> tasks);

  /// Calls fn(i) for every i in [0, n), dynamically scheduled: one task per
  /// worker pulls indices from a shared counter, so uneven per-index cost
  /// balances across the pool. Blocks until all indices ran; the first
  /// exception is rethrown (the throwing worker's remaining indices are
  /// skipped, other workers drain theirs).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  std::size_t thread_count() const noexcept { return workers_.size(); }

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable wake_;
  std::deque<std::packaged_task<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace smartflux
