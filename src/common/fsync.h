#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace smartflux {

/// Durable-write primitives shared by every on-disk sink (the datastore WAL,
/// checkpoint files, the wave journal). All failures throw smartflux::Error
/// with the path in the message — an fsync error is never swallowed, because
/// a failed fsync leaves the page cache state undefined ("fsyncgate"): the
/// only safe reaction is to stop trusting the file.

/// fsync the file at `path` (opens a transient descriptor). The data must
/// already be in the page cache (e.g. via std::ofstream::flush) — this pushes
/// it to stable storage.
void fsync_path(const std::string& path);

/// fsync the directory itself, making previously created/renamed/unlinked
/// entries durable. Required after the create-temp + rename checkpoint dance.
void fsync_dir(const std::string& dir);

/// Thin RAII append-only file handle over a POSIX descriptor: the WAL's
/// backing file. write_all loops over partial writes; sync() is fsync.
/// Move-only; the destructor closes without syncing (matching what a crash
/// would leave behind — durability points are always explicit).
class SyncFile {
 public:
  SyncFile() = default;
  ~SyncFile();

  SyncFile(SyncFile&& other) noexcept;
  SyncFile& operator=(SyncFile&& other) noexcept;
  SyncFile(const SyncFile&) = delete;
  SyncFile& operator=(const SyncFile&) = delete;

  /// Opens (creating if needed) for appending.
  static SyncFile open_append(const std::string& path);

  bool is_open() const noexcept { return fd_ >= 0; }
  const std::string& path() const noexcept { return path_; }

  /// Appends exactly `n` bytes (looping over short writes). Throws Error on
  /// any write failure.
  void write_all(const void* data, std::size_t n);

  /// fsync. Throws Error on failure.
  void sync();

  void close() noexcept;

 private:
  int fd_ = -1;
  std::string path_;
};

}  // namespace smartflux
