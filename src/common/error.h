#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

namespace smartflux {

/// Base exception for all contract violations and unrecoverable conditions
/// raised by the SmartFlux libraries. Carries a human-readable message that
/// always includes the failing component.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Raised when a caller violates a documented precondition.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Raised when a lookup (table, step, container) does not resolve.
class NotFound : public Error {
 public:
  explicit NotFound(const std::string& what) : Error(what) {}
};

/// Raised when an operation is attempted in the wrong engine phase
/// (e.g. querying the predictor before a model has been trained).
class StateError : public Error {
 public:
  explicit StateError(const std::string& what) : Error(what) {}
};

/// Raised when the engine refuses new work because its overload state
/// machine reached `halted` — the caller must drain backlog (or widen the
/// overload thresholds) before submitting more waves.
class Overloaded : public Error {
 public:
  explicit Overloaded(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] void throw_check_failure(std::string_view cond, std::string_view file, int line,
                                      std::string_view msg);
}  // namespace detail

}  // namespace smartflux

/// Precondition check: throws smartflux::InvalidArgument when `cond` is false.
#define SF_CHECK(cond, msg)                                                  \
  do {                                                                       \
    if (!(cond)) {                                                           \
      ::smartflux::detail::throw_check_failure(#cond, __FILE__, __LINE__, (msg)); \
    }                                                                        \
  } while (false)
