#pragma once

#include <cassert>

namespace smartflux {

/// Global lock-acquisition order of the datastore (see DESIGN.md §12):
///
///   registry (1)  →  table shard slot (2)  →  WAL shard family (3)  →
///   durability meta (4)
///
/// A thread may only acquire locks of non-decreasing rank; multiple locks of
/// the same rank (all slot locks, all WAL family mutexes) must be taken in
/// shard-index order. Checkpoints hold every rank at once, which is exactly
/// why the order has to be a total one: any writer path that inverted it
/// against the checkpoint sweep would deadlock.
inline constexpr int kLockRankRegistry = 1;
inline constexpr int kLockRankTable = 2;
inline constexpr int kLockRankWal = 3;
inline constexpr int kLockRankDurabilityMeta = 4;

#ifndef NDEBUG

namespace detail {
inline int& lock_rank_top() noexcept {
  static thread_local int top = 0;
  return top;
}
}  // namespace detail

/// Debug-only lock-order assertion: construct one right before acquiring a
/// lock of the given rank and keep it alive for the critical section. Ranks
/// must be non-decreasing down the stack; equal ranks are allowed (same-rank
/// locks are taken in shard-index order, which cannot deadlock against the
/// identical order used everywhere else). Compiled out entirely in NDEBUG
/// builds — the release hot path pays nothing.
class LockRankScope {
 public:
  explicit LockRankScope(int rank) noexcept : prev_(detail::lock_rank_top()) {
    assert(rank >= prev_ && "lock-order violation: acquiring a lower-ranked lock "
                            "(registry -> table -> WAL -> meta)");
    detail::lock_rank_top() = rank;
  }
  ~LockRankScope() { detail::lock_rank_top() = prev_; }

  LockRankScope(const LockRankScope&) = delete;
  LockRankScope& operator=(const LockRankScope&) = delete;

 private:
  int prev_;
};

#else

class LockRankScope {
 public:
  explicit LockRankScope(int) noexcept {}
};

#endif

}  // namespace smartflux
