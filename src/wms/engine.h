#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "datastore/datastore.h"
#include "wms/backpressure.h"
#include "wms/probe_gate.h"
#include "wms/retry_policy.h"
#include "wms/workflow_spec.h"

namespace smartflux {
class FaultInjector;
}

namespace smartflux::obs {
class MetricsRegistry;
class Tracer;
struct SpanRecord;
}  // namespace smartflux::obs

namespace smartflux::ds {
class Client;
}

namespace smartflux::wms {

class WaveJournal;
class StallWatchdog;

/// Ingest callback for pipelined wave execution: writes wave w's input data
/// through a Client already bound to w. The engine calls it from a dedicated
/// ingest thread, one wave at a time (never two ingests concurrently), but
/// concurrently with the *compute* of earlier waves — so the tables an
/// ingest writes must be disjoint from the cells workflow steps write, or
/// per-cell timestamps could regress.
using WaveIngest = std::function<void(ds::Client&, ds::Timestamp)>;

/// Decides, per wave, whether an eligible error-tolerant step runs. This is
/// the integration point SmartFlux plugs into (the paper's "triggering
/// notification" API between the framework and the WMS, §4): the controller
/// receives wave begin/end and step completion callbacks and answers
/// triggering queries.
class TriggerController {
 public:
  virtual ~TriggerController() = default;

  virtual void begin_wave(ds::Timestamp wave) { (void)wave; }
  /// Queried once per eligible, error-tolerant step per wave.
  virtual bool should_execute(const WorkflowSpec& spec, std::size_t step_index,
                              ds::Timestamp wave) = 0;
  /// Notified after every step execution (tolerant or not).
  virtual void on_step_executed(const WorkflowSpec& spec, std::size_t step_index,
                                ds::Timestamp wave) {
    (void)spec;
    (void)step_index;
    (void)wave;
  }
  virtual void end_wave(ds::Timestamp wave) { (void)wave; }
};

/// The traditional Synchronous Data-Flow policy: every eligible step runs at
/// every wave (the paper's baseline "sync" model).
class SyncController final : public TriggerController {
 public:
  bool should_execute(const WorkflowSpec&, std::size_t, ds::Timestamp) override { return true; }
};

/// Terminal outcome of one step within one wave.
enum class StepStatus : std::uint8_t {
  kNotEligible = 0,  ///< a predecessor has never completed an execution
  kSkipped,          ///< the trigger controller deferred the execution (QoD)
  kExecuted,         ///< ran to completion
  kFailed,           ///< exhausted its retry budget this wave
  kQuarantined,      ///< circuit open: the engine did not attempt the step
};

/// One-character encoding used by the wave journal ('-', 's', 'X', 'F', 'Q').
char step_status_char(StepStatus status) noexcept;
std::optional<StepStatus> step_status_from_char(char c) noexcept;

/// Outcome of one wave of execution.
struct WaveResult {
  ds::Timestamp wave = 0;
  /// Per-step (spec order): did the step run this wave?
  std::vector<bool> executed;
  /// Per-step wall-clock time spent on the step this wave, including failed
  /// attempts and backoff pauses (zero for steps never attempted). Failed
  /// steps therefore report non-zero durations even though executed stays
  /// false, so wave-latency stats account retry time.
  std::vector<std::chrono::nanoseconds> durations;
  /// Per-step terminal status — distinguishes "skipped by controller" from
  /// "failed after retries" from "quarantined".
  std::vector<StepStatus> status;
  /// Convenience flags: status == kFailed.
  std::vector<bool> failed;
  /// Set for every (transitive) successor of a step that failed or was
  /// quarantined this wave: such steps saw no fresh input from that
  /// predecessor. Controller-deferred skips do NOT mark successors stale —
  /// deferral is the QoD trade, not a fault.
  std::vector<bool> stale;
  /// Last error message of each step this wave (empty if it did not fail).
  std::vector<std::string> errors;
  /// Attempts made per step this wave (0 = never attempted).
  std::vector<std::uint32_t> attempts;

  std::size_t executed_count() const noexcept;
  std::size_t failed_count() const noexcept;
  std::size_t quarantined_count() const noexcept;
};

/// Circuit breaker: after `failure_threshold` consecutive failed waves a step
/// is quarantined — skipped outright (downstream marked stale) for
/// `cooldown_waves` waves, then probed half-open with a single attempt;
/// success closes the circuit, failure restarts the cool-down. Requires a
/// non-propagating retry policy (a propagating failure aborts the wave before
/// the breaker can act).
struct QuarantineOptions {
  /// Consecutive exhausted waves before the circuit opens; 0 disables.
  std::size_t failure_threshold = 0;
  /// Waves the step sits out before a half-open probe.
  std::size_t cooldown_waves = 3;

  bool enabled() const noexcept { return failure_threshold > 0; }
};

/// Notified after a step finishes (the paper's Oozie notification scheme:
/// "Oozie only has to notify when a step finishes its execution").
using StepCompletionListener = std::function<void(const StepId&, ds::Timestamp)>;

/// The workflow management system: executes a WorkflowSpec against a
/// DataStore, wave by wave, delegating triggering decisions for
/// error-tolerant steps to a TriggerController.
///
/// Eligibility rule (§2): a step may run only when every predecessor has
/// completed at least one execution (in this or an earlier wave).
/// Error-intolerant steps run at every wave in which they are eligible.
class WorkflowEngine {
 public:
  struct Options {
    /// Number of worker threads for intra-wave parallelism. 0 = serial.
    /// With workers, steps of the same dependency level whose execution was
    /// approved run concurrently; controller queries and notifications stay
    /// serialized in spec order, so TriggerController implementations need
    /// no internal locking.
    std::size_t worker_threads = 0;
    /// Default retry/backoff/timeout policy; StepSpec::retry overrides it.
    RetryPolicy retry{};
    QuarantineOptions quarantine{};
    /// Seeds the deterministic backoff jitter.
    std::uint64_t retry_seed = 0;
    /// Optional deterministic fault-injection layer (not owned). Faults are
    /// injected at the start of every attempt and into the attempt's
    /// datastore writes.
    FaultInjector* fault_injector = nullptr;
    /// Optional metrics registry (not owned; see src/obs). When set, the
    /// engine records waves, per-step status counts, retry/quarantine
    /// counters, and wave/step duration histograms under sf_wms_*. When
    /// null (the default) the only cost is one pointer test per wave.
    obs::MetricsRegistry* metrics = nullptr;
    /// Optional tracer (not owned): one span per wave plus one per attempted
    /// step, parented to the wave span.
    obs::Tracer* tracer = nullptr;
    /// Optional stall watchdog (not owned; may be shared across engines).
    /// Every step attempt is bracketed begin/end so a wedged attempt gets
    /// its CancellationToken cancelled cooperatively.
    StallWatchdog* watchdog = nullptr;
  };

  WorkflowEngine(WorkflowSpec spec, ds::DataStore& store);
  WorkflowEngine(WorkflowSpec spec, ds::DataStore& store, Options options);
  ~WorkflowEngine();

  /// Runs one wave. Steps execute in topological order; each step receives a
  /// Client stamped with the wave timestamp. Waves must be strictly
  /// increasing.
  WaveResult run_wave(ds::Timestamp wave, TriggerController& controller);

  /// Convenience: runs waves [first, first+count) under one controller.
  std::vector<WaveResult> run_waves(ds::Timestamp first, std::size_t count,
                                    TriggerController& controller);

  /// Pipelined variant of run_waves: a dedicated ingest thread runs
  /// `ingest(client, w)` for up to `depth` waves ahead of the wave currently
  /// computing, so wave w+1's feed lands in the store while wave w's steps
  /// execute. Wave w never starts before its own ingest completed, and
  /// ingests run strictly one at a time in wave order. Because steps read
  /// as-of their wave (Client::get/scan), compute at wave w is blind to the
  /// ingest of w+1 — but the store must retain enough history:
  /// requires store.max_versions() >= depth + 1 (throws InvalidArgument
  /// otherwise, and when depth == 0). An ingest failure for wave w surfaces
  /// from this call before wave w runs; already-completed waves' results are
  /// lost with the exception, matching run_waves.
  std::vector<WaveResult> run_waves_pipelined(ds::Timestamp first, std::size_t count,
                                              TriggerController& controller,
                                              const WaveIngest& ingest, std::size_t depth = 1);

  /// Backpressured variant: the ingest worker produces waves as fast as it
  /// can, but admission into the ingested-not-yet-computed window is bounded
  /// by `pressure` (high/low watermarks). Under OverflowPolicy::kBlock the
  /// producer stalls until compute drains the window to the low watermark;
  /// under kShed a refused wave's feed is never written and the wave is
  /// journaled as shed via shed_wave() — dropped accountably, never lost.
  /// Requires pressure.enabled() and store.max_versions() >=
  /// pressure.high_watermark (at most high-1 newer versions land while a
  /// wave computes). Lifetime queue counters land in *stats_out when given.
  std::vector<WaveResult> run_waves_pipelined(ds::Timestamp first, std::size_t count,
                                              TriggerController& controller,
                                              const WaveIngest& ingest,
                                              const PressureOptions& pressure,
                                              PressureStats* stats_out = nullptr);

  /// Sheds one wave under overload: no step runs, every step is journaled as
  /// kSkipped and the wave commits to the store, so recovery replays it as a
  /// completed (empty) wave instead of re-running it. Same strictly-
  /// increasing wave contract as run_wave.
  WaveResult shed_wave(ds::Timestamp wave);

  const WorkflowSpec& spec() const noexcept { return spec_; }
  ds::DataStore& store() noexcept { return *store_; }

  /// Total executions of a step across all waves so far.
  std::size_t execution_count(std::size_t step_index) const;
  std::size_t total_executions() const noexcept { return total_executions_; }
  std::size_t waves_run() const noexcept { return waves_run_; }
  /// Waves dropped through shed_wave() (counted within waves_run()).
  std::size_t waves_shed() const noexcept { return waves_shed_; }
  /// Wave of the most recent execution of a step; nullopt if never run.
  std::optional<ds::Timestamp> last_executed_wave(std::size_t step_index) const;
  /// Most recent wave run (or restored from a journal); nullopt if none.
  std::optional<ds::Timestamp> last_wave() const noexcept { return last_wave_; }

  void add_completion_listener(StepCompletionListener listener);

  /// Waves in which the step exhausted its retry budget, across all waves.
  std::size_t failure_count(std::size_t step_index) const;
  /// what() of the most recent recorded failure (empty if none).
  const std::string& last_failure_message() const noexcept { return last_failure_; }

  /// Circuit-breaker introspection.
  bool is_quarantined(std::size_t step_index) const;
  /// Times the step's circuit has opened so far.
  std::size_t quarantine_count(std::size_t step_index) const;

  /// Attaches an append-only journal: every completed wave's per-step
  /// statuses are recorded (and written through to the journal's sink, if
  /// one is open). The journal is bound to this workflow's step ids on
  /// attach. Pass nullptr to detach.
  void attach_journal(WaveJournal* journal);

  /// Crash recovery: replays a journal into a freshly constructed engine,
  /// restoring execution counts, failure counts, last-executed waves and
  /// quarantine state, so the next run_wave resumes after the last completed
  /// wave. Throws StateError if this engine already ran waves, and
  /// InvalidArgument if the journal does not match the workflow.
  void restore_from_journal(const WaveJournal& journal);

  /// Resets execution-history bookkeeping (not the data store).
  void reset_history();

 private:
  /// Per-step circuit-breaker state.
  struct StepFaultState {
    std::size_t consecutive_failures = 0;
    bool quarantined = false;
    /// Waves sat out since the circuit (re-)opened.
    std::size_t waves_in_quarantine = 0;
    std::size_t times_quarantined = 0;
  };

  /// Result of the retry loop for one step in one wave.
  struct AttemptOutcome {
    bool success = false;
    /// Wall clock across all attempts, including backoff pauses.
    std::chrono::nanoseconds elapsed{0};
    /// When the first attempt started (feeds step spans when tracing).
    std::chrono::steady_clock::time_point start{};
    std::uint32_t attempts = 0;
    std::string error;  ///< last failure message; empty on success
  };

  /// Pre-resolved metric handles (built once at construction when
  /// Options::metrics is set, so waves touch only lock-free atomics).
  struct EngineObs;

  WaveResult run_wave_serial(ds::Timestamp wave, TriggerController& controller);
  WaveResult run_wave_parallel(ds::Timestamp wave, TriggerController& controller);
  void process_step(std::size_t index, ds::Timestamp wave, WaveResult& result,
                    TriggerController& controller);
  bool eligible(std::size_t index) const;
  const RetryPolicy& policy_for(std::size_t index) const;
  /// Quarantine gate, evaluated before eligibility/triggering: returns true
  /// when the step must sit this wave out; sets *probe when a half-open
  /// probe is due instead. Probe admission is a CAS on probe_gate_ so
  /// concurrent gate evaluations (pipelined waves) admit exactly one probe;
  /// a caller that received *probe == true owns the claim and must release
  /// it once the probe's outcome is applied (or the step was not run).
  bool quarantine_gate(std::size_t index, bool* probe);
  /// Runs the retry loop. `attempts_cap` > 0 bounds the attempts (half-open
  /// probes use 1). On exhaustion the failure is recorded (failure_count,
  /// last_failure_message) and — under a propagating policy — the original
  /// exception is rethrown.
  AttemptOutcome run_step_attempts(std::size_t index, ds::Timestamp wave,
                                   std::size_t attempts_cap);
  /// Records a non-success terminal outcome into the result row.
  void record_outcome(std::size_t index, WaveResult& result, StepStatus status,
                      const AttemptOutcome& outcome);
  void record_execution(std::size_t index, ds::Timestamp wave, WaveResult& result,
                        const AttemptOutcome& outcome, TriggerController& controller);
  /// Folds one completed wave into the metric families and trace buffer.
  /// Runs serially after the wave (outside any worker), so no locking.
  void record_wave_observability(const WaveResult& result,
                                 std::chrono::steady_clock::time_point wave_start);
  /// Folds one step's terminal status into execution/failure bookkeeping and
  /// the circuit-breaker state machine. Shared verbatim by live execution
  /// and journal replay, so a restored engine lands in the exact state the
  /// crashed one was in.
  void apply_status(std::size_t index, StepStatus status, ds::Timestamp wave,
                    bool count_failure);
  void mark_stale(WaveResult& result) const;
  static WaveResult make_result(ds::Timestamp wave, std::size_t steps);

  WorkflowSpec spec_;
  ds::DataStore* store_;
  Options options_;
  std::unique_ptr<ThreadPool> pool_;
  std::vector<std::size_t> exec_counts_;
  std::vector<std::size_t> failure_counts_;
  std::vector<StepFaultState> fault_states_;
  ProbeGate probe_gate_;  ///< single-slot half-open probe admission per step
  std::vector<std::uint64_t> step_hashes_;  ///< per-step hash for jitter draws
  /// "workflow/step" history keys, built only when a watchdog is attached.
  std::vector<std::string> watchdog_keys_;
  std::mutex failure_mutex_;  ///< guards failure counts/message under parallel waves
  std::string last_failure_;
  std::vector<std::optional<ds::Timestamp>> last_exec_wave_;
  std::unique_ptr<EngineObs> obs_;  ///< null when Options::metrics is null
  /// Per-step attempt start times of the current wave (span starts).
  std::vector<std::chrono::steady_clock::time_point> step_starts_;
  /// Pre-built "step:<id>" span names (built only when a tracer is attached,
  /// so the per-wave trace batch never concatenates strings).
  std::vector<std::string> step_span_names_;
  /// Scratch batch reused across waves; record_all() consumes the records
  /// but leaves the capacity in place.
  std::vector<obs::SpanRecord> trace_batch_;
  std::vector<StepCompletionListener> listeners_;
  WaveJournal* journal_ = nullptr;
  std::size_t total_executions_ = 0;
  std::size_t waves_run_ = 0;
  std::size_t waves_shed_ = 0;
  std::optional<ds::Timestamp> last_wave_;
};

}  // namespace smartflux::wms
