#pragma once

#include <chrono>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "common/thread_pool.h"
#include "datastore/datastore.h"
#include "wms/workflow_spec.h"

namespace smartflux::wms {

/// Decides, per wave, whether an eligible error-tolerant step runs. This is
/// the integration point SmartFlux plugs into (the paper's "triggering
/// notification" API between the framework and the WMS, §4): the controller
/// receives wave begin/end and step completion callbacks and answers
/// triggering queries.
class TriggerController {
 public:
  virtual ~TriggerController() = default;

  virtual void begin_wave(ds::Timestamp wave) { (void)wave; }
  /// Queried once per eligible, error-tolerant step per wave.
  virtual bool should_execute(const WorkflowSpec& spec, std::size_t step_index,
                              ds::Timestamp wave) = 0;
  /// Notified after every step execution (tolerant or not).
  virtual void on_step_executed(const WorkflowSpec& spec, std::size_t step_index,
                                ds::Timestamp wave) {
    (void)spec;
    (void)step_index;
    (void)wave;
  }
  virtual void end_wave(ds::Timestamp wave) { (void)wave; }
};

/// The traditional Synchronous Data-Flow policy: every eligible step runs at
/// every wave (the paper's baseline "sync" model).
class SyncController final : public TriggerController {
 public:
  bool should_execute(const WorkflowSpec&, std::size_t, ds::Timestamp) override { return true; }
};

/// Outcome of one wave of execution.
struct WaveResult {
  ds::Timestamp wave = 0;
  /// Per-step (spec order): did the step run this wave?
  std::vector<bool> executed;
  /// Per-step wall-clock execution time (zero for skipped steps).
  std::vector<std::chrono::nanoseconds> durations;

  std::size_t executed_count() const noexcept;
};

/// Notified after a step finishes (the paper's Oozie notification scheme:
/// "Oozie only has to notify when a step finishes its execution").
using StepCompletionListener = std::function<void(const StepId&, ds::Timestamp)>;

/// The workflow management system: executes a WorkflowSpec against a
/// DataStore, wave by wave, delegating triggering decisions for
/// error-tolerant steps to a TriggerController.
///
/// Eligibility rule (§2): a step may run only when every predecessor has
/// completed at least one execution (in this or an earlier wave).
/// Error-intolerant steps run at every wave in which they are eligible.
class WorkflowEngine {
 public:
  /// What to do when a step's computation throws (real WMSs retry failed
  /// actions; Oozie has per-action retry policies).
  enum class FailurePolicy {
    kPropagate,  ///< rethrow to the run_wave caller (default)
    kRetryOnce,  ///< retry once, then record the failure and continue the wave
    kSkipStep,   ///< record the failure and continue the wave
  };

  struct Options {
    /// Number of worker threads for intra-wave parallelism. 0 = serial.
    /// With workers, steps of the same dependency level whose execution was
    /// approved run concurrently; controller queries and notifications stay
    /// serialized in spec order, so TriggerController implementations need
    /// no internal locking.
    std::size_t worker_threads = 0;
    FailurePolicy failure_policy = FailurePolicy::kPropagate;
  };

  WorkflowEngine(WorkflowSpec spec, ds::DataStore& store);
  WorkflowEngine(WorkflowSpec spec, ds::DataStore& store, Options options);

  /// Runs one wave. Steps execute in topological order; each step receives a
  /// Client stamped with the wave timestamp. Waves must be strictly
  /// increasing.
  WaveResult run_wave(ds::Timestamp wave, TriggerController& controller);

  /// Convenience: runs waves [first, first+count) under one controller.
  std::vector<WaveResult> run_waves(ds::Timestamp first, std::size_t count,
                                    TriggerController& controller);

  const WorkflowSpec& spec() const noexcept { return spec_; }
  ds::DataStore& store() noexcept { return *store_; }

  /// Total executions of a step across all waves so far.
  std::size_t execution_count(std::size_t step_index) const;
  std::size_t total_executions() const noexcept { return total_executions_; }
  std::size_t waves_run() const noexcept { return waves_run_; }
  /// Wave of the most recent execution of a step; nullopt if never run.
  std::optional<ds::Timestamp> last_executed_wave(std::size_t step_index) const;

  void add_completion_listener(StepCompletionListener listener);

  /// Failures swallowed by kRetryOnce/kSkipStep, per step.
  std::size_t failure_count(std::size_t step_index) const;
  /// what() of the most recent swallowed failure (empty if none).
  const std::string& last_failure_message() const noexcept { return last_failure_; }

  /// Resets execution-history bookkeeping (not the data store).
  void reset_history();

 private:
  void execute_step(std::size_t index, ds::Timestamp wave, WaveResult& result,
                    TriggerController& controller);
  WaveResult run_wave_serial(ds::Timestamp wave, TriggerController& controller);
  WaveResult run_wave_parallel(ds::Timestamp wave, TriggerController& controller);
  bool eligible(std::size_t index) const;
  /// Runs a step's computation under the failure policy. Returns the
  /// duration on success; nullopt when the failure was swallowed.
  std::optional<std::chrono::nanoseconds> run_step_fn(std::size_t index, ds::Timestamp wave);
  void record_execution(std::size_t index, ds::Timestamp wave, WaveResult& result,
                        std::chrono::nanoseconds duration, TriggerController& controller);

  WorkflowSpec spec_;
  ds::DataStore* store_;
  Options options_;
  std::unique_ptr<ThreadPool> pool_;
  std::vector<std::size_t> exec_counts_;
  std::vector<std::size_t> failure_counts_;
  std::mutex failure_mutex_;  ///< guards the two fields below under parallel waves
  std::string last_failure_;
  std::vector<std::optional<ds::Timestamp>> last_exec_wave_;
  std::vector<StepCompletionListener> listeners_;
  std::size_t total_executions_ = 0;
  std::size_t waves_run_ = 0;
  std::optional<ds::Timestamp> last_wave_;
};

}  // namespace smartflux::wms
