#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>

#include "common/error.h"
#include "datastore/types.h"

namespace smartflux::wms {

/// What a producer hitting the high watermark does.
enum class OverflowPolicy : std::uint8_t {
  /// The producer blocks until the queue drains to the low watermark.
  kBlock,
  /// The push is refused (returns false) and counted; the caller journals
  /// the refused wave as shed so it is dropped *accountably*, never lost.
  kShed,
};

/// Admission control for the pipelined ingest queue (and any other bounded
/// wave hand-off). Watermark semantics are hysteretic: admission closes when
/// the queue depth *reaches* high_watermark and re-opens only once the
/// consumer has drained it to low_watermark — so a producer racing a slow
/// consumer oscillates between the two marks instead of hammering the
/// boundary. high_watermark == 0 disables the bound entirely (the pre-PR-7
/// unbounded behaviour).
struct PressureOptions {
  /// Queue depth at which admission closes; 0 = unbounded.
  std::size_t high_watermark = 0;
  /// Depth a gated producer resumes at; 0 defaults to ceil(high / 2).
  std::size_t low_watermark = 0;
  OverflowPolicy overflow = OverflowPolicy::kBlock;

  bool enabled() const noexcept { return high_watermark > 0; }
  std::size_t resume_depth() const noexcept {
    if (!enabled()) return 0;
    if (low_watermark > 0 && low_watermark < high_watermark) return low_watermark;
    return (high_watermark + 1) / 2;
  }
};

/// Counters a bounded queue accumulates over its lifetime (read them after
/// the producers/consumers joined, or accept slightly stale values).
struct PressureStats {
  std::size_t pushed = 0;          ///< waves admitted
  std::size_t shed = 0;            ///< pushes refused under kShed
  std::size_t producer_blocks = 0; ///< times a kBlock producer had to wait
  std::size_t peak_depth = 0;      ///< high-water mark actually reached
};

/// Bounded multi-producer/multi-consumer FIFO of wave numbers with
/// high/low-watermark admission control — the backpressure primitive between
/// a wave producer (ingest scheduler, arrival feed) and the compute loop.
///
/// Invariants (property-tested in tests/overload_test.cpp):
///  - depth() never exceeds high_watermark;
///  - a producer blocked at the high watermark resumes once the consumer
///    drains the queue to the low watermark;
///  - pushed == popped + shed + depth() at every quiescent point, so no wave
///    is ever silently dropped.
class BoundedWaveQueue {
 public:
  explicit BoundedWaveQueue(PressureOptions options = {}) : options_(options) {
    SF_CHECK(!options_.enabled() || options_.resume_depth() <= options_.high_watermark,
             "low watermark must not exceed the high watermark");
  }

  /// Admits `wave`. Under kBlock this waits for the consumer when the gate
  /// is closed (returns false only if the queue is closed while waiting);
  /// under kShed a closed gate refuses immediately with false.
  bool push(ds::Timestamp wave) {
    std::unique_lock lock(mutex_);
    if (closed_) return false;
    if (gate_closed()) {
      if (options_.overflow == OverflowPolicy::kShed) {
        ++stats_.shed;
        return false;
      }
      ++stats_.producer_blocks;
      space_cv_.wait(lock, [&] { return closed_ || !gate_closed(); });
      if (closed_) return false;
    }
    queue_.push_back(wave);
    ++stats_.pushed;
    stats_.peak_depth = std::max(stats_.peak_depth, queue_.size());
    if (options_.enabled() && queue_.size() >= options_.high_watermark) gated_ = true;
    item_cv_.notify_one();
    return true;
  }

  /// Next wave in FIFO order; blocks until one is available or the queue is
  /// closed *and* drained (then nullopt).
  std::optional<ds::Timestamp> pop() {
    std::unique_lock lock(mutex_);
    item_cv_.wait(lock, [&] { return closed_ || !queue_.empty(); });
    if (queue_.empty()) return std::nullopt;
    const ds::Timestamp wave = queue_.front();
    queue_.pop_front();
    if (gated_ && queue_.size() <= options_.resume_depth()) {
      gated_ = false;
      space_cv_.notify_all();
    }
    return wave;
  }

  /// Wakes every blocked producer and consumer; further pushes are refused,
  /// pops drain what remains.
  void close() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
    }
    item_cv_.notify_all();
    space_cv_.notify_all();
  }

  std::size_t depth() const {
    std::lock_guard lock(mutex_);
    return queue_.size();
  }
  bool gated() const {
    std::lock_guard lock(mutex_);
    return gated_;
  }
  /// True once close() was called: every further push is refused. The
  /// network front-end's admission check reads this to turn a closed queue
  /// into 503s instead of silently accepting rows no wave will consume.
  bool closed() const {
    std::lock_guard lock(mutex_);
    return closed_;
  }
  PressureStats stats() const {
    std::lock_guard lock(mutex_);
    return stats_;
  }
  const PressureOptions& options() const noexcept { return options_; }

 private:
  /// Caller holds mutex_. Closed-gate hysteresis: stays closed until the
  /// consumer drains to the low watermark (pop() re-opens it).
  bool gate_closed() const {
    if (!options_.enabled()) return false;
    return gated_ || queue_.size() >= options_.high_watermark;
  }

  PressureOptions options_;
  mutable std::mutex mutex_;
  std::condition_variable item_cv_;
  std::condition_variable space_cv_;
  std::deque<ds::Timestamp> queue_;
  PressureStats stats_;
  bool gated_ = false;
  bool closed_ = false;
};

}  // namespace smartflux::wms
