#pragma once

#include <atomic>
#include <cstddef>
#include <memory>

namespace smartflux::wms {

/// Per-step half-open probe admission. A quarantined step whose cooldown has
/// elapsed is allowed exactly ONE in-flight probe attempt; with pipelined
/// waves, two waves can evaluate the gate concurrently, so admission must be
/// a compare-and-swap on shared state — a plain "cooldown elapsed?" check
/// admits both (the PR 7 bugfix, regression-tested under TSan).
///
/// Lifecycle: try_claim() wins the probe slot; the winner MUST release() it
/// on every exit path that does not consume the probe (step skipped, gate
/// closed elsewhere) or after the probe's outcome is applied, so the next
/// wave can probe again if the step stays quarantined.
class ProbeGate {
 public:
  ProbeGate() = default;
  explicit ProbeGate(std::size_t steps) { reset(steps); }

  /// Drops all claims and resizes to `steps` slots (engine construction /
  /// journal restore).
  void reset(std::size_t steps) {
    size_ = steps;
    slots_ = std::make_unique<std::atomic<bool>[]>(steps);
    for (std::size_t i = 0; i < steps; ++i) slots_[i].store(false, std::memory_order_relaxed);
  }

  /// Atomically claims the single probe slot for `step`. Exactly one caller
  /// among any number of concurrent ones succeeds until release().
  bool try_claim(std::size_t step) noexcept {
    bool expected = false;
    return slots_[step].compare_exchange_strong(expected, true, std::memory_order_acq_rel,
                                                std::memory_order_acquire);
  }

  void release(std::size_t step) noexcept {
    slots_[step].store(false, std::memory_order_release);
  }

  bool claimed(std::size_t step) const noexcept {
    return slots_[step].load(std::memory_order_acquire);
  }

  std::size_t size() const noexcept { return size_; }

 private:
  std::size_t size_ = 0;
  std::unique_ptr<std::atomic<bool>[]> slots_;
};

}  // namespace smartflux::wms
