#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/cancellation.h"
#include "datastore/client.h"
#include "datastore/container_ref.h"
#include "wms/retry_policy.h"

namespace smartflux::wms {

using StepId = std::string;

/// Execution context handed to a step's computation: the wave it runs in and
/// an adapted data-store client (all I/O goes through the store — steps share
/// no other state, exactly as in the paper's model).
struct StepContext {
  ds::Client& client;
  ds::Timestamp wave;
  StepId step;
  /// Cooperative cancellation: non-null when the engine enforces a per-step
  /// timeout. Long-running steps should poll check_cancelled() so a hung or
  /// overrunning attempt unwinds at its deadline instead of blocking the wave.
  const CancellationToken* cancel = nullptr;

  bool cancelled() const noexcept { return cancel != nullptr && cancel->cancelled(); }
  void check_cancelled() const {
    if (cancel != nullptr) cancel->throw_if_cancelled();
  }
};

using StepFn = std::function<void(StepContext&)>;

/// Declarative description of one processing step (the paper's extended Oozie
/// action: computation + data containers + QoD error bound).
struct StepSpec {
  StepId id;
  StepFn fn;
  std::vector<StepId> predecessors;
  /// Containers this step reads; impact is monitored on these.
  std::vector<ds::ContainerRef> inputs;
  /// Containers this step writes; output error is measured on these.
  std::vector<ds::ContainerRef> outputs;
  /// Maximum tolerated output error max_ε (in [0,1] for the relative error
  /// metric, any non-negative value for RMSE). Unset = the step is
  /// error-intolerant and always executes synchronously (paper: steps that
  /// feed real-time queries or critical alerts).
  std::optional<double> max_error;
  /// Per-step retry/timeout override; unset steps use the engine default.
  std::optional<RetryPolicy> retry;

  bool tolerates_error() const noexcept { return max_error.has_value(); }
};

/// A validated DAG of processing steps. Construction performs full
/// validation: unique ids, resolvable predecessors, acyclicity, and at least
/// one source step. Immutable after construction.
class WorkflowSpec {
 public:
  WorkflowSpec(std::string name, std::vector<StepSpec> steps);

  const std::string& name() const noexcept { return name_; }
  const std::vector<StepSpec>& steps() const noexcept { return steps_; }
  std::size_t size() const noexcept { return steps_.size(); }

  const StepSpec& step(const StepId& id) const;
  const StepSpec& step_at(std::size_t index) const { return steps_[index]; }
  std::size_t index_of(const StepId& id) const;
  bool contains(const StepId& id) const noexcept;

  /// Step indices in a valid topological order (computed at construction).
  const std::vector<std::size_t>& topological_order() const noexcept { return topo_order_; }

  /// Steps grouped by dependency depth (longest path from a source): steps
  /// within one level share no dependency path, so a parallel engine may run
  /// them concurrently. Levels are ordered; within a level, indices follow
  /// spec order.
  const std::vector<std::vector<std::size_t>>& levels() const noexcept { return levels_; }

  /// Direct successor indices of a step.
  const std::vector<std::size_t>& successors(std::size_t index) const {
    return successors_[index];
  }
  /// Direct predecessor indices of a step.
  const std::vector<std::size_t>& predecessors(std::size_t index) const {
    return predecessors_[index];
  }

  /// Indices of sink steps (no successors) — these produce the workflow
  /// output (§1: "steps that do not have any successor steps").
  std::vector<std::size_t> sinks() const;
  /// Indices of source steps (no predecessors).
  std::vector<std::size_t> sources() const;

  /// Indices of steps that declare an error bound (the learnable labels).
  std::vector<std::size_t> error_tolerant_steps() const;

 private:
  void validate_and_index();

  std::string name_;
  std::vector<StepSpec> steps_;
  std::map<StepId, std::size_t> index_;
  std::vector<std::vector<std::size_t>> successors_;
  std::vector<std::vector<std::size_t>> predecessors_;
  std::vector<std::size_t> topo_order_;
  std::vector<std::vector<std::size_t>> levels_;
};

}  // namespace smartflux::wms
