#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "common/cancellation.h"
#include "datastore/types.h"

namespace smartflux::obs {
class MetricsRegistry;
class Counter;
class Gauge;
}  // namespace smartflux::obs

namespace smartflux::wms {

struct WatchdogOptions {
  /// An attempt is declared stalled once it runs longer than
  /// stall_multiplier × the step's historical mean duration (successful
  /// attempts only, so cancelled hangs never inflate their own threshold).
  double stall_multiplier = 8.0;
  /// Floor under the scaled threshold — steps with sub-millisecond history
  /// are not cancelled over scheduler jitter.
  std::chrono::milliseconds min_stall{250};
  /// Monitor thread scan cadence.
  std::chrono::milliseconds poll_interval{20};
  /// Optional sf_watchdog_* metrics (not owned).
  obs::MetricsRegistry* metrics = nullptr;
};

/// Detects wedged step attempts and fires cooperative cancellation.
///
/// The engine brackets every attempt with begin_attempt()/end_attempt(); a
/// monitor thread scans in-flight attempts every poll_interval and, when one
/// overruns its stall threshold, calls cancel() on the attempt's
/// CancellationToken — the step's next token poll (or its FaultInjector
/// hang-sleep) unwinds with Cancelled, and the engine's retry/quarantine
/// machinery takes over. Purely cooperative: a step that never polls its
/// token is detected but not interrupted.
///
/// A step with no successful history yet is NOT watched — the watchdog has
/// no baseline to judge it against, and the per-attempt RetryPolicy timeout
/// already bounds first executions.
///
/// Thread safety: begin/end may be called from any engine worker thread; the
/// token pointer is only dereferenced by the monitor under the same mutex
/// end_attempt() takes, so the token (stack-allocated per attempt) can never
/// be cancelled after the attempt returned. One watchdog may serve several
/// engines.
class StallWatchdog {
 public:
  explicit StallWatchdog(WatchdogOptions options = {});
  ~StallWatchdog();

  StallWatchdog(const StallWatchdog&) = delete;
  StallWatchdog& operator=(const StallWatchdog&) = delete;

  /// Registers an in-flight attempt. `step_key` identifies the step's
  /// duration history (engines pass "workflow/step"); `token` must stay
  /// alive until the matching end_attempt(). Returns the ticket to close
  /// the bracket with.
  std::uint64_t begin_attempt(const std::string& step_key, ds::Timestamp wave,
                              CancellationToken* token);

  /// Closes the bracket. Successful attempts feed the step's duration
  /// history; a success on a step the watchdog previously cancelled counts
  /// as a recovery.
  void end_attempt(std::uint64_t ticket, std::chrono::nanoseconds elapsed, bool success);

  /// Times the monitor cancelled a stalled attempt.
  std::size_t stalls_fired() const noexcept;
  /// Stalled steps that later completed successfully.
  std::size_t recoveries() const noexcept;
  /// Successful-attempt mean for a step key; 0 when no history.
  std::chrono::nanoseconds historical_mean(const std::string& step_key) const;

  const WatchdogOptions& options() const noexcept { return options_; }

 private:
  using Clock = std::chrono::steady_clock;

  struct Inflight {
    std::string key;
    ds::Timestamp wave = 0;
    CancellationToken* token = nullptr;
    Clock::time_point deadline{};  ///< max() = unwatched (no history)
    bool fired = false;
  };

  struct History {
    double mean_ns = 0.0;
    std::size_t samples = 0;
  };

  void monitor_loop();

  WatchdogOptions options_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::unordered_map<std::uint64_t, Inflight> inflight_;
  std::unordered_map<std::string, History> history_;
  /// Step keys with a fired stall and no successful completion yet.
  std::unordered_set<std::string> awaiting_recovery_;
  std::uint64_t next_ticket_ = 1;
  std::size_t stalls_fired_ = 0;
  std::size_t recoveries_ = 0;
  bool stop_ = false;

  obs::Counter* stalls_metric_ = nullptr;      ///< sf_watchdog_stalls_total
  obs::Counter* recoveries_metric_ = nullptr;  ///< sf_watchdog_recoveries_total
  obs::Gauge* inflight_metric_ = nullptr;      ///< sf_watchdog_inflight_attempts

  std::thread monitor_;  ///< last member: started after everything above
};

}  // namespace smartflux::wms
