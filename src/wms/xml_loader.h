#pragma once

#include <map>
#include <string>
#include <string_view>

#include "wms/workflow_spec.h"

namespace smartflux::wms {

/// Maps the <impl> names referenced by a workflow definition to executable
/// step functions, mirroring how Oozie actions reference deployed
/// application code.
class StepRegistry {
 public:
  /// Registers a step implementation under a name. Throws on duplicates.
  void register_step(std::string name, StepFn fn);
  const StepFn& resolve(const std::string& name) const;
  bool contains(const std::string& name) const noexcept;
  std::size_t size() const noexcept { return fns_.size(); }

 private:
  std::map<std::string, StepFn> fns_;
};

/// Loads a WorkflowSpec from an XML workflow definition — the paper's
/// integration path (§4.2): QoD error bounds and data containers are
/// declared inside each action element of an (Oozie-style) workflow schema.
///
/// Schema:
///
///   <workflow-app name="aqhi">
///     <action name="2_concentration">
///       <impl>concentration</impl>            <!-- StepRegistry key -->
///       <predecessors>1_feed</predecessors>   <!-- comma separated -->
///       <qod>                                 <!-- the paper's XSD extension -->
///         <container role="input"  table="sensors"/>
///         <container role="output" table="concentration" column="conc"/>
///         <max-error>0.10</max-error>         <!-- omit: error-intolerant -->
///       </qod>
///     </action>
///     ...
///   </workflow-app>
///
/// Containers accept optional `column` and `row-prefix` attributes (the
/// paper's "table, column, row, or group of any of these"). Validation
/// errors (unknown impl, malformed bounds, duplicate actions, DAG cycles)
/// throw smartflux::InvalidArgument.
WorkflowSpec load_workflow_xml(std::string_view document, const StepRegistry& registry);

}  // namespace smartflux::wms
