#include "wms/watchdog.h"

#include <algorithm>

#include "common/error.h"
#include "common/logging.h"
#include "obs/metrics.h"

namespace smartflux::wms {

StallWatchdog::StallWatchdog(WatchdogOptions options) : options_(options) {
  SF_CHECK(options_.stall_multiplier >= 1.0, "stall multiplier must be >= 1");
  SF_CHECK(options_.poll_interval.count() > 0, "poll interval must be positive");
  if (options_.metrics != nullptr) {
    stalls_metric_ = &options_.metrics->counter(
        "sf_watchdog_stalls_total", {}, "Stalled step attempts cancelled by the watchdog");
    recoveries_metric_ = &options_.metrics->counter(
        "sf_watchdog_recoveries_total", {},
        "Stalled steps that later completed successfully");
    inflight_metric_ = &options_.metrics->gauge("sf_watchdog_inflight_attempts", {},
                                                "Step attempts currently watched");
  }
  monitor_ = std::thread([this] { monitor_loop(); });
}

StallWatchdog::~StallWatchdog() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  monitor_.join();
}

std::uint64_t StallWatchdog::begin_attempt(const std::string& step_key, ds::Timestamp wave,
                                           CancellationToken* token) {
  SF_CHECK(token != nullptr, "watchdog attempts need a cancellation token");
  std::lock_guard lock(mutex_);
  const std::uint64_t ticket = next_ticket_++;
  Inflight entry;
  entry.key = step_key;
  entry.wave = wave;
  entry.token = token;
  entry.deadline = Clock::time_point::max();
  if (const auto it = history_.find(step_key); it != history_.end() && it->second.samples > 0) {
    const auto scaled = std::chrono::nanoseconds(
        static_cast<std::chrono::nanoseconds::rep>(it->second.mean_ns *
                                                   options_.stall_multiplier));
    const auto threshold = std::max<std::chrono::nanoseconds>(scaled, options_.min_stall);
    entry.deadline = Clock::now() + threshold;
  }
  inflight_.emplace(ticket, std::move(entry));
  if (inflight_metric_ != nullptr) inflight_metric_->set(static_cast<double>(inflight_.size()));
  return ticket;
}

void StallWatchdog::end_attempt(std::uint64_t ticket, std::chrono::nanoseconds elapsed,
                                bool success) {
  std::lock_guard lock(mutex_);
  const auto it = inflight_.find(ticket);
  if (it == inflight_.end()) return;
  const std::string key = std::move(it->second.key);
  inflight_.erase(it);
  if (inflight_metric_ != nullptr) inflight_metric_->set(static_cast<double>(inflight_.size()));
  if (!success) return;
  // Only successful attempts feed the baseline: a cancelled hang's duration
  // is the threshold itself, and folding it in would ratchet the threshold
  // upward until real stalls pass undetected.
  History& h = history_[key];
  h.mean_ns += (static_cast<double>(elapsed.count()) - h.mean_ns) /
               static_cast<double>(++h.samples);
  if (awaiting_recovery_.erase(key) > 0) {
    ++recoveries_;
    if (recoveries_metric_ != nullptr) recoveries_metric_->inc();
    SF_LOG_INFO("watchdog") << "step '" << key << "' recovered after a stall cancellation";
  }
}

std::size_t StallWatchdog::stalls_fired() const noexcept {
  std::lock_guard lock(mutex_);
  return stalls_fired_;
}

std::size_t StallWatchdog::recoveries() const noexcept {
  std::lock_guard lock(mutex_);
  return recoveries_;
}

std::chrono::nanoseconds StallWatchdog::historical_mean(const std::string& step_key) const {
  std::lock_guard lock(mutex_);
  const auto it = history_.find(step_key);
  if (it == history_.end() || it->second.samples == 0) return std::chrono::nanoseconds{0};
  return std::chrono::nanoseconds(
      static_cast<std::chrono::nanoseconds::rep>(it->second.mean_ns));
}

void StallWatchdog::monitor_loop() {
  std::unique_lock lock(mutex_);
  while (!stop_) {
    const auto now = Clock::now();
    for (auto& [ticket, entry] : inflight_) {
      if (entry.fired || now < entry.deadline) continue;
      // Token dereference is safe: end_attempt() removes the entry under
      // this mutex before the engine's attempt frame (and its token) dies.
      entry.token->cancel();
      entry.fired = true;
      ++stalls_fired_;
      awaiting_recovery_.insert(entry.key);
      if (stalls_metric_ != nullptr) stalls_metric_->inc();
      SF_LOG_WARN("watchdog") << "step '" << entry.key << "' stalled at wave " << entry.wave
                              << " — cooperative cancellation fired";
    }
    cv_.wait_for(lock, options_.poll_interval, [this] { return stop_; });
  }
}

}  // namespace smartflux::wms
