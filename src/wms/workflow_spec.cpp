#include "wms/workflow_spec.h"

#include <algorithm>
#include <deque>

#include "common/error.h"

namespace smartflux::wms {

WorkflowSpec::WorkflowSpec(std::string name, std::vector<StepSpec> steps)
    : name_(std::move(name)), steps_(std::move(steps)) {
  SF_CHECK(!name_.empty(), "workflow name must not be empty");
  SF_CHECK(!steps_.empty(), "a workflow needs at least one step");
  validate_and_index();
}

void WorkflowSpec::validate_and_index() {
  for (std::size_t i = 0; i < steps_.size(); ++i) {
    const StepSpec& s = steps_[i];
    SF_CHECK(!s.id.empty(), "step id must not be empty");
    SF_CHECK(static_cast<bool>(s.fn), "step '" + s.id + "' has no computation");
    if (s.max_error) {
      // Relative error metrics (Eq. 3) live in [0,1], but RMSE-based bounds
      // (Eq. 4) are only bounded below — accept any non-negative bound.
      SF_CHECK(*s.max_error >= 0.0, "step '" + s.id + "': max_error must be non-negative");
    }
    const auto [_, inserted] = index_.emplace(s.id, i);
    if (!inserted) throw InvalidArgument("duplicate step id '" + s.id + "'");
  }

  successors_.assign(steps_.size(), {});
  predecessors_.assign(steps_.size(), {});
  for (std::size_t i = 0; i < steps_.size(); ++i) {
    for (const StepId& pred : steps_[i].predecessors) {
      auto it = index_.find(pred);
      if (it == index_.end()) {
        throw InvalidArgument("step '" + steps_[i].id + "' references unknown predecessor '" +
                              pred + "'");
      }
      SF_CHECK(it->second != i, "step '" + steps_[i].id + "' cannot depend on itself");
      predecessors_[i].push_back(it->second);
      successors_[it->second].push_back(i);
    }
  }

  // Kahn's algorithm: topological sort + cycle detection.
  std::vector<std::size_t> in_degree(steps_.size());
  for (std::size_t i = 0; i < steps_.size(); ++i) in_degree[i] = predecessors_[i].size();
  std::deque<std::size_t> ready;
  for (std::size_t i = 0; i < steps_.size(); ++i) {
    if (in_degree[i] == 0) ready.push_back(i);
  }
  topo_order_.clear();
  topo_order_.reserve(steps_.size());
  while (!ready.empty()) {
    const std::size_t i = ready.front();
    ready.pop_front();
    topo_order_.push_back(i);
    for (std::size_t succ : successors_[i]) {
      if (--in_degree[succ] == 0) ready.push_back(succ);
    }
  }
  if (topo_order_.size() != steps_.size()) {
    throw InvalidArgument("workflow '" + name_ + "' contains a dependency cycle");
  }

  // Dependency-depth levels: level(i) = 1 + max(level(pred)).
  std::vector<std::size_t> level_of(steps_.size(), 0);
  std::size_t max_level = 0;
  for (std::size_t i : topo_order_) {
    for (std::size_t pred : predecessors_[i]) {
      level_of[i] = std::max(level_of[i], level_of[pred] + 1);
    }
    max_level = std::max(max_level, level_of[i]);
  }
  levels_.assign(max_level + 1, {});
  for (std::size_t i = 0; i < steps_.size(); ++i) levels_[level_of[i]].push_back(i);
}

const StepSpec& WorkflowSpec::step(const StepId& id) const { return steps_[index_of(id)]; }

std::size_t WorkflowSpec::index_of(const StepId& id) const {
  auto it = index_.find(id);
  if (it == index_.end()) throw NotFound("no step named '" + id + "'");
  return it->second;
}

bool WorkflowSpec::contains(const StepId& id) const noexcept { return index_.contains(id); }

std::vector<std::size_t> WorkflowSpec::sinks() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < steps_.size(); ++i) {
    if (successors_[i].empty()) out.push_back(i);
  }
  return out;
}

std::vector<std::size_t> WorkflowSpec::sources() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < steps_.size(); ++i) {
    if (predecessors_[i].empty()) out.push_back(i);
  }
  return out;
}

std::vector<std::size_t> WorkflowSpec::error_tolerant_steps() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < steps_.size(); ++i) {
    if (steps_[i].tolerates_error()) out.push_back(i);
  }
  return out;
}

}  // namespace smartflux::wms
