#include "wms/engine.h"

#include "common/error.h"
#include "common/logging.h"
#include "datastore/client.h"

namespace smartflux::wms {

std::size_t WaveResult::executed_count() const noexcept {
  std::size_t n = 0;
  for (bool e : executed) n += e ? 1 : 0;
  return n;
}

WorkflowEngine::WorkflowEngine(WorkflowSpec spec, ds::DataStore& store)
    : WorkflowEngine(std::move(spec), store, Options{}) {}

WorkflowEngine::WorkflowEngine(WorkflowSpec spec, ds::DataStore& store, Options options)
    : spec_(std::move(spec)),
      store_(&store),
      options_(options),
      exec_counts_(spec_.size(), 0),
      failure_counts_(spec_.size(), 0),
      last_exec_wave_(spec_.size()) {
  if (options_.worker_threads > 0) {
    pool_ = std::make_unique<ThreadPool>(options_.worker_threads);
  }
}

bool WorkflowEngine::eligible(std::size_t index) const {
  // Eligibility: all predecessors must have completed at least one execution
  // ever (paper §2 triggering semantics).
  for (std::size_t pred : spec_.predecessors(index)) {
    if (exec_counts_[pred] == 0) return false;
  }
  return true;
}

WaveResult WorkflowEngine::run_wave(ds::Timestamp wave, TriggerController& controller) {
  if (last_wave_ && wave <= *last_wave_) {
    throw InvalidArgument("waves must be strictly increasing (got " + std::to_string(wave) +
                          " after " + std::to_string(*last_wave_) + ")");
  }
  last_wave_ = wave;
  ++waves_run_;
  return pool_ ? run_wave_parallel(wave, controller) : run_wave_serial(wave, controller);
}

WaveResult WorkflowEngine::run_wave_serial(ds::Timestamp wave, TriggerController& controller) {
  WaveResult result;
  result.wave = wave;
  result.executed.assign(spec_.size(), false);
  result.durations.assign(spec_.size(), std::chrono::nanoseconds{0});

  controller.begin_wave(wave);
  for (std::size_t index : spec_.topological_order()) {
    if (!eligible(index)) continue;
    const StepSpec& step = spec_.step_at(index);
    const bool run = !step.tolerates_error() || controller.should_execute(spec_, index, wave);
    if (run) execute_step(index, wave, result, controller);
  }
  controller.end_wave(wave);
  return result;
}

WaveResult WorkflowEngine::run_wave_parallel(ds::Timestamp wave, TriggerController& controller) {
  WaveResult result;
  result.wave = wave;
  result.executed.assign(spec_.size(), false);
  result.durations.assign(spec_.size(), std::chrono::nanoseconds{0});

  controller.begin_wave(wave);
  for (const auto& level : spec_.levels()) {
    // Phase 1 (serial, spec order): triggering decisions. Same-level steps
    // cannot depend on one another, so their inputs are already final.
    std::vector<std::size_t> to_run;
    for (std::size_t index : level) {
      if (!eligible(index)) continue;
      const StepSpec& step = spec_.step_at(index);
      if (!step.tolerates_error() || controller.should_execute(spec_, index, wave)) {
        to_run.push_back(index);
      }
    }

    // Phase 2 (parallel): execute the approved steps of this level. The
    // failure policy runs inside each task; under kPropagate the first
    // exception surfaces from run_all after the level completes.
    std::vector<std::optional<std::chrono::nanoseconds>> durations(to_run.size());
    std::vector<std::function<void()>> tasks;
    tasks.reserve(to_run.size());
    for (std::size_t k = 0; k < to_run.size(); ++k) {
      tasks.push_back([this, wave, index = to_run[k], &durations, k] {
        durations[k] = run_step_fn(index, wave);
      });
    }
    pool_->run_all(std::move(tasks));

    // Phase 3 (serial, spec order): bookkeeping and notifications.
    for (std::size_t k = 0; k < to_run.size(); ++k) {
      if (durations[k]) {
        record_execution(to_run[k], wave, result, *durations[k], controller);
      }
    }
  }
  controller.end_wave(wave);
  return result;
}

std::optional<std::chrono::nanoseconds> WorkflowEngine::run_step_fn(std::size_t index,
                                                                    ds::Timestamp wave) {
  const StepSpec& step = spec_.step_at(index);
  const std::size_t attempts =
      options_.failure_policy == FailurePolicy::kRetryOnce ? 2 : 1;
  for (std::size_t attempt = 1; attempt <= attempts; ++attempt) {
    ds::Client client(*store_, wave);
    StepContext ctx{client, wave, step.id};
    const auto start = std::chrono::steady_clock::now();
    try {
      step.fn(ctx);
      return std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start);
    } catch (const std::exception& e) {
      if (options_.failure_policy == FailurePolicy::kPropagate) throw;
      {
        std::lock_guard lock(failure_mutex_);
        last_failure_ = e.what();
      }
      SF_LOG_WARN("wms") << "step '" << step.id << "' failed at wave " << wave << " (attempt "
                         << attempt << "/" << attempts << "): " << e.what();
    } catch (...) {
      if (options_.failure_policy == FailurePolicy::kPropagate) throw;
      {
        std::lock_guard lock(failure_mutex_);
        last_failure_ = "unknown exception";
      }
      SF_LOG_WARN("wms") << "step '" << step.id << "' failed at wave " << wave
                         << " with a non-std exception";
    }
  }
  std::lock_guard lock(failure_mutex_);
  ++failure_counts_[index];
  return std::nullopt;
}

void WorkflowEngine::execute_step(std::size_t index, ds::Timestamp wave, WaveResult& result,
                                  TriggerController& controller) {
  if (const auto elapsed = run_step_fn(index, wave)) {
    record_execution(index, wave, result, *elapsed, controller);
  }
}

void WorkflowEngine::record_execution(std::size_t index, ds::Timestamp wave, WaveResult& result,
                                      std::chrono::nanoseconds duration,
                                      TriggerController& controller) {
  const StepSpec& step = spec_.step_at(index);
  result.executed[index] = true;
  result.durations[index] = duration;
  ++exec_counts_[index];
  ++total_executions_;
  last_exec_wave_[index] = wave;

  controller.on_step_executed(spec_, index, wave);
  for (const auto& listener : listeners_) listener(step.id, wave);
  SF_LOG_DEBUG("wms") << "wave " << wave << ": executed step '" << step.id << "'";
}

std::vector<WaveResult> WorkflowEngine::run_waves(ds::Timestamp first, std::size_t count,
                                                  TriggerController& controller) {
  std::vector<WaveResult> out;
  out.reserve(count);
  for (std::size_t k = 0; k < count; ++k) out.push_back(run_wave(first + k, controller));
  return out;
}

std::size_t WorkflowEngine::execution_count(std::size_t step_index) const {
  SF_CHECK(step_index < spec_.size(), "step index out of range");
  return exec_counts_[step_index];
}

std::optional<ds::Timestamp> WorkflowEngine::last_executed_wave(std::size_t step_index) const {
  SF_CHECK(step_index < spec_.size(), "step index out of range");
  return last_exec_wave_[step_index];
}

std::size_t WorkflowEngine::failure_count(std::size_t step_index) const {
  SF_CHECK(step_index < spec_.size(), "step index out of range");
  return failure_counts_[step_index];
}

void WorkflowEngine::add_completion_listener(StepCompletionListener listener) {
  SF_CHECK(static_cast<bool>(listener), "listener must be callable");
  listeners_.push_back(std::move(listener));
}

void WorkflowEngine::reset_history() {
  std::fill(exec_counts_.begin(), exec_counts_.end(), std::size_t{0});
  std::fill(failure_counts_.begin(), failure_counts_.end(), std::size_t{0});
  last_failure_.clear();
  std::fill(last_exec_wave_.begin(), last_exec_wave_.end(), std::optional<ds::Timestamp>{});
  total_executions_ = 0;
  waves_run_ = 0;
  last_wave_.reset();
}

}  // namespace smartflux::wms
