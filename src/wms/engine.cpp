#include "wms/engine.h"

#include <condition_variable>
#include <deque>
#include <map>
#include <thread>

#include "common/error.h"
#include "common/fault_injection.h"
#include "common/hashing.h"
#include "common/logging.h"
#include "datastore/client.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "wms/journal.h"
#include "wms/watchdog.h"

namespace smartflux::wms {

namespace {

const char* status_label(StepStatus status) noexcept {
  switch (status) {
    case StepStatus::kNotEligible: return "not_eligible";
    case StepStatus::kSkipped: return "skipped";
    case StepStatus::kExecuted: return "executed";
    case StepStatus::kFailed: return "failed";
    case StepStatus::kQuarantined: return "quarantined";
  }
  return "?";
}

constexpr std::size_t kStatusCount = 5;

double to_seconds(std::chrono::nanoseconds ns) noexcept {
  return static_cast<double>(ns.count()) * 1e-9;
}

}  // namespace

/// Handles resolved once at construction; the per-wave path only touches
/// lock-free instruments. Step series carry {workflow, step} labels, status
/// counters additionally {status}.
struct WorkflowEngine::EngineObs {
  obs::Counter* waves = nullptr;
  obs::Counter* waves_shed = nullptr;
  obs::Gauge* ingest_queue_depth = nullptr;
  obs::Histogram* wave_duration = nullptr;
  std::vector<std::array<obs::Counter*, kStatusCount>> status;  // [step][StepStatus]
  std::vector<obs::Counter*> retry_attempts;                    // attempts beyond the first
  std::vector<obs::Counter*> quarantine_opens;
  std::vector<obs::Histogram*> step_duration;

  EngineObs(obs::MetricsRegistry& registry, const WorkflowSpec& spec) {
    const obs::Labels wf{{"workflow", spec.name()}};
    waves = &registry.counter("sf_wms_waves_total", wf, "Waves run by the workflow engine");
    waves_shed = &registry.counter("sf_wms_waves_shed_total", wf,
                                   "Waves dropped accountably under overload");
    ingest_queue_depth = &registry.gauge("sf_wms_ingest_queue_depth", wf,
                                         "Ingested-not-yet-computed waves (pressured pipeline)");
    wave_duration = &registry.histogram("sf_wms_wave_duration_seconds", obs::duration_buckets(),
                                        wf, "Wall-clock duration of one wave");
    status.resize(spec.size());
    retry_attempts.resize(spec.size());
    quarantine_opens.resize(spec.size());
    step_duration.resize(spec.size());
    for (std::size_t i = 0; i < spec.size(); ++i) {
      const std::string& id = spec.step_at(i).id;
      for (std::size_t s = 0; s < kStatusCount; ++s) {
        status[i][s] = &registry.counter(
            "sf_wms_step_status_total",
            {{"workflow", spec.name()},
             {"step", id},
             {"status", status_label(static_cast<StepStatus>(s))}},
            "Per-step terminal status counts per wave");
      }
      retry_attempts[i] = &registry.counter(
          "sf_wms_step_retry_attempts_total", {{"workflow", spec.name()}, {"step", id}},
          "Step attempts beyond the first of each wave (retries)");
      quarantine_opens[i] = &registry.counter(
          "sf_wms_quarantine_opens_total", {{"workflow", spec.name()}, {"step", id}},
          "Times the step's circuit breaker opened");
      step_duration[i] = &registry.histogram(
          "sf_wms_step_duration_seconds", obs::duration_buckets(),
          {{"workflow", spec.name()}, {"step", id}},
          "Wall-clock step time per wave incl. failed attempts and backoff");
    }
  }
};

char step_status_char(StepStatus status) noexcept {
  switch (status) {
    case StepStatus::kNotEligible: return '-';
    case StepStatus::kSkipped: return 's';
    case StepStatus::kExecuted: return 'X';
    case StepStatus::kFailed: return 'F';
    case StepStatus::kQuarantined: return 'Q';
  }
  return '?';
}

std::optional<StepStatus> step_status_from_char(char c) noexcept {
  switch (c) {
    case '-': return StepStatus::kNotEligible;
    case 's': return StepStatus::kSkipped;
    case 'X': return StepStatus::kExecuted;
    case 'F': return StepStatus::kFailed;
    case 'Q': return StepStatus::kQuarantined;
    default: return std::nullopt;
  }
}

std::size_t WaveResult::executed_count() const noexcept {
  std::size_t n = 0;
  for (bool e : executed) n += e ? 1 : 0;
  return n;
}

std::size_t WaveResult::failed_count() const noexcept {
  std::size_t n = 0;
  for (bool f : failed) n += f ? 1 : 0;
  return n;
}

std::size_t WaveResult::quarantined_count() const noexcept {
  std::size_t n = 0;
  for (StepStatus s : status) n += s == StepStatus::kQuarantined ? 1 : 0;
  return n;
}

WorkflowEngine::WorkflowEngine(WorkflowSpec spec, ds::DataStore& store)
    : WorkflowEngine(std::move(spec), store, Options{}) {}

WorkflowEngine::WorkflowEngine(WorkflowSpec spec, ds::DataStore& store, Options options)
    : spec_(std::move(spec)),
      store_(&store),
      options_(std::move(options)),
      exec_counts_(spec_.size(), 0),
      failure_counts_(spec_.size(), 0),
      fault_states_(spec_.size()),
      step_hashes_(spec_.size(), 0),
      last_exec_wave_(spec_.size()),
      step_starts_(spec_.size()) {
  if (options_.worker_threads > 0) {
    pool_ = std::make_unique<ThreadPool>(options_.worker_threads);
  }
  probe_gate_.reset(spec_.size());
  for (std::size_t i = 0; i < spec_.size(); ++i) {
    step_hashes_[i] = std::hash<std::string>{}(spec_.step_at(i).id);
  }
  if (options_.watchdog != nullptr) {
    watchdog_keys_.reserve(spec_.size());
    for (std::size_t i = 0; i < spec_.size(); ++i) {
      watchdog_keys_.push_back(spec_.name() + "/" + spec_.step_at(i).id);
    }
  }
  if (options_.tracer != nullptr) {
    step_span_names_.reserve(spec_.size());
    for (std::size_t i = 0; i < spec_.size(); ++i) {
      step_span_names_.push_back("step:" + spec_.step_at(i).id);
    }
  }
  if (options_.metrics != nullptr) {
    obs_ = std::make_unique<EngineObs>(*options_.metrics, spec_);
  }
}

WorkflowEngine::~WorkflowEngine() = default;

bool WorkflowEngine::eligible(std::size_t index) const {
  // Eligibility: all predecessors must have completed at least one execution
  // ever (paper §2 triggering semantics).
  for (std::size_t pred : spec_.predecessors(index)) {
    if (exec_counts_[pred] == 0) return false;
  }
  return true;
}

const RetryPolicy& WorkflowEngine::policy_for(std::size_t index) const {
  const StepSpec& step = spec_.step_at(index);
  return step.retry ? *step.retry : options_.retry;
}

WaveResult WorkflowEngine::make_result(ds::Timestamp wave, std::size_t steps) {
  WaveResult result;
  result.wave = wave;
  result.executed.assign(steps, false);
  result.durations.assign(steps, std::chrono::nanoseconds{0});
  result.status.assign(steps, StepStatus::kNotEligible);
  result.failed.assign(steps, false);
  result.stale.assign(steps, false);
  result.errors.assign(steps, std::string{});
  result.attempts.assign(steps, 0);
  return result;
}

WaveResult WorkflowEngine::run_wave(ds::Timestamp wave, TriggerController& controller) {
  if (last_wave_ && wave <= *last_wave_) {
    throw InvalidArgument("waves must be strictly increasing (got " + std::to_string(wave) +
                          " after " + std::to_string(*last_wave_) + ")");
  }
  last_wave_ = wave;
  ++waves_run_;
  const bool observed = obs_ != nullptr || options_.tracer != nullptr;
  std::chrono::steady_clock::time_point wave_start{};
  if (observed) wave_start = std::chrono::steady_clock::now();
  WaveResult result =
      pool_ ? run_wave_parallel(wave, controller) : run_wave_serial(wave, controller);
  mark_stale(result);
  // Wave-boundary consistency: stamp the datastore's wave commit (fsyncing
  // the WAL) *before* the journal record, so every journaled wave also has
  // durable data. Resume takes min(journal wave, WAL durable wave); a crash
  // between the two stamps just re-runs one wave.
  store_->commit_wave(result.wave);
  if (journal_ != nullptr) journal_->append(WaveRecord{result.wave, result.status});
  if (observed) record_wave_observability(result, wave_start);
  return result;
}

void WorkflowEngine::record_wave_observability(
    const WaveResult& result, std::chrono::steady_clock::time_point wave_start) {
  const auto wave_end = std::chrono::steady_clock::now();
  if (options_.tracer != nullptr) {
    // One batch per wave: ids are drawn in a block and all spans land under
    // a single tracer lock instead of one lock + ordinal lookup per span.
    obs::Tracer& tracer = *options_.tracer;
    const auto since_epoch = [&tracer](std::chrono::steady_clock::time_point t) {
      return std::chrono::duration_cast<std::chrono::nanoseconds>(t - tracer.epoch());
    };
    trace_batch_.reserve(spec_.size() + 1);
    const std::uint64_t wave_span = tracer.allocate_ids(spec_.size() + 1);
    obs::SpanRecord wave_record;
    wave_record.id = wave_span;
    wave_record.name = "wave:" + std::to_string(result.wave);
    wave_record.category = "wms";
    wave_record.start = since_epoch(wave_start);
    wave_record.duration = wave_end - wave_start;
    trace_batch_.push_back(std::move(wave_record));
    for (std::size_t i = 0; i < spec_.size(); ++i) {
      if (result.attempts[i] == 0) continue;
      obs::SpanRecord step_record;
      step_record.id = wave_span + 1 + i;
      step_record.parent = wave_span;
      step_record.name = step_span_names_[i];
      step_record.category = "wms";
      step_record.start = since_epoch(step_starts_[i]);
      step_record.duration = result.durations[i];
      trace_batch_.push_back(std::move(step_record));
    }
    tracer.record_all(trace_batch_);
  }
  if (obs_ == nullptr) return;
  // The rollup runs serially after each wave and the engine's {workflow,
  // step} series have no other writers, so the single-writer (plain
  // load+store) instrument path is safe and skips ~3 locked RMWs per step.
  obs_->waves->inc_single_writer();
  obs_->wave_duration->observe_single_writer(to_seconds(wave_end - wave_start));
  for (std::size_t i = 0; i < spec_.size(); ++i) {
    obs_->status[i][static_cast<std::size_t>(result.status[i])]->inc_single_writer();
    if (result.attempts[i] > 1) {
      obs_->retry_attempts[i]->inc_single_writer(result.attempts[i] - 1);
    }
    if (result.attempts[i] > 0) {
      obs_->step_duration[i]->observe_single_writer(to_seconds(result.durations[i]));
    }
  }
}

WaveResult WorkflowEngine::run_wave_serial(ds::Timestamp wave, TriggerController& controller) {
  WaveResult result = make_result(wave, spec_.size());
  controller.begin_wave(wave);
  for (std::size_t index : spec_.topological_order()) {
    process_step(index, wave, result, controller);
  }
  controller.end_wave(wave);
  return result;
}

void WorkflowEngine::process_step(std::size_t index, ds::Timestamp wave, WaveResult& result,
                                  TriggerController& controller) {
  bool probe = false;
  if (quarantine_gate(index, &probe)) {
    result.status[index] = StepStatus::kQuarantined;
    apply_status(index, StepStatus::kQuarantined, wave, false);
    return;
  }
  if (!eligible(index)) {  // status stays kNotEligible
    if (probe) probe_gate_.release(index);
    return;
  }
  const StepSpec& step = spec_.step_at(index);
  const bool run = !step.tolerates_error() || controller.should_execute(spec_, index, wave);
  if (!run) {
    result.status[index] = StepStatus::kSkipped;
    if (probe) probe_gate_.release(index);
    return;
  }
  AttemptOutcome outcome;
  try {
    outcome = run_step_attempts(index, wave, probe ? 1 : 0);
  } catch (...) {
    if (probe) probe_gate_.release(index);
    throw;  // propagating policy: the claim must not outlive the wave
  }
  if (outcome.success) {
    record_execution(index, wave, result, outcome, controller);
  } else {
    record_outcome(index, result, StepStatus::kFailed, outcome);
    apply_status(index, StepStatus::kFailed, wave, false);
  }
  // The probe's outcome is folded into the breaker state above; only now may
  // the next wave claim a fresh probe.
  if (probe) probe_gate_.release(index);
}

WaveResult WorkflowEngine::run_wave_parallel(ds::Timestamp wave, TriggerController& controller) {
  WaveResult result = make_result(wave, spec_.size());

  controller.begin_wave(wave);
  for (const auto& level : spec_.levels()) {
    // Phase 1 (serial, spec order): quarantine gates and triggering
    // decisions. Same-level steps cannot depend on one another, so their
    // inputs are already final.
    std::vector<std::size_t> to_run;
    std::vector<bool> probes;
    for (std::size_t index : level) {
      bool probe = false;
      if (quarantine_gate(index, &probe)) {
        result.status[index] = StepStatus::kQuarantined;
        apply_status(index, StepStatus::kQuarantined, wave, false);
        continue;
      }
      if (!eligible(index)) {
        if (probe) probe_gate_.release(index);
        continue;
      }
      const StepSpec& step = spec_.step_at(index);
      if (!step.tolerates_error() || controller.should_execute(spec_, index, wave)) {
        to_run.push_back(index);
        probes.push_back(probe);
      } else {
        result.status[index] = StepStatus::kSkipped;
        if (probe) probe_gate_.release(index);
      }
    }

    // Phase 2 (parallel): execute the approved steps of this level. The
    // retry loop runs inside each task; under a propagating policy the first
    // exhausted step's exception surfaces from run_all after the level
    // completes (failure counters are already recorded by then).
    std::vector<AttemptOutcome> outcomes(to_run.size());
    std::vector<std::function<void()>> tasks;
    tasks.reserve(to_run.size());
    for (std::size_t k = 0; k < to_run.size(); ++k) {
      tasks.push_back([this, wave, index = to_run[k], cap = probes[k] ? std::size_t{1} : 0,
                       &outcomes, k] { outcomes[k] = run_step_attempts(index, wave, cap); });
    }
    try {
      pool_->run_all(std::move(tasks));
    } catch (...) {
      // Propagating failure aborts the wave: don't leave probe claims behind.
      for (std::size_t k = 0; k < to_run.size(); ++k) {
        if (probes[k]) probe_gate_.release(to_run[k]);
      }
      throw;
    }

    // Phase 3 (serial, spec order): bookkeeping and notifications.
    for (std::size_t k = 0; k < to_run.size(); ++k) {
      const std::size_t index = to_run[k];
      if (outcomes[k].success) {
        record_execution(index, wave, result, outcomes[k], controller);
      } else {
        record_outcome(index, result, StepStatus::kFailed, outcomes[k]);
        apply_status(index, StepStatus::kFailed, wave, false);
      }
      if (probes[k]) probe_gate_.release(index);
    }
  }
  controller.end_wave(wave);
  return result;
}

bool WorkflowEngine::quarantine_gate(std::size_t index, bool* probe) {
  const StepFaultState& fs = fault_states_[index];
  if (!fs.quarantined) return false;
  // Half-open admission is a CAS, not a cooldown comparison alone: with
  // pipelined or overlapping waves two gate evaluations can both see the
  // cooldown elapsed, and only the CAS winner may probe — the loser sits
  // the wave out as still-quarantined.
  if (fs.waves_in_quarantine >= options_.quarantine.cooldown_waves &&
      probe_gate_.try_claim(index)) {
    *probe = true;  // half-open: one in-flight attempt, released by the caller
    return false;
  }
  return true;
}

WorkflowEngine::AttemptOutcome WorkflowEngine::run_step_attempts(std::size_t index,
                                                                 ds::Timestamp wave,
                                                                 std::size_t attempts_cap) {
  const StepSpec& step = spec_.step_at(index);
  const RetryPolicy& policy = policy_for(index);
  std::size_t max_attempts = std::max<std::size_t>(1, policy.max_attempts);
  if (attempts_cap > 0) max_attempts = std::min(max_attempts, attempts_cap);

  AttemptOutcome out;
  const auto start = std::chrono::steady_clock::now();
  out.start = start;
  // Closes the watchdog bracket on every exit path (success return, retry,
  // propagating throw) *before* the attempt's stack token dies — the
  // watchdog only dereferences the token while the bracket is open.
  struct WatchdogBracket {
    StallWatchdog* watchdog = nullptr;
    std::uint64_t ticket = 0;
    std::chrono::steady_clock::time_point attempt_start{};
    bool success = false;
    ~WatchdogBracket() {
      if (watchdog == nullptr) return;
      watchdog->end_attempt(ticket,
                            std::chrono::duration_cast<std::chrono::nanoseconds>(
                                std::chrono::steady_clock::now() - attempt_start),
                            success);
    }
  };
  for (std::size_t attempt = 1; attempt <= max_attempts; ++attempt) {
    if (attempt > 1) {
      const auto pause =
          policy.backoff_before(attempt, options_.retry_seed, step_hashes_[index], wave);
      if (pause.count() > 0) std::this_thread::sleep_for(pause);
    }
    ++out.attempts;

    CancellationToken token;
    if (policy.timeout.count() > 0) {
      token.set_deadline(CancellationToken::Clock::now() + policy.timeout);
    }
    WatchdogBracket bracket;  // declared after token: unregisters first
    if (options_.watchdog != nullptr) {
      bracket.watchdog = options_.watchdog;
      bracket.attempt_start = std::chrono::steady_clock::now();
      bracket.ticket = options_.watchdog->begin_attempt(watchdog_keys_[index], wave, &token);
    }
    FaultInjector* injector = options_.fault_injector;
    ds::Client client =
        injector != nullptr && injector->should_fail_put(step.id, wave, attempt)
            ? ds::Client(*store_, wave,
                         [id = step.id, wave, attempt](const ds::TableName& table,
                                                       const ds::RowKey& row,
                                                       const ds::ColumnKey& column) {
                           throw InjectedFault("injected datastore failure: put " + table + "/" +
                                               row + "/" + column + " (step '" + id + "', wave " +
                                               std::to_string(wave) + ", attempt " +
                                               std::to_string(attempt) + ")");
                         })
            : ds::Client(*store_, wave);
    StepContext ctx{client, wave, step.id, &token};
    try {
      if (injector != nullptr) injector->on_attempt(step.id, wave, attempt, &token);
      step.fn(ctx);
      if (token.expired()) {
        throw Timeout("step '" + step.id + "' exceeded its " +
                      std::to_string(policy.timeout.count()) + "ms deadline at wave " +
                      std::to_string(wave));
      }
      out.success = true;
      bracket.success = true;
      out.elapsed = std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start);
      return out;
    } catch (const std::exception& e) {
      out.error = e.what();
      SF_LOG_WARN("wms") << "step '" << step.id << "' failed at wave " << wave << " (attempt "
                         << attempt << "/" << max_attempts << "): " << e.what();
      if (attempt == max_attempts) {
        out.elapsed = std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start);
        {
          std::lock_guard lock(failure_mutex_);
          ++failure_counts_[index];
          last_failure_ = out.error;
        }
        if (policy.propagate) throw;
        return out;
      }
    } catch (...) {
      out.error = "unknown exception";
      SF_LOG_WARN("wms") << "step '" << step.id << "' failed at wave " << wave
                         << " with a non-std exception (attempt " << attempt << "/"
                         << max_attempts << ")";
      if (attempt == max_attempts) {
        out.elapsed = std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start);
        {
          std::lock_guard lock(failure_mutex_);
          ++failure_counts_[index];
          last_failure_ = out.error;
        }
        if (policy.propagate) throw;
        return out;
      }
    }
  }
  return out;  // unreachable; the loop always returns or throws
}

void WorkflowEngine::record_outcome(std::size_t index, WaveResult& result, StepStatus status,
                                    const AttemptOutcome& outcome) {
  result.status[index] = status;
  result.failed[index] = status == StepStatus::kFailed;
  result.durations[index] = outcome.elapsed;
  result.attempts[index] = outcome.attempts;
  result.errors[index] = outcome.error;
  if (options_.tracer != nullptr) step_starts_[index] = outcome.start;
}

void WorkflowEngine::record_execution(std::size_t index, ds::Timestamp wave, WaveResult& result,
                                      const AttemptOutcome& outcome,
                                      TriggerController& controller) {
  const StepSpec& step = spec_.step_at(index);
  result.executed[index] = true;
  result.status[index] = StepStatus::kExecuted;
  result.durations[index] = outcome.elapsed;
  result.attempts[index] = outcome.attempts;
  if (options_.tracer != nullptr) step_starts_[index] = outcome.start;
  apply_status(index, StepStatus::kExecuted, wave, false);

  controller.on_step_executed(spec_, index, wave);
  for (const auto& listener : listeners_) listener(step.id, wave);
  SF_LOG_DEBUG("wms") << "wave " << wave << ": executed step '" << step.id << "'";
}

void WorkflowEngine::apply_status(std::size_t index, StepStatus status, ds::Timestamp wave,
                                  bool count_failure) {
  StepFaultState& fs = fault_states_[index];
  switch (status) {
    case StepStatus::kExecuted:
      ++exec_counts_[index];
      ++total_executions_;
      last_exec_wave_[index] = wave;
      fs.consecutive_failures = 0;
      if (fs.quarantined) {
        SF_LOG_INFO("wms") << "step '" << spec_.step_at(index).id
                           << "' probe succeeded at wave " << wave << " — circuit closed";
      }
      fs.quarantined = false;
      fs.waves_in_quarantine = 0;
      break;
    case StepStatus::kFailed:
      if (count_failure) ++failure_counts_[index];  // live path counts in run_step_attempts
      ++fs.consecutive_failures;
      if (fs.quarantined) {
        // Half-open probe failed: the circuit stays open, cool-down restarts.
        fs.waves_in_quarantine = 0;
      } else if (options_.quarantine.enabled() &&
                 fs.consecutive_failures >= options_.quarantine.failure_threshold) {
        fs.quarantined = true;
        fs.waves_in_quarantine = 0;
        ++fs.times_quarantined;
        // Counted here (not in the wave rollup) so journal replay restores
        // the open count alongside the rest of the breaker state.
        if (obs_ != nullptr) obs_->quarantine_opens[index]->inc();
        SF_LOG_WARN("wms") << "step '" << spec_.step_at(index).id << "' quarantined at wave "
                           << wave << " after " << fs.consecutive_failures
                           << " consecutive failed waves";
      }
      break;
    case StepStatus::kQuarantined:
      ++fs.waves_in_quarantine;
      break;
    case StepStatus::kNotEligible:
    case StepStatus::kSkipped:
      break;
  }
}

void WorkflowEngine::mark_stale(WaveResult& result) const {
  for (std::size_t index : spec_.topological_order()) {
    for (std::size_t pred : spec_.predecessors(index)) {
      const StepStatus ps = result.status[pred];
      if (ps == StepStatus::kQuarantined || ps == StepStatus::kFailed || result.stale[pred]) {
        result.stale[index] = true;
        break;
      }
    }
  }
}

std::vector<WaveResult> WorkflowEngine::run_waves(ds::Timestamp first, std::size_t count,
                                                  TriggerController& controller) {
  std::vector<WaveResult> out;
  out.reserve(count);
  for (std::size_t k = 0; k < count; ++k) out.push_back(run_wave(first + k, controller));
  return out;
}

std::vector<WaveResult> WorkflowEngine::run_waves_pipelined(ds::Timestamp first,
                                                            std::size_t count,
                                                            TriggerController& controller,
                                                            const WaveIngest& ingest,
                                                            std::size_t depth) {
  SF_CHECK(static_cast<bool>(ingest), "ingest must be callable");
  if (depth == 0) throw InvalidArgument("pipeline depth must be >= 1");
  if (depth + 1 > store_->max_versions()) {
    throw InvalidArgument("pipeline depth " + std::to_string(depth) +
                          " needs a store with max_versions >= " + std::to_string(depth + 1) +
                          " (got " + std::to_string(store_->max_versions()) +
                          "): a step at wave w must still see its own wave past " +
                          std::to_string(depth) + " newer ingested versions");
  }
  std::vector<WaveResult> out;
  out.reserve(count);
  if (count == 0) return out;

  // One ingest worker: ingests stay serialized in wave order (two concurrent
  // ingests of the same cell would race on per-cell timestamp monotonicity),
  // while the main thread computes earlier waves.
  std::mutex mutex;
  std::condition_variable cv;
  std::deque<ds::Timestamp> todo;                    // waves awaiting ingest, in order
  std::map<ds::Timestamp, std::exception_ptr> done;  // wave -> ingest error (null = ok)
  bool stop = false;

  std::thread worker([&] {
    for (;;) {
      ds::Timestamp wave;
      {
        std::unique_lock lock(mutex);
        cv.wait(lock, [&] { return stop || !todo.empty(); });
        if (stop) return;
        wave = todo.front();
        todo.pop_front();
      }
      std::exception_ptr error;
      try {
        ds::Client client(*store_, wave);
        ingest(client, wave);
      } catch (...) {
        error = std::current_exception();
      }
      {
        std::lock_guard lock(mutex);
        done.emplace(wave, error);
      }
      cv.notify_all();
    }
  });
  // Joins on every exit path (including a propagating step failure thrown
  // from run_wave below); queued-but-unstarted ingests are abandoned.
  struct StopAndJoin {
    std::thread& worker;
    std::mutex& mutex;
    std::condition_variable& cv;
    bool& stop;
    ~StopAndJoin() {
      {
        std::lock_guard lock(mutex);
        stop = true;
      }
      cv.notify_all();
      worker.join();
    }
  } join_guard{worker, mutex, cv, stop};

  std::size_t enqueued = 0;
  const auto enqueue_through = [&](std::size_t waves) {
    const std::size_t limit = std::min(waves, count);
    if (enqueued >= limit) return;
    {
      std::lock_guard lock(mutex);
      for (; enqueued < limit; ++enqueued) todo.push_back(first + enqueued);
    }
    cv.notify_all();
  };

  for (std::size_t k = 0; k < count; ++k) {
    const ds::Timestamp wave = first + static_cast<ds::Timestamp>(k);
    // Keep the pipeline primed `depth` waves past the one about to compute
    // (k+1 covers the wave itself).
    enqueue_through(k + 1 + depth);
    std::exception_ptr ingest_error;
    {
      std::unique_lock lock(mutex);
      cv.wait(lock, [&] { return done.count(wave) != 0; });
      ingest_error = done.at(wave);
      done.erase(wave);
    }
    if (ingest_error) std::rethrow_exception(ingest_error);
    out.push_back(run_wave(wave, controller));
  }
  return out;
}

WaveResult WorkflowEngine::shed_wave(ds::Timestamp wave) {
  if (last_wave_ && wave <= *last_wave_) {
    throw InvalidArgument("waves must be strictly increasing (got " + std::to_string(wave) +
                          " after " + std::to_string(*last_wave_) + ")");
  }
  last_wave_ = wave;
  ++waves_run_;
  ++waves_shed_;
  WaveResult result = make_result(wave, spec_.size());
  std::fill(result.status.begin(), result.status.end(), StepStatus::kSkipped);
  // Same wave-boundary order as run_wave: the shed wave commits to the store
  // and is journaled as all-skipped, so recovery replays it as a completed
  // empty wave — dropped load is accounted, never silently lost.
  store_->commit_wave(wave);
  if (journal_ != nullptr) journal_->append(WaveRecord{wave, result.status});
  if (obs_ != nullptr) {
    obs_->waves->inc_single_writer();
    obs_->waves_shed->inc_single_writer();
    const auto skipped = static_cast<std::size_t>(StepStatus::kSkipped);
    for (std::size_t i = 0; i < spec_.size(); ++i) obs_->status[i][skipped]->inc_single_writer();
  }
  SF_LOG_INFO("wms") << "wave " << wave << " shed under overload — journaled as skipped";
  return result;
}

std::vector<WaveResult> WorkflowEngine::run_waves_pipelined(ds::Timestamp first,
                                                            std::size_t count,
                                                            TriggerController& controller,
                                                            const WaveIngest& ingest,
                                                            const PressureOptions& pressure,
                                                            PressureStats* stats_out) {
  SF_CHECK(static_cast<bool>(ingest), "ingest must be callable");
  if (!pressure.enabled()) {
    throw InvalidArgument("pressured pipelining needs high_watermark >= 1");
  }
  if (pressure.high_watermark > store_->max_versions()) {
    throw InvalidArgument("high_watermark " + std::to_string(pressure.high_watermark) +
                          " needs a store with max_versions >= " +
                          std::to_string(pressure.high_watermark) + " (got " +
                          std::to_string(store_->max_versions()) +
                          "): a computing wave must still see its own version past the " +
                          "ingests admitted ahead of it");
  }
  std::vector<WaveResult> out;
  out.reserve(count);
  if (count == 0) return out;

  struct IngestDone {
    std::exception_ptr error;
    bool shed = false;
  };

  BoundedWaveQueue queue(pressure);
  std::mutex mutex;
  std::condition_variable cv;
  std::map<ds::Timestamp, IngestDone> done;
  bool stop = false;
  // Under kShed the producer never blocks in push(), so bound the done-map
  // too — otherwise a stalled consumer turns "bounded queue" into an
  // unbounded completion backlog.
  const std::size_t done_cap = 2 * pressure.high_watermark + 2;

  // One ingest worker doubles as the (fast) arrival producer: it races
  // through the waves as quickly as admission allows, serialized in wave
  // order. A refused wave is shed *before* its feed is written — true load
  // shedding, no wasted ingest work.
  std::thread worker([&] {
    for (std::size_t k = 0; k < count; ++k) {
      const ds::Timestamp wave = first + static_cast<ds::Timestamp>(k);
      {
        std::unique_lock lock(mutex);
        cv.wait(lock, [&] { return stop || done.size() < done_cap; });
        if (stop) return;
      }
      const bool admitted = queue.push(wave);  // kBlock: waits for the drain
      {
        std::lock_guard lock(mutex);
        if (stop) return;  // push was released by close(), not a real verdict
      }
      IngestDone d;
      if (!admitted) {
        d.shed = true;
      } else {
        try {
          ds::Client client(*store_, wave);
          ingest(client, wave);
        } catch (...) {
          d.error = std::current_exception();
        }
      }
      {
        std::lock_guard lock(mutex);
        done.emplace(wave, std::move(d));
      }
      cv.notify_all();
    }
  });
  // Joins on every exit path (including a propagating step failure below).
  struct StopAndJoin {
    std::thread& worker;
    std::mutex& mutex;
    std::condition_variable& cv;
    BoundedWaveQueue& queue;
    bool& stop;
    ~StopAndJoin() {
      {
        std::lock_guard lock(mutex);
        stop = true;
      }
      queue.close();
      cv.notify_all();
      worker.join();
    }
  } join_guard{worker, mutex, cv, queue, stop};

  for (std::size_t k = 0; k < count; ++k) {
    const ds::Timestamp wave = first + static_cast<ds::Timestamp>(k);
    IngestDone d;
    {
      std::unique_lock lock(mutex);
      cv.wait(lock, [&] { return done.count(wave) != 0; });
      d = std::move(done.at(wave));
      done.erase(wave);
    }
    cv.notify_all();  // wake a producer parked on the done-cap
    if (d.error) std::rethrow_exception(d.error);
    if (d.shed) {
      out.push_back(shed_wave(wave));
      continue;
    }
    out.push_back(run_wave(wave, controller));
    queue.pop();  // compute done: release the admission slot
    if (obs_ != nullptr) obs_->ingest_queue_depth->set(static_cast<double>(queue.depth()));
  }
  if (stats_out != nullptr) *stats_out = queue.stats();
  return out;
}

std::size_t WorkflowEngine::execution_count(std::size_t step_index) const {
  SF_CHECK(step_index < spec_.size(), "step index out of range");
  return exec_counts_[step_index];
}

std::optional<ds::Timestamp> WorkflowEngine::last_executed_wave(std::size_t step_index) const {
  SF_CHECK(step_index < spec_.size(), "step index out of range");
  return last_exec_wave_[step_index];
}

std::size_t WorkflowEngine::failure_count(std::size_t step_index) const {
  SF_CHECK(step_index < spec_.size(), "step index out of range");
  return failure_counts_[step_index];
}

bool WorkflowEngine::is_quarantined(std::size_t step_index) const {
  SF_CHECK(step_index < spec_.size(), "step index out of range");
  return fault_states_[step_index].quarantined;
}

std::size_t WorkflowEngine::quarantine_count(std::size_t step_index) const {
  SF_CHECK(step_index < spec_.size(), "step index out of range");
  return fault_states_[step_index].times_quarantined;
}

void WorkflowEngine::add_completion_listener(StepCompletionListener listener) {
  SF_CHECK(static_cast<bool>(listener), "listener must be callable");
  listeners_.push_back(std::move(listener));
}

void WorkflowEngine::attach_journal(WaveJournal* journal) {
  if (journal != nullptr) {
    std::vector<std::string> ids;
    ids.reserve(spec_.size());
    for (const auto& step : spec_.steps()) ids.push_back(step.id);
    journal->bind(spec_.name(), std::move(ids));
  }
  journal_ = journal;
}

void WorkflowEngine::restore_from_journal(const WaveJournal& journal) {
  if (waves_run_ != 0) {
    throw StateError("restore_from_journal requires a freshly constructed engine");
  }
  if (journal.step_ids().size() != spec_.size()) {
    throw InvalidArgument("journal step count does not match the workflow");
  }
  for (std::size_t i = 0; i < spec_.size(); ++i) {
    if (journal.step_ids()[i] != spec_.step_at(i).id) {
      throw InvalidArgument("journal step '" + journal.step_ids()[i] +
                            "' does not match workflow step '" + spec_.step_at(i).id + "'");
    }
  }
  for (const WaveRecord& record : journal.records()) {
    if (last_wave_ && record.wave <= *last_wave_) {
      throw InvalidArgument("journal waves are not strictly increasing");
    }
    last_wave_ = record.wave;
    ++waves_run_;
    for (std::size_t i = 0; i < record.status.size(); ++i) {
      apply_status(i, record.status[i], record.wave, /*count_failure=*/true);
    }
  }
  SF_LOG_INFO("wms") << "restored " << waves_run_ << " waves from journal; resuming after wave "
                     << (last_wave_ ? std::to_string(*last_wave_) : std::string("none"));
}

void WorkflowEngine::reset_history() {
  std::fill(exec_counts_.begin(), exec_counts_.end(), std::size_t{0});
  std::fill(failure_counts_.begin(), failure_counts_.end(), std::size_t{0});
  std::fill(fault_states_.begin(), fault_states_.end(), StepFaultState{});
  probe_gate_.reset(spec_.size());
  last_failure_.clear();
  std::fill(last_exec_wave_.begin(), last_exec_wave_.end(), std::optional<ds::Timestamp>{});
  total_executions_ = 0;
  waves_run_ = 0;
  waves_shed_ = 0;
  last_wave_.reset();
}

}  // namespace smartflux::wms
