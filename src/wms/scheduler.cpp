#include "wms/scheduler.h"

#include "common/error.h"
#include "datastore/client.h"

namespace smartflux::wms {

PeriodicWaveSource::PeriodicWaveSource(SimTimeMs period, std::size_t max_backlog)
    : period_(period), max_backlog_(max_backlog), next_deadline_(period) {
  SF_CHECK(period > 0, "period must be positive");
  SF_CHECK(max_backlog >= 1, "max_backlog must be >= 1");
}

std::size_t PeriodicWaveSource::waves_due(SimTimeMs now) {
  if (now < next_deadline_) return 0;
  const auto due = static_cast<std::size_t>((now - next_deadline_) / period_ + 1);
  return std::min(due, max_backlog_);
}

void PeriodicWaveSource::on_wave_started(SimTimeMs) { next_deadline_ += period_; }

DataAvailabilityWaveSource::DataAvailabilityWaveSource(ds::DataStore& store,
                                                       ds::ContainerRef container,
                                                       std::size_t min_mutations)
    : store_(&store), container_(std::move(container)), min_mutations_(min_mutations) {
  SF_CHECK(min_mutations >= 1, "min_mutations must be >= 1");
  token_ = store.subscribe([this](const ds::Mutation& m) {
    if (container_.matches(m.table, m.row, m.column)) ++pending_;
  });
}

DataAvailabilityWaveSource::~DataAvailabilityWaveSource() { store_->unsubscribe(token_); }

std::size_t DataAvailabilityWaveSource::waves_due(SimTimeMs) {
  return pending_ >= min_mutations_ ? 1 : 0;
}

void DataAvailabilityWaveSource::on_wave_started(SimTimeMs) { pending_ = 0; }

WaveDriver::WaveDriver(WorkflowEngine& engine, TriggerController& controller,
                       std::unique_ptr<WaveSource> source, ds::Timestamp first_wave)
    : engine_(&engine), controller_(&controller), source_(std::move(source)),
      next_wave_(first_wave) {
  SF_CHECK(source_ != nullptr, "WaveDriver needs a wave source");
  // Resume-awareness: an engine restored from a wave journal already has
  // history — continue after it instead of re-issuing journaled wave numbers.
  if (const auto last = engine.last_wave(); last && *last >= next_wave_) {
    next_wave_ = *last + 1;
  }
}

void WaveDriver::enable_pipelining(WaveIngest ingest) {
  SF_CHECK(static_cast<bool>(ingest), "ingest must be callable");
  if (engine_->store().max_versions() < 2) {
    throw InvalidArgument("pipelined ingest needs a store with max_versions >= 2 (got " +
                          std::to_string(engine_->store().max_versions()) + ")");
  }
  ingest_ = std::move(ingest);
}

void WaveDriver::ensure_ingested(ds::Timestamp wave) {
  if (prefetch_.valid() && prefetched_wave_ == wave) {
    prefetch_.get();  // rethrows the prefetched ingest's failure, if any
    return;
  }
  // Not prefetched (first wave of a run, or the previous prefetch failed and
  // was consumed): ingest inline.
  ds::Client client(engine_->store(), wave);
  ingest_(client, wave);
}

std::vector<WaveResult> WaveDriver::poll(const SimulatedClock& clock) {
  // Bound the batch by the count due on entry: a wave's own writes may re-arm
  // a data-availability source, which must surface at the *next* poll rather
  // than spin this one forever.
  std::size_t due = source_->waves_due(clock.now());
  std::vector<WaveResult> out;
  out.reserve(due);
  if (catchup_.budget > 0 && due > catchup_.budget) {
    // Shed the oldest excess waves: their deadline is long past, so running
    // them now only delays the waves that still matter. Each shed re-arms
    // the source like a started wave would.
    for (std::size_t excess = due - catchup_.budget; excess > 0; --excess) {
      if (prefetch_.valid() && prefetched_wave_ == next_wave_) {
        // The feed was prefetched for a wave we now drop; consume the future
        // so a failed prefetch can't leak into a later wave's slot.
        try {
          prefetch_.get();
        } catch (...) {
          // Shed wave: its ingest outcome is irrelevant.
        }
      }
      source_->on_wave_started(clock.now());
      out.push_back(engine_->shed_wave(next_wave_++));
      ++waves_shed_;
    }
    due = catchup_.budget;
  }
  for (std::size_t k = 0; k < due; ++k) {
    if (ingest_) {
      // Ingest failures surface before the wave is consumed: the source is
      // not re-armed and next_wave_ is unchanged, so the wave stays due.
      ensure_ingested(next_wave_);
      prefetched_wave_ = next_wave_ + 1;
      prefetch_ = std::async(std::launch::async, [this, wave = prefetched_wave_] {
        ds::Client client(engine_->store(), wave);
        ingest_(client, wave);
      });
    }
    source_->on_wave_started(clock.now());
    out.push_back(engine_->run_wave(next_wave_++, *controller_));
    ++waves_run_;
  }
  return out;
}

}  // namespace smartflux::wms
