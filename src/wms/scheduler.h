#pragma once

#include <cstdint>
#include <future>
#include <memory>
#include <vector>

#include "wms/engine.h"

namespace smartflux::wms {

/// Milliseconds on a simulated timeline. All scheduling in the repo is
/// driven by simulated time so experiments stay deterministic.
using SimTimeMs = std::uint64_t;

/// A deterministic, manually advanced clock.
class SimulatedClock {
 public:
  SimTimeMs now() const noexcept { return now_; }
  void advance(SimTimeMs delta) noexcept { now_ += delta; }

 private:
  SimTimeMs now_ = 0;
};

/// Decides when new waves are due — the paper's §1: "a WMS triggers the
/// execution of an entire workflow graph based on either time frequency
/// (e.g., every 20 minutes) or data availability (e.g., when new files show
/// up in a given folder)".
class WaveSource {
 public:
  virtual ~WaveSource() = default;
  /// Number of waves due at simulated time `now` (0 = nothing to do).
  virtual std::size_t waves_due(SimTimeMs now) = 0;
  /// Notified when a wave actually starts, so the source can re-arm.
  virtual void on_wave_started(SimTimeMs now) = 0;
};

/// Time-frequency triggering: one wave every `period` ms, catching up when
/// polled late (bounded by `max_backlog` to avoid unbounded catch-up storms).
class PeriodicWaveSource final : public WaveSource {
 public:
  explicit PeriodicWaveSource(SimTimeMs period, std::size_t max_backlog = 16);

  std::size_t waves_due(SimTimeMs now) override;
  void on_wave_started(SimTimeMs now) override;

 private:
  SimTimeMs period_;
  std::size_t max_backlog_;
  SimTimeMs next_deadline_;
};

/// Data-availability triggering: a wave becomes due when at least
/// `min_mutations` writes have landed in the watched container since the
/// last wave. Subscribes to the store's mutation stream.
class DataAvailabilityWaveSource final : public WaveSource {
 public:
  DataAvailabilityWaveSource(ds::DataStore& store, ds::ContainerRef container,
                             std::size_t min_mutations);
  ~DataAvailabilityWaveSource() override;

  DataAvailabilityWaveSource(const DataAvailabilityWaveSource&) = delete;
  DataAvailabilityWaveSource& operator=(const DataAvailabilityWaveSource&) = delete;

  std::size_t waves_due(SimTimeMs now) override;
  void on_wave_started(SimTimeMs now) override;

  std::size_t pending_mutations() const noexcept { return pending_; }

 private:
  ds::DataStore* store_;
  ds::ContainerRef container_;
  std::size_t min_mutations_;
  std::size_t token_;
  std::size_t pending_ = 0;
};

/// Deadline-aware catch-up: when a poll finds more waves due than `budget`,
/// the oldest excess waves are shed (journaled as all-skipped via
/// WorkflowEngine::shed_wave) instead of replayed, so a driver that fell
/// behind converges on the present instead of grinding through stale
/// backlog. budget == 0 disables shedding (every due wave runs).
struct CatchupPolicy {
  std::size_t budget = 0;
};

/// Drives a WorkflowEngine from a WaveSource: each poll() runs every due
/// wave under the given controller. Wave numbers are allocated sequentially
/// starting from `first_wave`.
class WaveDriver {
 public:
  WaveDriver(WorkflowEngine& engine, TriggerController& controller,
             std::unique_ptr<WaveSource> source, ds::Timestamp first_wave = 1);

  /// Runs all waves due at the clock's current time; returns their results.
  /// Under a CatchupPolicy, stale excess waves are shed first and appear in
  /// the returned results as all-skipped WaveResults.
  std::vector<WaveResult> poll(const SimulatedClock& clock);

  void set_catchup(CatchupPolicy policy) noexcept { catchup_ = policy; }
  /// Waves shed by catch-up so far (not counted in waves_run()).
  std::size_t waves_shed() const noexcept { return waves_shed_; }

  /// Enables one-wave-deep pipelined ingest: before wave w runs, its feed is
  /// guaranteed ingested (via `ingest`), and the ingest for wave w+1 is
  /// kicked off on a background thread so it overlaps wave w's compute.
  /// Requires the engine's store to retain max_versions() >= 2 (steps read
  /// as-of their wave, so the prefetched version never shadows the current
  /// one). Same write-disjointness contract as WorkflowEngine's
  /// run_waves_pipelined. If an ingest throws, the exception surfaces from
  /// poll() before the wave starts and the wave stays due for the next poll.
  void enable_pipelining(WaveIngest ingest);

  ds::Timestamp next_wave() const noexcept { return next_wave_; }
  std::size_t waves_run() const noexcept { return waves_run_; }

 private:
  /// Blocks until ingest(wave) completed — joining the prefetch if it covers
  /// this wave, running it inline otherwise.
  void ensure_ingested(ds::Timestamp wave);

  WorkflowEngine* engine_;
  TriggerController* controller_;
  std::unique_ptr<WaveSource> source_;
  ds::Timestamp next_wave_;
  std::size_t waves_run_ = 0;
  std::size_t waves_shed_ = 0;
  CatchupPolicy catchup_;
  WaveIngest ingest_;  ///< empty = pipelining disabled
  /// In-flight prefetch (std::async): the future's destructor joins it, so a
  /// driver destroyed mid-prefetch never leaves a dangling ingest thread.
  std::future<void> prefetch_;
  ds::Timestamp prefetched_wave_ = 0;
};

}  // namespace smartflux::wms
