#include "wms/xml_loader.h"

#include <sstream>

#include "common/error.h"
#include "wms/xml.h"

namespace smartflux::wms {

void StepRegistry::register_step(std::string name, StepFn fn) {
  SF_CHECK(!name.empty(), "step implementation name must not be empty");
  SF_CHECK(static_cast<bool>(fn), "step implementation must be callable");
  const auto [_, inserted] = fns_.emplace(std::move(name), std::move(fn));
  if (!inserted) throw InvalidArgument("duplicate step implementation");
}

const StepFn& StepRegistry::resolve(const std::string& name) const {
  auto it = fns_.find(name);
  if (it == fns_.end()) throw NotFound("no step implementation named '" + name + "'");
  return it->second;
}

bool StepRegistry::contains(const std::string& name) const noexcept {
  return fns_.contains(name);
}

namespace {

std::vector<std::string> split_csv(const std::string& value) {
  std::vector<std::string> out;
  std::stringstream ss(value);
  std::string item;
  while (std::getline(ss, item, ',')) {
    // Trim surrounding whitespace.
    const auto begin = item.find_first_not_of(" \t\n\r");
    const auto end = item.find_last_not_of(" \t\n\r");
    if (begin != std::string::npos) out.push_back(item.substr(begin, end - begin + 1));
  }
  return out;
}

ds::ContainerRef parse_container(const xml::Element& element, const std::string& action) {
  const std::string table = element.attribute("table");
  if (table.empty()) {
    throw InvalidArgument("action '" + action + "': <container> needs a table attribute");
  }
  return ds::ContainerRef(table, element.attribute("column"), element.attribute("row-prefix"));
}

double parse_bound(const std::string& text, const std::string& action) {
  try {
    std::size_t consumed = 0;
    const double value = std::stod(text, &consumed);
    if (consumed != text.size()) throw std::invalid_argument(text);
    return value;
  } catch (const std::exception&) {
    throw InvalidArgument("action '" + action + "': malformed <max-error> value '" + text + "'");
  }
}

}  // namespace

WorkflowSpec load_workflow_xml(std::string_view document, const StepRegistry& registry) {
  const auto root = xml::parse(document);
  if (root->tag != "workflow-app") {
    throw InvalidArgument("workflow definition must have a <workflow-app> root, got <" +
                          root->tag + ">");
  }
  const std::string name = root->attribute("name");
  if (name.empty()) throw InvalidArgument("<workflow-app> needs a name attribute");

  std::vector<StepSpec> steps;
  for (const xml::Element* action : root->children_named("action")) {
    StepSpec step;
    step.id = action->attribute("name");
    if (step.id.empty()) throw InvalidArgument("every <action> needs a name attribute");

    const std::string impl = action->child_text("impl", step.id);
    step.fn = registry.resolve(impl);
    step.predecessors = split_csv(action->child_text("predecessors"));

    if (const xml::Element* qod = action->child("qod")) {
      for (const xml::Element* container : qod->children_named("container")) {
        const std::string role = container->attribute("role", "input");
        if (role == "input") {
          step.inputs.push_back(parse_container(*container, step.id));
        } else if (role == "output") {
          step.outputs.push_back(parse_container(*container, step.id));
        } else {
          throw InvalidArgument("action '" + step.id + "': container role must be input|output");
        }
      }
      if (const xml::Element* bound = qod->child("max-error")) {
        step.max_error = parse_bound(bound->text, step.id);
      }
    }
    steps.push_back(std::move(step));
  }
  if (steps.empty()) throw InvalidArgument("workflow '" + name + "' declares no actions");

  return WorkflowSpec(name, std::move(steps));
}

}  // namespace smartflux::wms
