#pragma once

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>

#include "common/hashing.h"

namespace smartflux::wms {

/// Per-step failure handling (replaces the old three-way FailurePolicy enum):
/// a bounded retry budget with exponential backoff, deterministically-seeded
/// jitter, and a cooperative per-attempt wall-clock timeout. The engine
/// carries a default policy in its Options; StepSpec::retry overrides it per
/// step (real WMSs configure retries per action — Oozie's retry-max /
/// retry-interval).
struct RetryPolicy {
  /// Total attempts per wave (1 = no retries).
  std::size_t max_attempts = 1;
  /// Pause before the first retry; doubles (by `backoff_multiplier`) for each
  /// further retry, capped at `max_backoff`. Zero disables backoff pauses.
  std::chrono::milliseconds initial_backoff{0};
  double backoff_multiplier = 2.0;
  std::chrono::milliseconds max_backoff{10'000};
  /// Jitter fraction in [0, 1): each backoff is scaled by a factor drawn
  /// uniformly from [1-jitter, 1+jitter] using a stateless hash of
  /// (seed, step, wave, attempt) — reproducible from the engine seed, and
  /// independent of thread scheduling.
  double jitter = 0.0;
  /// Per-attempt wall-clock budget, enforced cooperatively through the
  /// CancellationToken on StepContext; an attempt that returns after the
  /// deadline is counted as failed. Zero = unlimited.
  std::chrono::milliseconds timeout{0};
  /// What exhausting the budget does: rethrow to the run_wave caller
  /// (aborting the wave) or record the failure and continue the wave.
  bool propagate = true;

  /// The default: one attempt, failures abort the wave.
  static RetryPolicy propagate_failures() noexcept { return {}; }
  /// One attempt; failures are recorded and the wave continues.
  static RetryPolicy skip_failures() noexcept {
    RetryPolicy p;
    p.propagate = false;
    return p;
  }
  /// `attempts` attempts with backoff; exhaustion is recorded, not rethrown.
  static RetryPolicy retries(std::size_t attempts,
                             std::chrono::milliseconds backoff = std::chrono::milliseconds{0},
                             double jitter_fraction = 0.0) noexcept {
    RetryPolicy p;
    p.max_attempts = attempts;
    p.initial_backoff = backoff;
    p.jitter = jitter_fraction;
    p.propagate = false;
    return p;
  }

  /// Backoff pause before attempt `attempt` (2-based: attempt 1 never waits).
  std::chrono::nanoseconds backoff_before(std::size_t attempt, std::uint64_t seed,
                                          std::uint64_t step_hash, std::uint64_t wave) const {
    if (attempt <= 1 || initial_backoff.count() <= 0) return std::chrono::nanoseconds{0};
    double ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(initial_backoff).count());
    ns *= std::pow(backoff_multiplier, static_cast<double>(attempt - 2));
    const double cap = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(max_backoff).count());
    ns = std::min(ns, cap);
    if (jitter > 0.0) {
      const double u = hash_unit(seed, step_hash, wave, attempt);
      ns *= 1.0 - jitter + 2.0 * jitter * u;
    }
    return std::chrono::nanoseconds{static_cast<std::int64_t>(ns)};
  }
};

}  // namespace smartflux::wms
