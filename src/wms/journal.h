#pragma once

#include <fstream>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "wms/engine.h"

namespace smartflux::wms {

/// One journaled wave: the terminal status of every step, in spec order.
struct WaveRecord {
  ds::Timestamp wave = 0;
  std::vector<StepStatus> status;

  friend bool operator==(const WaveRecord&, const WaveRecord&) = default;
};

/// Append-only journal of wave outcomes — the durable execution history of a
/// continuous workflow. The engine appends one record per completed wave;
/// a restarted engine replays the journal (restore_from_journal) to recover
/// its execution counts, failure counts and quarantine state and resume from
/// the last completed wave. Only completed waves are journaled: a wave
/// aborted by a propagating failure leaves no record and is re-run on
/// resume.
///
/// The serialized form is a line-oriented text format:
///
///   smartflux-journal v1
///   workflow <name>
///   steps <id...>
///   w <wave> <status chars>     # one line per wave, e.g. "w 7 XsF-Q"
///
/// With an open sink, every append is serialized and flushed immediately so
/// the journal survives a crash of the process.
class WaveJournal {
 public:
  WaveJournal() = default;

  WaveJournal(WaveJournal&&) = default;
  WaveJournal& operator=(WaveJournal&&) = default;

  /// Fixes the workflow identity (step order) the records refer to. Called
  /// by WorkflowEngine::attach_journal; re-binding with the same ids is a
  /// no-op, a different workflow throws InvalidArgument. Step ids must not
  /// contain whitespace.
  void bind(std::string workflow_name, std::vector<std::string> step_ids);
  bool bound() const noexcept { return !step_ids_.empty(); }
  const std::string& workflow_name() const noexcept { return workflow_name_; }
  const std::vector<std::string>& step_ids() const noexcept { return step_ids_; }

  /// Appends one completed wave. Waves must be strictly increasing and the
  /// status vector must match the bound step count.
  void append(WaveRecord record);

  const std::vector<WaveRecord>& records() const noexcept { return records_; }
  std::size_t size() const noexcept { return records_.size(); }
  bool empty() const noexcept { return records_.empty(); }
  std::optional<ds::Timestamp> last_wave() const noexcept {
    return records_.empty() ? std::nullopt : std::optional(records_.back().wave);
  }

  /// Serialization. `to_string` is the canonical byte form — two runs with
  /// the same fault seed produce identical strings.
  void save(std::ostream& os) const;
  std::string to_string() const;
  static WaveJournal load(std::istream& is);
  void save_file(const std::string& path) const;
  static WaveJournal load_file(const std::string& path);

  /// Copy of this journal keeping only the records with wave <= `wave` (no
  /// sink). This is the consistency cut for resuming alongside a durable
  /// datastore: truncate at the store's last durable wave (the min() of the
  /// wave-boundary rule), then re-open the sink — which rewrites the file —
  /// so journal and data agree before new waves append.
  WaveJournal truncated_to(ds::Timestamp wave) const;

  /// Opens a write-through sink: the current journal content is written to
  /// `path` (truncating it) and every subsequent append is written and
  /// flushed immediately.
  ///
  /// `sync_on_append` chooses the durability level of each append. The
  /// default (false) flushes to the OS only: the record survives a crash of
  /// the *process* but can be lost to a kernel/power crash. Pass true to
  /// also fsync the file per append — the wave-boundary recovery rule
  /// (resume at min(journal wave, datastore durable wave)) is correct either
  /// way, a lost journal tail just re-runs the affected waves.
  void open_sink(const std::string& path, bool sync_on_append = false);
  void close_sink();
  bool has_sink() const noexcept { return sink_ != nullptr; }
  bool sync_on_append() const noexcept { return sync_on_append_; }

 private:
  static void write_record(std::ostream& os, const WaveRecord& record);

  std::string workflow_name_;
  std::vector<std::string> step_ids_;
  std::vector<WaveRecord> records_;
  std::unique_ptr<std::ofstream> sink_;
  std::string sink_path_;
  bool sync_on_append_ = false;
};

}  // namespace smartflux::wms
