#pragma once

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace smartflux::wms::xml {

/// A parsed XML element: tag, attributes, child elements and concatenated
/// text content. Covers the subset of XML that workflow definitions use
/// (no namespaces, DTDs or CDATA) with the five predefined entities.
struct Element {
  std::string tag;
  std::map<std::string, std::string> attributes;
  std::vector<std::unique_ptr<Element>> children;
  std::string text;  ///< trimmed concatenation of text nodes

  /// First child with the given tag, or nullptr.
  const Element* child(std::string_view tag) const;
  /// All children with the given tag.
  std::vector<const Element*> children_named(std::string_view tag) const;
  /// Attribute value or `fallback`.
  std::string attribute(std::string_view name, std::string fallback = {}) const;
  bool has_attribute(std::string_view name) const;
  /// Text of the first child with the given tag, or `fallback`.
  std::string child_text(std::string_view tag, std::string fallback = {}) const;
};

/// Parses a document and returns its root element. Throws
/// smartflux::InvalidArgument with a line number on malformed input.
std::unique_ptr<Element> parse(std::string_view document);

}  // namespace smartflux::wms::xml
