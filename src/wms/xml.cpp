#include "wms/xml.h"

#include <cctype>

#include "common/error.h"

namespace smartflux::wms::xml {

const Element* Element::child(std::string_view tag) const {
  for (const auto& c : children) {
    if (c->tag == tag) return c.get();
  }
  return nullptr;
}

std::vector<const Element*> Element::children_named(std::string_view tag) const {
  std::vector<const Element*> out;
  for (const auto& c : children) {
    if (c->tag == tag) out.push_back(c.get());
  }
  return out;
}

std::string Element::attribute(std::string_view name, std::string fallback) const {
  auto it = attributes.find(std::string(name));
  return it == attributes.end() ? std::move(fallback) : it->second;
}

bool Element::has_attribute(std::string_view name) const {
  return attributes.contains(std::string(name));
}

std::string Element::child_text(std::string_view tag, std::string fallback) const {
  const Element* c = child(tag);
  return c == nullptr ? std::move(fallback) : c->text;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view doc) : doc_(doc) {}

  std::unique_ptr<Element> parse_document() {
    skip_misc();
    auto root = parse_element();
    skip_misc();
    if (pos_ != doc_.size()) fail("trailing content after root element");
    return root;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    std::size_t line = 1;
    for (std::size_t i = 0; i < pos_ && i < doc_.size(); ++i) {
      if (doc_[i] == '\n') ++line;
    }
    throw InvalidArgument("XML parse error at line " + std::to_string(line) + ": " + message);
  }

  bool eof() const noexcept { return pos_ >= doc_.size(); }
  char peek() const noexcept { return eof() ? '\0' : doc_[pos_]; }
  char get() {
    if (eof()) fail("unexpected end of document");
    return doc_[pos_++];
  }
  bool consume(std::string_view token) {
    if (doc_.substr(pos_, token.size()) == token) {
      pos_ += token.size();
      return true;
    }
    return false;
  }

  void skip_whitespace() {
    while (!eof() && std::isspace(static_cast<unsigned char>(peek()))) ++pos_;
  }

  /// Skips whitespace, comments and processing instructions between nodes.
  void skip_misc() {
    for (;;) {
      skip_whitespace();
      if (consume("<!--")) {
        const auto end = doc_.find("-->", pos_);
        if (end == std::string_view::npos) fail("unterminated comment");
        pos_ = end + 3;
      } else if (consume("<?")) {
        const auto end = doc_.find("?>", pos_);
        if (end == std::string_view::npos) fail("unterminated processing instruction");
        pos_ = end + 2;
      } else {
        return;
      }
    }
  }

  static bool is_name_char(char c) noexcept {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '-' || c == '_' || c == '.' ||
           c == ':';
  }

  std::string parse_name() {
    const std::size_t start = pos_;
    while (!eof() && is_name_char(peek())) ++pos_;
    if (pos_ == start) fail("expected a name");
    return std::string(doc_.substr(start, pos_ - start));
  }

  std::string decode_entities(std::string_view raw) {
    std::string out;
    out.reserve(raw.size());
    for (std::size_t i = 0; i < raw.size();) {
      if (raw[i] != '&') {
        out.push_back(raw[i++]);
        continue;
      }
      const auto end = raw.find(';', i);
      if (end == std::string_view::npos) fail("unterminated entity reference");
      const std::string_view entity = raw.substr(i + 1, end - i - 1);
      if (entity == "lt") {
        out.push_back('<');
      } else if (entity == "gt") {
        out.push_back('>');
      } else if (entity == "amp") {
        out.push_back('&');
      } else if (entity == "quot") {
        out.push_back('"');
      } else if (entity == "apos") {
        out.push_back('\'');
      } else {
        fail("unknown entity '&" + std::string(entity) + ";'");
      }
      i = end + 1;
    }
    return out;
  }

  std::string parse_attribute_value() {
    const char quote = get();
    if (quote != '"' && quote != '\'') fail("attribute value must be quoted");
    const std::size_t start = pos_;
    while (!eof() && peek() != quote) ++pos_;
    if (eof()) fail("unterminated attribute value");
    const auto raw = doc_.substr(start, pos_ - start);
    ++pos_;  // closing quote
    return decode_entities(raw);
  }

  static std::string trim(std::string s) {
    const auto not_space = [](unsigned char c) { return !std::isspace(c); };
    while (!s.empty() && !not_space(static_cast<unsigned char>(s.front()))) s.erase(s.begin());
    while (!s.empty() && !not_space(static_cast<unsigned char>(s.back()))) s.pop_back();
    return s;
  }

  std::unique_ptr<Element> parse_element() {
    if (!consume("<")) fail("expected '<'");
    auto element = std::make_unique<Element>();
    element->tag = parse_name();

    // Attributes.
    for (;;) {
      skip_whitespace();
      if (consume("/>")) return element;  // self-closing
      if (consume(">")) break;
      const std::string name = parse_name();
      skip_whitespace();
      if (!consume("=")) fail("expected '=' after attribute name");
      skip_whitespace();
      const auto [_, inserted] = element->attributes.emplace(name, parse_attribute_value());
      if (!inserted) fail("duplicate attribute '" + name + "'");
    }

    // Content: text, children, comments, until the matching end tag.
    std::string text;
    for (;;) {
      if (eof()) fail("unterminated element <" + element->tag + ">");
      if (consume("<!--")) {
        const auto end = doc_.find("-->", pos_);
        if (end == std::string_view::npos) fail("unterminated comment");
        pos_ = end + 3;
      } else if (consume("</")) {
        const std::string closing = parse_name();
        if (closing != element->tag) {
          fail("mismatched end tag </" + closing + "> for <" + element->tag + ">");
        }
        skip_whitespace();
        if (!consume(">")) fail("malformed end tag");
        element->text = trim(decode_entities(text));
        return element;
      } else if (peek() == '<') {
        element->children.push_back(parse_element());
      } else {
        text.push_back(get());
      }
    }
  }

  std::string_view doc_;
  std::size_t pos_ = 0;
};

}  // namespace

std::unique_ptr<Element> parse(std::string_view document) {
  return Parser(document).parse_document();
}

}  // namespace smartflux::wms::xml
