#include "wms/journal.h"

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <sstream>

#include "common/error.h"
#include "common/fsync.h"

namespace smartflux::wms {

void WaveJournal::bind(std::string workflow_name, std::vector<std::string> step_ids) {
  SF_CHECK(!step_ids.empty(), "a journal needs at least one step");
  for (const auto& id : step_ids) {
    SF_CHECK(id.find_first_of(" \t\n\r") == std::string::npos,
             "journal step ids must not contain whitespace");
  }
  if (bound()) {
    if (workflow_name_ != workflow_name || step_ids_ != step_ids) {
      throw InvalidArgument("journal is already bound to workflow '" + workflow_name_ +
                            "' with a different step layout");
    }
    return;
  }
  workflow_name_ = std::move(workflow_name);
  step_ids_ = std::move(step_ids);
}

void WaveJournal::append(WaveRecord record) {
  SF_CHECK(bound(), "bind the journal before appending");
  SF_CHECK(record.status.size() == step_ids_.size(),
           "wave record step count does not match the bound workflow");
  if (!records_.empty() && record.wave <= records_.back().wave) {
    throw InvalidArgument("journal waves must be strictly increasing (got " +
                          std::to_string(record.wave) + " after " +
                          std::to_string(records_.back().wave) + ")");
  }
  if (sink_) {
    write_record(*sink_, record);
    sink_->flush();
    if (!*sink_) throw Error("journal sink write failed: " + sink_path_);
    if (sync_on_append_) fsync_path(sink_path_);
  }
  records_.push_back(std::move(record));
}

void WaveJournal::write_record(std::ostream& os, const WaveRecord& record) {
  os << "w " << record.wave << ' ';
  for (StepStatus s : record.status) os << step_status_char(s);
  os << '\n';
}

void WaveJournal::save(std::ostream& os) const {
  SF_CHECK(bound(), "cannot save an unbound journal");
  os << "smartflux-journal v1\n";
  os << "workflow " << workflow_name_ << '\n';
  os << "steps";
  for (const auto& id : step_ids_) os << ' ' << id;
  os << '\n';
  for (const auto& record : records_) write_record(os, record);
}

std::string WaveJournal::to_string() const {
  std::ostringstream os;
  save(os);
  return os.str();
}

WaveJournal WaveJournal::load(std::istream& is) {
  std::string line;
  if (!std::getline(is, line) || line != "smartflux-journal v1") {
    throw Error("not a smartflux journal (bad magic line)");
  }
  WaveJournal journal;
  std::string name;
  std::vector<std::string> ids;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    if (tag == "workflow") {
      std::getline(ls >> std::ws, name);
    } else if (tag == "steps") {
      std::string id;
      while (ls >> id) ids.push_back(id);
      journal.bind(name, ids);
    } else if (tag == "w") {
      SF_CHECK(journal.bound(), "journal record before the steps header");
      WaveRecord record;
      std::string chars;
      if (!(ls >> record.wave >> chars)) throw Error("malformed journal record: " + line);
      record.status.reserve(chars.size());
      for (char c : chars) {
        const auto s = step_status_from_char(c);
        if (!s) throw Error(std::string("unknown step status '") + c + "' in journal");
        record.status.push_back(*s);
      }
      journal.append(std::move(record));
    } else {
      throw Error("unknown journal line: " + line);
    }
  }
  SF_CHECK(journal.bound(), "journal has no steps header");
  return journal;
}

void WaveJournal::save_file(const std::string& path) const {
  std::ofstream os(path, std::ios::trunc);
  if (!os) throw Error("cannot open journal file for writing: " + path);
  save(os);
  if (!os) throw Error("journal write failed: " + path);
}

WaveJournal WaveJournal::load_file(const std::string& path) {
  // ifstream happily "opens" a directory on POSIX and only fails on the
  // first read, which would surface as a misleading bad-magic error below —
  // reject it up front with a message that names the real problem.
  std::error_code ec;
  if (std::filesystem::is_directory(path, ec)) {
    throw Error("cannot open journal file '" + path + "': is a directory");
  }
  errno = 0;
  std::ifstream is(path);
  if (!is) {
    std::string detail = errno != 0 ? std::strerror(errno) : "open failed";
    throw Error("cannot open journal file '" + path + "': " + detail);
  }
  WaveJournal journal = load(is);
  if (is.bad()) throw Error("I/O error while reading journal file '" + path + "'");
  return journal;
}

WaveJournal WaveJournal::truncated_to(ds::Timestamp wave) const {
  SF_CHECK(bound(), "cannot truncate an unbound journal");
  WaveJournal out;
  out.workflow_name_ = workflow_name_;
  out.step_ids_ = step_ids_;
  for (const WaveRecord& record : records_) {
    if (record.wave > wave) break;  // records are strictly increasing
    out.records_.push_back(record);
  }
  return out;
}

void WaveJournal::open_sink(const std::string& path, bool sync_on_append) {
  SF_CHECK(bound(), "bind the journal before opening a sink");
  auto sink = std::make_unique<std::ofstream>(path, std::ios::trunc);
  if (!*sink) throw Error("cannot open journal sink: " + path);
  // Seed the sink with the full current content so the file alone suffices
  // for recovery.
  *sink << "smartflux-journal v1\n";
  *sink << "workflow " << workflow_name_ << '\n';
  *sink << "steps";
  for (const auto& id : step_ids_) *sink << ' ' << id;
  *sink << '\n';
  for (const auto& record : records_) write_record(*sink, record);
  sink->flush();
  if (!*sink) throw Error("journal sink write failed: " + path);
  if (sync_on_append) fsync_path(path);
  sink_ = std::move(sink);
  sink_path_ = path;
  sync_on_append_ = sync_on_append;
}

void WaveJournal::close_sink() {
  sink_.reset();
  sink_path_.clear();
  sync_on_append_ = false;
}

}  // namespace smartflux::wms
