#pragma once

#include <string>

#include "datastore/types.h"

namespace smartflux::ds {

/// Addresses a *data container*: the unit of data a processing step reads or
/// writes (§2 of the paper). A container is a table, optionally narrowed to a
/// single column and/or a row-key prefix — mirroring the paper's "table,
/// column, row, or group of any of these".
class ContainerRef {
 public:
  ContainerRef() = default;
  explicit ContainerRef(TableName table, ColumnKey column = {}, RowKey row_prefix = {})
      : table_(std::move(table)), column_(std::move(column)), row_prefix_(std::move(row_prefix)) {}

  static ContainerRef whole_table(TableName table) { return ContainerRef{std::move(table)}; }
  static ContainerRef column(TableName table, ColumnKey column) {
    return ContainerRef{std::move(table), std::move(column)};
  }

  const TableName& table() const noexcept { return table_; }
  const ColumnKey& column_key() const noexcept { return column_; }
  const RowKey& row_prefix() const noexcept { return row_prefix_; }
  bool has_column() const noexcept { return !column_.empty(); }
  bool has_row_prefix() const noexcept { return !row_prefix_.empty(); }

  /// True when a mutation of (table, row, column) falls inside this container.
  bool matches(const TableName& table, const RowKey& row, const ColumnKey& column) const {
    if (table != table_) return false;
    if (has_column() && column != column_) return false;
    if (has_row_prefix() && row.rfind(row_prefix_, 0) != 0) return false;
    return true;
  }

  /// `matches` for a cell already known to live in this container's table
  /// (scan hot path: skips the per-cell table-name compare).
  bool matches_cell(const RowKey& row, const ColumnKey& column) const {
    if (has_column() && column != column_) return false;
    if (has_row_prefix() && row.rfind(row_prefix_, 0) != 0) return false;
    return true;
  }

  /// Stable identifier used as map key ("table/column/prefix").
  std::string id() const { return table_ + "/" + column_ + "/" + row_prefix_; }

  friend bool operator==(const ContainerRef&, const ContainerRef&) = default;
  friend auto operator<=>(const ContainerRef&, const ContainerRef&) = default;

 private:
  TableName table_;
  ColumnKey column_;
  RowKey row_prefix_;
};

}  // namespace smartflux::ds
