#pragma once

#include <span>
#include <string>
#include <utility>
#include <vector>

#include "datastore/datastore.h"

namespace smartflux::ds {

/// Adapted client library handed to processing steps (the paper's
/// "Application Libraries" integration option, §4): same get/put/delete shape
/// as the native store client, but every write flows through the shared
/// DataStore whose observers feed SmartFlux monitoring. A Client is bound to
/// the timestamp (wave) the step is executing in, so steps never manage
/// timestamps themselves.
class Client {
 public:
  /// Hook invoked before every write reaches the store; throwing from it
  /// fails the write. The engine's fault-injection layer uses this to
  /// simulate datastore outages without touching the store itself.
  using WriteHook = std::function<void(const TableName&, const RowKey&, const ColumnKey&)>;

  Client(DataStore& store, Timestamp wave) noexcept : store_(&store), wave_(wave) {}
  Client(DataStore& store, Timestamp wave, WriteHook on_write)
      : store_(&store), wave_(wave), on_write_(std::move(on_write)) {}

  Timestamp wave() const noexcept { return wave_; }

  void put(const TableName& table, const RowKey& row, const ColumnKey& column, double value) {
    if (on_write_) on_write_(table, row, column);
    store_->put(table, row, column, wave_, value);
  }

  /// Batched put: all cells land under one table-lock acquisition with a
  /// single observer-list snapshot (DataStore::put_batch). The write hook
  /// runs per cell *before* anything is applied, in op order; if it throws
  /// at cell k, the preceding k cells are still applied (matching what a
  /// put() loop would have done) and the exception propagates.
  void put_batch(const TableName& table, std::span<const PutOp> ops) {
    if (on_write_) {
      for (std::size_t i = 0; i < ops.size(); ++i) {
        try {
          on_write_(table, RowKey(ops[i].row), ColumnKey(ops[i].column));
        } catch (...) {
          store_->put_batch(table, wave_, ops.first(i));
          throw;
        }
      }
    }
    store_->put_batch(table, wave_, ops);
  }

  /// Bulk put of (row, value) pairs into one column, as a single batch.
  void put_column(const TableName& table, const ColumnKey& column,
                  std::span<const std::pair<RowKey, double>> cells) {
    std::vector<PutOp> ops;
    ops.reserve(cells.size());
    for (const auto& [row, value] : cells) ops.push_back(PutOp{row, column, value});
    put_batch(table, ops);
  }

  void erase(const TableName& table, const RowKey& row, const ColumnKey& column) {
    if (on_write_) on_write_(table, row, column);
    store_->erase(table, row, column, wave_);
  }

  /// Reads are as-of the client's wave: with pipelined wave execution, wave
  /// w+1's feed may already be ingesting while wave w's steps still compute,
  /// and a step bound to wave w must never observe it. For serial execution
  /// nothing newer than the bound wave exists, so this is exactly the plain
  /// latest-version read.
  std::optional<double> get(const TableName& table, const RowKey& row,
                            const ColumnKey& column) const {
    return store_->get_at(table, row, column, wave_);
  }

  /// Previous retained version (as of the bound wave) — the store piggybacks
  /// it on the same read (the paper's zero-overhead previous-state
  /// retrieval).
  std::optional<double> get_previous(const TableName& table, const RowKey& row,
                                     const ColumnKey& column) const {
    return store_->get_previous_at(table, row, column, wave_);
  }

  void scan(const ContainerRef& container,
            const std::function<void(const RowKey&, const ColumnKey&, double)>& visit) const {
    store_->scan_container_at(container, wave_, visit);
  }

  DataStore& store() noexcept { return *store_; }
  const DataStore& store() const noexcept { return *store_; }

 private:
  DataStore* store_;
  Timestamp wave_;
  WriteHook on_write_;
};

}  // namespace smartflux::ds
