#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/fsync.h"
#include "datastore/durability.h"
#include "datastore/types.h"

namespace smartflux::obs {
class Counter;
class Histogram;
}  // namespace smartflux::obs

namespace smartflux::ds {

/// On-disk record framing (all integers little-endian):
///
///   [u32 payload_len][u32 crc32c(payload)][payload]
///   payload = [u8 kind][u64 lsn][kind-specific fields]
///
/// The lsn is a store-global log sequence number: with a sharded store every
/// shard's WAL family draws lsns from one shared counter, so recovery can
/// merge the interleaved per-shard segments back into the single total order
/// the mutations were applied in. Records broadcast to every family
/// (create/drop/clear, wave commits) carry the SAME lsn in each copy, which
/// is how replay deduplicates them and how a wave commit's "present in all
/// shards" barrier is checked.
///
/// Strings are [u32 len][bytes]. A `put_batch` is ONE record holding every
/// cell of the batch, so it replays atomically: either the whole batch made
/// it to disk or none of it did. Recovery scans records in order; a partial
/// *final* record (crash mid-append) is truncated and tolerated, a checksum
/// mismatch anywhere *before* the end of the file is corruption and a hard
/// error.
enum class WalRecordKind : std::uint8_t {
  kPut = 1,
  kPutBatch = 2,
  kErase = 3,
  kCreateTable = 4,
  kDropTable = 5,
  kClear = 6,
  kWaveCommit = 7,
};

/// Sanity cap on one record's payload: anything larger is treated as
/// corruption, not an allocation request.
constexpr std::uint32_t kWalMaxPayloadBytes = 1u << 30;

/// One decoded WAL record (reader side). Only the fields relevant to `kind`
/// are meaningful.
struct WalRecord {
  WalRecordKind kind = WalRecordKind::kPut;
  std::uint64_t lsn = 0;  ///< store-global log sequence number
  std::string table;
  std::string row;
  std::string column;
  Timestamp ts = 0;      ///< kPut / kPutBatch / kErase
  double value = 0.0;    ///< kPut
  Timestamp wave = 0;    ///< kWaveCommit
  struct BatchOp {
    std::string row;
    std::string column;
    double value = 0.0;
  };
  std::vector<BatchOp> batch;  ///< kPutBatch
};

/// "wal-000042.sflog" <-> 42. Segment numbers start at 1 and only grow;
/// rotation happens at checkpoints.
std::string wal_segment_name(std::uint64_t seq);
std::optional<std::uint64_t> parse_wal_segment_name(std::string_view name);
/// Sharded WAL family naming: "wal-s3-000042.sflog" = shard 3, segment 42.
/// A store with shards == 1 keeps the legacy unsharded name above, so the
/// default layout is unchanged byte for byte.
std::string sharded_wal_segment_name(std::size_t shard, std::uint64_t seq);
/// (shard, segment) of either naming scheme: the legacy name parses as
/// shard 0, so a sharded recovery can replay a dir written unsharded (and
/// vice versa — routing is recomputed from the replayed row keys).
struct WalSegmentId {
  std::size_t shard = 0;
  std::uint64_t seq = 0;
};
std::optional<WalSegmentId> parse_any_wal_segment_name(std::string_view name);
/// "checkpoint-000042.sfck" <-> 42 (the highest segment the checkpoint
/// covers).
std::string checkpoint_file_name(std::uint64_t cut_seq);
std::optional<std::uint64_t> parse_checkpoint_file_name(std::string_view name);

/// Pre-resolved WAL metric handles (owned by the DataStore's Durability).
/// With a sharded store each family carries its own copy: records/bytes/
/// syncs point at the shared store-wide series, shard_bytes (when set) at
/// the family's own sf_ds_wal_shard_bytes_total{shard=...} series.
struct WalObs {
  obs::Counter* records = nullptr;
  obs::Counter* bytes = nullptr;
  obs::Counter* syncs = nullptr;
  obs::Counter* shard_bytes = nullptr;  ///< per-shard bytes, sharded stores only
  obs::Histogram* fsync_duration = nullptr;
};

/// Append side of the write-ahead log: one open segment file, records framed
/// as above, fsync cadence governed by WalFlushPolicy. Thread-compatible —
/// the owning DataStore serializes appends under its WAL mutex.
///
/// Fault injection: when a FaultInjector is attached, every append consults
/// the disk-fault schedule (tag = `fault_tag`, default "wal"; sharded
/// families use "wal-s<k>"; seq = the record's lsn) and every fsync consults
/// the fsync schedule. A fired fault leaves the file exactly as a crash
/// would (nothing, a torn prefix, or everything but the last byte), marks
/// the writer broken, and throws InjectedFault; every later operation on a
/// broken writer throws Error.
///
/// Lsn allocation: with `lsn_source` (the owning store's global counter),
/// every append draws its lsn from it — the caller must hold the family
/// mutex across the append so per-family lsns are monotone. Without one
/// (standalone writers, tests) the internal running record count doubles as
/// the lsn, which matches the unsharded store exactly. Broadcast records
/// pass an explicit pre-drawn lsn instead so every family logs the same one.
class WalWriter {
 public:
  WalWriter(std::string path, WalFlushPolicy policy, FaultInjector* injector,
            std::uint64_t first_record_seq = 0,
            std::atomic<std::uint64_t>* lsn_source = nullptr, std::string fault_tag = "wal");
  ~WalWriter();  ///< best-effort flush, no sync (durability points are explicit)

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  void append_put(std::string_view table, std::string_view row, std::string_view column,
                  Timestamp ts, double value);
  void append_batch(std::string_view table, Timestamp ts, std::span<const PutOp> ops);
  void append_erase(std::string_view table, std::string_view row, std::string_view column,
                    Timestamp ts);
  void append_create_table(std::string_view table,
                           std::optional<std::uint64_t> lsn = std::nullopt);
  void append_drop_table(std::string_view table,
                         std::optional<std::uint64_t> lsn = std::nullopt);
  void append_clear(std::optional<std::uint64_t> lsn = std::nullopt);
  /// With sync_now (the default) flushes and fsyncs regardless of policy:
  /// the wave commit is the durability point the recovery boundary rule is
  /// built on. A sharded store's two-phase commit passes sync_now = false to
  /// write the record to every family first (phase 1) and then fsyncs each
  /// family via sync() (phase 2), so no shard's stamp hits stable storage
  /// before every shard has the record in its file.
  void append_wave_commit(Timestamp wave, std::optional<std::uint64_t> lsn = std::nullopt,
                          bool sync_now = true);

  /// Pushes buffered bytes to the OS (no fsync).
  void flush();
  /// flush + fsync.
  void sync();

  const std::string& path() const noexcept { return path_; }
  /// Records appended through this writer across its lifetime (continues
  /// across segments via first_record_seq — the fault-injection seq space).
  std::uint64_t record_seq() const noexcept { return record_seq_; }
  std::uint64_t bytes_appended() const noexcept { return bytes_appended_; }
  std::uint64_t sync_count() const noexcept { return sync_seq_; }
  bool broken() const noexcept { return broken_; }

  void set_obs(const WalObs* obs) noexcept { obs_ = obs; }

 private:
  /// Frames `payload`, applies the fault schedule (keyed by `lsn`), writes,
  /// and applies the flush policy. `sync_class`: 0 = ride along, 1 = policy
  /// batch boundary, 2 = forced sync (wave commit), 3 = forced flush without
  /// sync (phase 1 of a sharded two-phase commit).
  void append(std::string_view payload, int sync_class, std::uint64_t lsn);
  /// Lsn for the next record: drawn from lsn_source_ when attached (caller
  /// holds the family mutex), else the internal running count.
  std::uint64_t next_lsn() noexcept;
  void check_usable() const;

  std::string path_;
  SyncFile file_;
  WalFlushPolicy policy_;
  FaultInjector* injector_;
  std::atomic<std::uint64_t>* lsn_source_;
  std::string fault_tag_;
  std::string scratch_;        ///< payload encode buffer, reused
  std::string pending_;        ///< framed bytes not yet written to the OS
  std::uint64_t record_seq_ = 0;
  std::uint64_t sync_seq_ = 0;
  std::uint64_t bytes_appended_ = 0;
  bool broken_ = false;
  const WalObs* obs_ = nullptr;
};

/// Sequential reader over one WAL segment (loads the file into memory —
/// segments are bounded by checkpoint rotation).
class WalReader {
 public:
  explicit WalReader(const std::string& path);

  enum class Next : std::uint8_t {
    kRecord,    ///< `out` holds the next record
    kEnd,       ///< clean end of log
    kTornTail,  ///< partial/corrupt final record: stop, truncate at clean_bytes()
  };

  /// Advances to the next record. Throws Error on mid-log corruption (a
  /// record that fails its checksum or length sanity with more bytes
  /// following it).
  Next next(WalRecord& out);

  /// Byte offset of the end of the last cleanly read record — the truncation
  /// point when the tail is torn.
  std::uint64_t clean_bytes() const noexcept { return clean_bytes_; }
  std::uint64_t file_bytes() const noexcept { return data_.size(); }
  std::uint64_t records_read() const noexcept { return records_read_; }

 private:
  std::string path_;
  std::string data_;
  std::uint64_t pos_ = 0;
  std::uint64_t clean_bytes_ = 0;
  std::uint64_t records_read_ = 0;
  bool done_ = false;
};

}  // namespace smartflux::ds
