#include "datastore/datastore.h"

#include "common/error.h"

namespace smartflux::ds {

DataStore::DataStore(std::size_t max_versions) : max_versions_(max_versions) {
  SF_CHECK(max_versions >= 1, "DataStore must retain at least one version");
}

DataStore::TableEntry& DataStore::entry_for(const TableName& table) {
  std::lock_guard lock(tables_mutex_);
  auto& slot = tables_[table];
  if (!slot) slot = std::make_unique<TableEntry>(max_versions_);
  return *slot;
}

const DataStore::TableEntry* DataStore::find_entry(const TableName& table) const {
  std::lock_guard lock(tables_mutex_);
  auto it = tables_.find(table);
  return it == tables_.end() ? nullptr : it->second.get();
}

void DataStore::put(const TableName& table, const RowKey& row, const ColumnKey& column,
                    Timestamp ts, double value) {
  TableEntry& entry = entry_for(table);
  std::optional<double> previous;
  {
    std::lock_guard lock(entry.mutex);
    previous = entry.table.put(row, column, ts, value);
  }
  Mutation m;
  m.kind = MutationKind::kPut;
  m.table = table;
  m.row = row;
  m.column = column;
  m.timestamp = ts;
  m.new_value = value;
  m.old_value = previous.value_or(0.0);
  m.had_old_value = previous.has_value();
  notify(m);
}

void DataStore::erase(const TableName& table, const RowKey& row, const ColumnKey& column,
                      Timestamp ts) {
  const TableEntry* entry = find_entry(table);
  if (entry == nullptr) return;
  std::optional<double> removed;
  {
    auto& mutable_entry = const_cast<TableEntry&>(*entry);
    std::lock_guard lock(mutable_entry.mutex);
    removed = mutable_entry.table.erase(row, column);
  }
  if (!removed) return;
  Mutation m;
  m.kind = MutationKind::kDelete;
  m.table = table;
  m.row = row;
  m.column = column;
  m.timestamp = ts;
  m.old_value = *removed;
  m.had_old_value = true;
  notify(m);
}

std::optional<double> DataStore::get(const TableName& table, const RowKey& row,
                                     const ColumnKey& column) const {
  const TableEntry* entry = find_entry(table);
  if (entry == nullptr) return std::nullopt;
  std::lock_guard lock(entry->mutex);
  return entry->table.get(row, column);
}

std::optional<double> DataStore::get_previous(const TableName& table, const RowKey& row,
                                              const ColumnKey& column) const {
  const TableEntry* entry = find_entry(table);
  if (entry == nullptr) return std::nullopt;
  std::lock_guard lock(entry->mutex);
  return entry->table.get_previous(row, column);
}

void DataStore::scan_container(
    const ContainerRef& container,
    const std::function<void(const RowKey&, const ColumnKey&, double)>& visit) const {
  const TableEntry* entry = find_entry(container.table());
  if (entry == nullptr) return;
  std::lock_guard lock(entry->mutex);
  entry->table.scan([&](const RowKey& row, const ColumnKey& column, double value) {
    if (container.matches(container.table(), row, column)) visit(row, column, value);
  });
}

std::map<std::string, double> DataStore::snapshot(const ContainerRef& container) const {
  std::map<std::string, double> out;
  scan_container(container, [&out](const RowKey& row, const ColumnKey& column, double value) {
    out.emplace(row + '\x1f' + column, value);
  });
  return out;
}

std::size_t DataStore::cell_count(const TableName& table) const {
  const TableEntry* entry = find_entry(table);
  if (entry == nullptr) return 0;
  std::lock_guard lock(entry->mutex);
  return entry->table.cell_count();
}

std::size_t DataStore::container_cell_count(const ContainerRef& container) const {
  std::size_t n = 0;
  scan_container(container, [&n](const RowKey&, const ColumnKey&, double) { ++n; });
  return n;
}

bool DataStore::has_table(const TableName& table) const { return find_entry(table) != nullptr; }

std::vector<TableName> DataStore::table_names() const {
  std::lock_guard lock(tables_mutex_);
  std::vector<TableName> out;
  out.reserve(tables_.size());
  for (const auto& [name, _] : tables_) out.push_back(name);
  return out;
}

void DataStore::drop_table(const TableName& table) {
  std::lock_guard lock(tables_mutex_);
  tables_.erase(table);
}

void DataStore::clear() {
  std::lock_guard lock(tables_mutex_);
  tables_.clear();
}

std::size_t DataStore::subscribe(MutationObserver observer) {
  SF_CHECK(static_cast<bool>(observer), "observer must be callable");
  std::lock_guard lock(observers_mutex_);
  const std::size_t token = next_token_++;
  observers_.emplace_back(token, std::move(observer));
  return token;
}

void DataStore::unsubscribe(std::size_t token) {
  std::lock_guard lock(observers_mutex_);
  std::erase_if(observers_, [token](const auto& p) { return p.first == token; });
}

void DataStore::notify(const Mutation& m) const {
  // Copy the observer list so observers may unsubscribe others concurrently.
  std::vector<MutationObserver> copy;
  {
    std::lock_guard lock(observers_mutex_);
    copy.reserve(observers_.size());
    for (const auto& [_, obs] : observers_) copy.push_back(obs);
  }
  for (const auto& obs : copy) obs(m);
}

}  // namespace smartflux::ds
