#include "datastore/datastore.h"

#include <chrono>

#include "common/error.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace smartflux::ds {

/// Handles resolved at attach time. Point ops (get/put/erase) always bump a
/// counter; latency observation is sampled 1-in-2^shift so the per-cell hot
/// path stays two relaxed atomics in the common case. Scans and batches are
/// rare and heavy: always timed, and scans traced when a tracer is attached.
struct DataStore::StoreObs {
  obs::Counter* gets = nullptr;
  obs::Counter* puts = nullptr;
  obs::Counter* batches = nullptr;
  obs::Counter* erases = nullptr;
  obs::Counter* scans = nullptr;
  obs::Histogram* get_latency = nullptr;
  obs::Histogram* put_latency = nullptr;
  obs::Histogram* batch_latency = nullptr;
  obs::Histogram* scan_latency = nullptr;
  obs::Tracer* tracer = nullptr;
  std::uint64_t sample_mask = 63;

  StoreObs(obs::MetricsRegistry& registry, obs::Tracer* tr, unsigned shift) : tracer(tr) {
    sample_mask = (std::uint64_t{1} << shift) - 1;
    auto op_counter = [&registry](const char* op) {
      return &registry.counter("sf_ds_ops_total", {{"op", op}},
                               "Datastore operations by kind");
    };
    auto op_latency = [&registry](const char* op) {
      return &registry.histogram("sf_ds_op_duration_seconds", obs::duration_buckets(),
                                 {{"op", op}},
                                 "Datastore op latency (point ops sampled 1-in-2^shift)");
    };
    gets = op_counter("get");
    puts = op_counter("put");
    batches = op_counter("put_batch");
    erases = op_counter("erase");
    scans = op_counter("scan");
    get_latency = op_latency("get");
    put_latency = op_latency("put");
    batch_latency = op_latency("put_batch");
    scan_latency = op_latency("scan");
  }

  /// Bumps the op counter and decides latency sampling off its pre-increment
  /// value — one atomic per point op, and each op kind samples its own
  /// stream (every 2^shift-th get, every 2^shift-th put, ...).
  bool count_and_sample(obs::Counter& op) noexcept {
    return (op.fetch_inc() & sample_mask) == 0;
  }

  static double seconds_since(std::chrono::steady_clock::time_point t0) noexcept {
    return static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now() - t0)
                                   .count()) *
           1e-9;
  }
};

namespace {
/// Registry-generation stamps are unique across all DataStore instances and
/// never repeat, so a per-thread cache entry can never validate against a
/// different store that happens to reuse the same address.
std::uint64_t next_registry_gen() noexcept {
  static std::atomic<std::uint64_t> gen{1};
  return gen.fetch_add(1, std::memory_order_relaxed);
}
}  // namespace

DataStore::DataStore(std::size_t max_versions) : max_versions_(max_versions) {
  SF_CHECK(max_versions >= 1, "DataStore must retain at least one version");
  tables_.store(std::make_shared<const TableMap>(), std::memory_order_release);
  registry_gen_.store(next_registry_gen(), std::memory_order_release);
  observers_.store(std::make_shared<const ObserverList>(), std::memory_order_release);
}

DataStore::~DataStore() = default;

void DataStore::set_instrumentation(obs::MetricsRegistry* registry, obs::Tracer* tracer,
                                    unsigned latency_sample_shift) {
  SF_CHECK(latency_sample_shift < 32, "latency_sample_shift out of range");
  if (registry == nullptr) {
    obs_.reset();
    return;
  }
  obs_ = std::make_unique<StoreObs>(*registry, tracer, latency_sample_shift);
}

std::shared_ptr<DataStore::TableEntry> DataStore::find_entry(const TableName& table) const {
  // Per-thread registry cache: while the registry is unchanged (by far the
  // common case — tables are created once and live forever), a point op pays
  // one lock-free uint64 load instead of the refcounted atomic-shared_ptr
  // load. The gen is read *before* the map, so a cached map can never be
  // older than the gen it is stamped with; a concurrent registry change just
  // invalidates the entry on the next op. The cached shared_ptr keeps the map
  // snapshot alive until this thread touches another store or generation,
  // which is safe (snapshots are immutable) and bounded (one map per thread).
  struct Cache {
    const DataStore* store = nullptr;
    std::uint64_t gen = 0;
    std::shared_ptr<const TableMap> map;
  };
  static thread_local Cache cache;
  const auto gen = registry_gen_.load(std::memory_order_acquire);
  if (cache.store != this || cache.gen != gen) {
    cache.map = tables_.load(std::memory_order_acquire);
    cache.store = this;
    cache.gen = gen;
  }
  const auto it = cache.map->find(table);
  return it == cache.map->end() ? nullptr : it->second;
}

std::shared_ptr<DataStore::TableEntry> DataStore::entry_for(const TableName& table) {
  if (auto entry = find_entry(table)) return entry;
  std::lock_guard lock(registry_mutex_);
  // Re-check under the writer lock: another thread may have created it
  // between our lock-free lookup and here.
  auto snap = tables_.load(std::memory_order_acquire);
  if (const auto it = snap->find(table); it != snap->end()) return it->second;
  auto next = std::make_shared<TableMap>(*snap);
  auto entry = std::make_shared<TableEntry>(max_versions_);
  next->emplace(table, entry);
  tables_.store(std::shared_ptr<const TableMap>(std::move(next)), std::memory_order_release);
  registry_gen_.store(next_registry_gen(), std::memory_order_release);
  return entry;
}

void DataStore::put(const TableName& table, const RowKey& row, const ColumnKey& column,
                    Timestamp ts, double value) {
  std::chrono::steady_clock::time_point t0;
  bool timed = false;
  if (obs_) {
    timed = obs_->count_and_sample(*obs_->puts);
    if (timed) t0 = std::chrono::steady_clock::now();
  }
  const auto entry = entry_for(table);
  std::optional<double> previous;
  {
    std::unique_lock lock(entry->mutex);
    previous = entry->table.put(row, column, ts, value);
  }
  if (observer_count_.load(std::memory_order_acquire) != 0) {
    const auto observers = observer_snapshot();
    Mutation m;
    m.kind = MutationKind::kPut;
    m.table = table;
    m.row = row;
    m.column = column;
    m.timestamp = ts;
    m.new_value = value;
    m.old_value = previous.value_or(0.0);
    m.had_old_value = previous.has_value();
    for (const auto& [_, observe] : *observers) observe(m);
  }
  if (timed) obs_->put_latency->observe(StoreObs::seconds_since(t0));
}

void DataStore::put_batch(const TableName& table, Timestamp ts, std::span<const PutOp> ops) {
  if (ops.empty()) return;
  std::chrono::steady_clock::time_point t0;
  if (obs_) {
    obs_->puts->inc(ops.size());
    obs_->batches->inc();
    t0 = std::chrono::steady_clock::now();
  }
  const auto entry = entry_for(table);
  std::shared_ptr<const ObserverList> observers;
  if (observer_count_.load(std::memory_order_acquire) != 0) observers = observer_snapshot();
  const bool want_mutations = observers != nullptr && !observers->empty();
  std::vector<std::pair<double, bool>> previous;  // (old value, had old) per op
  if (want_mutations) previous.reserve(ops.size());
  {
    std::unique_lock lock(entry->mutex);
    for (const PutOp& op : ops) {
      const auto prev = entry->table.put(op.row, op.column, ts, op.value);
      if (want_mutations) previous.emplace_back(prev.value_or(0.0), prev.has_value());
    }
  }
  if (want_mutations) {
    Mutation m;
    m.kind = MutationKind::kPut;
    m.table = table;
    m.timestamp = ts;
    for (std::size_t i = 0; i < ops.size(); ++i) {
      m.row.assign(ops[i].row);
      m.column.assign(ops[i].column);
      m.new_value = ops[i].value;
      m.old_value = previous[i].first;
      m.had_old_value = previous[i].second;
      for (const auto& [_, observe] : *observers) observe(m);
    }
  }
  if (obs_) obs_->batch_latency->observe(StoreObs::seconds_since(t0));
}

void DataStore::erase(const TableName& table, const RowKey& row, const ColumnKey& column,
                      Timestamp ts) {
  if (obs_) obs_->erases->inc();
  const auto entry = find_entry(table);
  if (entry == nullptr) return;
  std::optional<double> removed;
  {
    std::unique_lock lock(entry->mutex);
    removed = entry->table.erase(row, column);
  }
  if (!removed) return;
  if (observer_count_.load(std::memory_order_acquire) == 0) return;
  const auto observers = observer_snapshot();
  if (observers->empty()) return;
  Mutation m;
  m.kind = MutationKind::kDelete;
  m.table = table;
  m.row = row;
  m.column = column;
  m.timestamp = ts;
  m.old_value = *removed;
  m.had_old_value = true;
  for (const auto& [_, observe] : *observers) observe(m);
}

std::optional<double> DataStore::get(const TableName& table, const RowKey& row,
                                     const ColumnKey& column) const {
  std::chrono::steady_clock::time_point t0;
  bool timed = false;
  if (obs_) {
    timed = obs_->count_and_sample(*obs_->gets);
    if (timed) t0 = std::chrono::steady_clock::now();
  }
  const auto entry = find_entry(table);
  std::optional<double> out;
  if (entry != nullptr) {
    std::shared_lock lock(entry->mutex);
    out = entry->table.get(row, column);
  }
  if (timed) obs_->get_latency->observe(StoreObs::seconds_since(t0));
  return out;
}

std::optional<double> DataStore::get_previous(const TableName& table, const RowKey& row,
                                              const ColumnKey& column) const {
  // Folded into the "get" op label: same access shape, older version.
  if (obs_) obs_->gets->inc();
  const auto entry = find_entry(table);
  if (entry == nullptr) return std::nullopt;
  std::shared_lock lock(entry->mutex);
  return entry->table.get_previous(row, column);
}

void DataStore::scan_container(
    const ContainerRef& container,
    const std::function<void(const RowKey&, const ColumnKey&, double)>& visit) const {
  std::chrono::steady_clock::time_point t0;
  if (obs_) {
    obs_->scans->inc();
    t0 = std::chrono::steady_clock::now();
  }
  const auto entry = find_entry(container.table());
  if (entry != nullptr) {
    const bool unfiltered = !container.has_column() && !container.has_row_prefix();
    std::shared_lock lock(entry->mutex);
    entry->table.scan_cells([&](const Table::CellView& cv) {
      if (unfiltered || container.matches_cell(*cv.row, *cv.col)) {
        visit(*cv.row, *cv.col, cv.value);
      }
    });
  }
  if (obs_) {
    obs_->scan_latency->observe(StoreObs::seconds_since(t0));
    if (obs_->tracer != nullptr) {
      obs_->tracer->record("ds_scan:" + container.table(), "ds", 0, t0,
                           std::chrono::steady_clock::now() - t0);
    }
  }
}

FlatSnapshot DataStore::snapshot_flat(const ContainerRef& container) const {
  std::chrono::steady_clock::time_point t0;
  if (obs_) {
    obs_->scans->inc();
    t0 = std::chrono::steady_clock::now();
  }
  const auto entry = find_entry(container.table());
  FlatSnapshot out;
  if (entry != nullptr) {
    const bool unfiltered = !container.has_column() && !container.has_row_prefix();
    std::vector<FlatEntry> entries;
    {
      std::shared_lock lock(entry->mutex);
      entries.reserve(entry->table.cell_count());
      entry->table.scan_cells([&](const Table::CellView& cv) {
        if (unfiltered || container.matches_cell(*cv.row, *cv.col)) {
          entries.push_back(FlatEntry{cv.id, cv.row, cv.col, cv.value});
        }
      });
    }
    out = FlatSnapshot(entry, &entry->table, std::move(entries));
  }
  if (obs_) {
    obs_->scan_latency->observe(StoreObs::seconds_since(t0));
    if (obs_->tracer != nullptr) {
      obs_->tracer->record("ds_scan:" + container.table(), "ds", 0, t0,
                           std::chrono::steady_clock::now() - t0);
    }
  }
  return out;
}

std::map<std::string, double> DataStore::snapshot(const ContainerRef& container) const {
  std::map<std::string, double> out;
  scan_container(container, [&out](const RowKey& row, const ColumnKey& column, double value) {
    std::string key;
    key.reserve(row.size() + 1 + column.size());
    key.append(row).push_back('\x1f');
    key.append(column);
    // Scan order is (row, column) order, which matches the concatenated-key
    // order for ordinary keys, so the end hint is almost always right.
    out.emplace_hint(out.end(), std::move(key), value);
  });
  return out;
}

std::size_t DataStore::cell_count(const TableName& table) const {
  const auto entry = find_entry(table);
  if (entry == nullptr) return 0;
  std::shared_lock lock(entry->mutex);
  return entry->table.cell_count();
}

std::size_t DataStore::container_cell_count(const ContainerRef& container) const {
  std::size_t n = 0;
  scan_container(container, [&n](const RowKey&, const ColumnKey&, double) { ++n; });
  return n;
}

bool DataStore::has_table(const TableName& table) const { return find_entry(table) != nullptr; }

std::vector<TableName> DataStore::table_names() const {
  const auto snap = tables_.load(std::memory_order_acquire);
  std::vector<TableName> out;
  out.reserve(snap->size());
  for (const auto& [name, _] : *snap) out.push_back(name);
  return out;
}

void DataStore::drop_table(const TableName& table) {
  std::lock_guard lock(registry_mutex_);
  const auto snap = tables_.load(std::memory_order_acquire);
  if (!snap->contains(table)) return;
  auto next = std::make_shared<TableMap>(*snap);
  next->erase(table);
  tables_.store(std::shared_ptr<const TableMap>(std::move(next)), std::memory_order_release);
  registry_gen_.store(next_registry_gen(), std::memory_order_release);
}

void DataStore::clear() {
  std::lock_guard lock(registry_mutex_);
  tables_.store(std::make_shared<const TableMap>(), std::memory_order_release);
  registry_gen_.store(next_registry_gen(), std::memory_order_release);
}

std::size_t DataStore::subscribe(MutationObserver observer) {
  SF_CHECK(static_cast<bool>(observer), "observer must be callable");
  std::lock_guard lock(observers_mutex_);
  const std::size_t token = next_token_++;
  auto next = std::make_shared<ObserverList>(*observers_.load(std::memory_order_acquire));
  next->emplace_back(token, std::move(observer));
  const std::size_t count = next->size();
  observers_.store(std::shared_ptr<const ObserverList>(std::move(next)),
                   std::memory_order_release);
  observer_count_.store(count, std::memory_order_release);
  return token;
}

void DataStore::unsubscribe(std::size_t token) {
  std::lock_guard lock(observers_mutex_);
  auto next = std::make_shared<ObserverList>(*observers_.load(std::memory_order_acquire));
  std::erase_if(*next, [token](const auto& p) { return p.first == token; });
  const std::size_t count = next->size();
  observers_.store(std::shared_ptr<const ObserverList>(std::move(next)),
                   std::memory_order_release);
  observer_count_.store(count, std::memory_order_release);
}

}  // namespace smartflux::ds
