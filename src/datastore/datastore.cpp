#include "datastore/datastore.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <shared_mutex>

#include "common/error.h"
#include "common/logging.h"
#include "datastore/checkpoint.h"
#include "datastore/wal.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace smartflux::ds {

const char* wal_flush_policy_name(WalFlushPolicy policy) noexcept {
  switch (policy) {
    case WalFlushPolicy::kEveryOp: return "every_op";
    case WalFlushPolicy::kEveryBatch: return "every_batch";
    case WalFlushPolicy::kEveryWave: return "every_wave";
  }
  return "?";
}

/// WAL writer + checkpoint bookkeeping. `wal_mutex` serializes appends and
/// is a leaf lock: always acquired after the mutating thread's table lock
/// (or the registry mutex for structural records), so WAL order equals apply
/// order per table; across tables any serialization is a valid linearization.
struct DataStore::Durability {
  std::string dir;
  DurabilityOptions options;
  std::mutex wal_mutex;
  std::unique_ptr<WalWriter> writer;           ///< guarded by wal_mutex
  std::uint64_t segment_seq = 1;               ///< guarded by wal_mutex
  std::optional<Timestamp> committed_wave;     ///< guarded by wal_mutex
  std::size_t waves_since_checkpoint = 0;      ///< guarded by wal_mutex

  // Metric handles (null = no registry attached). Wired from
  // set_instrumentation's registry, falling back to options.metrics.
  WalObs wal_obs;
  obs::Counter* wave_commits = nullptr;
  obs::Counter* checkpoints = nullptr;
  obs::Histogram* checkpoint_duration = nullptr;

  std::string segment_path(std::uint64_t seq) const {
    return (std::filesystem::path(dir) / wal_segment_name(seq)).string();
  }
  std::string checkpoint_path(std::uint64_t cut) const {
    return (std::filesystem::path(dir) / checkpoint_file_name(cut)).string();
  }

  void wire_metrics(obs::MetricsRegistry& reg) {
    wal_obs.records = &reg.counter("sf_ds_wal_records_total", {}, "WAL records appended");
    wal_obs.bytes =
        &reg.counter("sf_ds_wal_bytes_total", {}, "WAL bytes appended (incl. framing)");
    wal_obs.syncs = &reg.counter("sf_ds_wal_syncs_total", {}, "WAL fsync calls");
    wal_obs.fsync_duration =
        &reg.histogram("sf_ds_wal_fsync_duration_seconds", obs::duration_buckets(), {},
                       "WAL fsync latency");
    wave_commits =
        &reg.counter("sf_ds_wave_commits_total", {}, "Wave-commit records stamped");
    checkpoints = &reg.counter("sf_ds_checkpoints_total", {}, "Checkpoints written");
    checkpoint_duration =
        &reg.histogram("sf_ds_checkpoint_duration_seconds", obs::duration_buckets(), {},
                       "Checkpoint capture + write duration");
    if (writer) writer->set_obs(&wal_obs);
  }

  void unwire_metrics() {
    wal_obs = WalObs{};
    wave_commits = nullptr;
    checkpoints = nullptr;
    checkpoint_duration = nullptr;
    if (writer) writer->set_obs(nullptr);
  }
};

/// Handles resolved at attach time. Point ops (get/put/erase) always bump a
/// counter; latency observation is sampled 1-in-2^shift so the per-cell hot
/// path stays two relaxed atomics in the common case. Scans and batches are
/// rare and heavy: always timed, and scans traced when a tracer is attached.
struct DataStore::StoreObs {
  obs::Counter* gets = nullptr;
  obs::Counter* puts = nullptr;
  obs::Counter* batches = nullptr;
  obs::Counter* erases = nullptr;
  obs::Counter* scans = nullptr;
  obs::Histogram* get_latency = nullptr;
  obs::Histogram* put_latency = nullptr;
  obs::Histogram* batch_latency = nullptr;
  obs::Histogram* scan_latency = nullptr;
  obs::Tracer* tracer = nullptr;
  obs::MetricsRegistry* registry = nullptr;  ///< for late durability wiring
  std::uint64_t sample_mask = 63;

  StoreObs(obs::MetricsRegistry& registry, obs::Tracer* tr, unsigned shift)
      : tracer(tr), registry(&registry) {
    sample_mask = (std::uint64_t{1} << shift) - 1;
    auto op_counter = [&registry](const char* op) {
      return &registry.counter("sf_ds_ops_total", {{"op", op}},
                               "Datastore operations by kind");
    };
    auto op_latency = [&registry](const char* op) {
      return &registry.histogram("sf_ds_op_duration_seconds", obs::duration_buckets(),
                                 {{"op", op}},
                                 "Datastore op latency (point ops sampled 1-in-2^shift)");
    };
    gets = op_counter("get");
    puts = op_counter("put");
    batches = op_counter("put_batch");
    erases = op_counter("erase");
    scans = op_counter("scan");
    get_latency = op_latency("get");
    put_latency = op_latency("put");
    batch_latency = op_latency("put_batch");
    scan_latency = op_latency("scan");
  }

  /// Bumps the op counter and decides latency sampling off its pre-increment
  /// value — one atomic per point op, and each op kind samples its own
  /// stream (every 2^shift-th get, every 2^shift-th put, ...).
  bool count_and_sample(obs::Counter& op) noexcept {
    return (op.fetch_inc() & sample_mask) == 0;
  }

  static double seconds_since(std::chrono::steady_clock::time_point t0) noexcept {
    return static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now() - t0)
                                   .count()) *
           1e-9;
  }
};

namespace {
/// Registry-generation stamps are unique across all DataStore instances and
/// never repeat, so a per-thread cache entry can never validate against a
/// different store that happens to reuse the same address.
std::uint64_t next_registry_gen() noexcept {
  static std::atomic<std::uint64_t> gen{1};
  return gen.fetch_add(1, std::memory_order_relaxed);
}
}  // namespace

DataStore::DataStore(std::size_t max_versions) : max_versions_(max_versions) {
  SF_CHECK(max_versions >= 1, "DataStore must retain at least one version");
  tables_.store(std::make_shared<const TableMap>(), std::memory_order_release);
  registry_gen_.store(next_registry_gen(), std::memory_order_release);
  observers_.store(std::make_shared<const ObserverList>(), std::memory_order_release);
}

DataStore::~DataStore() = default;

void DataStore::set_instrumentation(obs::MetricsRegistry* registry, obs::Tracer* tracer,
                                    unsigned latency_sample_shift) {
  SF_CHECK(latency_sample_shift < 32, "latency_sample_shift out of range");
  if (registry == nullptr) {
    obs_.reset();
    if (durability_) {
      std::lock_guard lock(durability_->wal_mutex);
      durability_->unwire_metrics();
    }
    return;
  }
  obs_ = std::make_unique<StoreObs>(*registry, tracer, latency_sample_shift);
  if (durability_) {
    std::lock_guard lock(durability_->wal_mutex);
    durability_->wire_metrics(*registry);
  }
}

std::shared_ptr<DataStore::TableEntry> DataStore::find_entry(const TableName& table) const {
  // Per-thread registry cache: while the registry is unchanged (by far the
  // common case — tables are created once and live forever), a point op pays
  // one lock-free uint64 load instead of the refcounted atomic-shared_ptr
  // load. The gen is read *before* the map, so a cached map can never be
  // older than the gen it is stamped with; a concurrent registry change just
  // invalidates the entry on the next op. The cached shared_ptr keeps the map
  // snapshot alive until this thread touches another store or generation,
  // which is safe (snapshots are immutable) and bounded (one map per thread).
  struct Cache {
    const DataStore* store = nullptr;
    std::uint64_t gen = 0;
    std::shared_ptr<const TableMap> map;
  };
  static thread_local Cache cache;
  const auto gen = registry_gen_.load(std::memory_order_acquire);
  if (cache.store != this || cache.gen != gen) {
    cache.map = tables_.load(std::memory_order_acquire);
    cache.store = this;
    cache.gen = gen;
  }
  const auto it = cache.map->find(table);
  return it == cache.map->end() ? nullptr : it->second;
}

std::shared_ptr<DataStore::TableEntry> DataStore::entry_for(const TableName& table) {
  if (auto entry = find_entry(table)) return entry;
  std::lock_guard lock(registry_mutex_);
  // Re-check under the writer lock: another thread may have created it
  // between our lock-free lookup and here.
  auto snap = tables_.load(std::memory_order_acquire);
  if (const auto it = snap->find(table); it != snap->end()) return it->second;
  auto next = std::make_shared<TableMap>(*snap);
  auto entry = std::make_shared<TableEntry>(max_versions_);
  next->emplace(table, entry);
  if (durability_) {
    // Logged before the new registry snapshot is published, so the create
    // record precedes every put record for this table in the log. If the
    // append throws, the table was never created.
    std::lock_guard wal_lock(durability_->wal_mutex);
    durability_->writer->append_create_table(table);
  }
  tables_.store(std::shared_ptr<const TableMap>(std::move(next)), std::memory_order_release);
  registry_gen_.store(next_registry_gen(), std::memory_order_release);
  return entry;
}

void DataStore::put(const TableName& table, const RowKey& row, const ColumnKey& column,
                    Timestamp ts, double value) {
  std::chrono::steady_clock::time_point t0;
  bool timed = false;
  if (obs_) {
    timed = obs_->count_and_sample(*obs_->puts);
    if (timed) t0 = std::chrono::steady_clock::now();
  }
  const auto entry = entry_for(table);
  std::optional<double> previous;
  {
    std::unique_lock lock(entry->mutex);
    previous = entry->table.put(row, column, ts, value);
    if (durability_) {
      // Log under the table lock so WAL order matches apply order for this
      // table; the WAL mutex is a leaf lock (see Durability).
      std::lock_guard wal_lock(durability_->wal_mutex);
      durability_->writer->append_put(table, row, column, ts, value);
    }
  }
  if (observer_count_.load(std::memory_order_acquire) != 0) {
    const auto observers = observer_snapshot();
    Mutation m;
    m.kind = MutationKind::kPut;
    m.table = table;
    m.row = row;
    m.column = column;
    m.timestamp = ts;
    m.new_value = value;
    m.old_value = previous.value_or(0.0);
    m.had_old_value = previous.has_value();
    for (const auto& [_, observe] : *observers) observe(m);
  }
  if (timed) obs_->put_latency->observe(StoreObs::seconds_since(t0));
}

void DataStore::put_batch(const TableName& table, Timestamp ts, std::span<const PutOp> ops) {
  if (ops.empty()) return;
  std::chrono::steady_clock::time_point t0;
  if (obs_) {
    obs_->puts->inc(ops.size());
    obs_->batches->inc();
    t0 = std::chrono::steady_clock::now();
  }
  const auto entry = entry_for(table);
  std::shared_ptr<const ObserverList> observers;
  if (observer_count_.load(std::memory_order_acquire) != 0) observers = observer_snapshot();
  const bool want_mutations = observers != nullptr && !observers->empty();
  std::vector<std::pair<double, bool>> previous;  // (old value, had old) per op
  if (want_mutations) previous.reserve(ops.size());
  {
    std::unique_lock lock(entry->mutex);
    std::size_t applied = 0;
    try {
      for (const PutOp& op : ops) {
        const auto prev = entry->table.put(op.row, op.column, ts, op.value);
        ++applied;
        if (want_mutations) previous.emplace_back(prev.value_or(0.0), prev.has_value());
      }
    } catch (...) {
      // A mid-batch failure (timestamp regression) leaves a prefix applied;
      // log exactly that prefix so replay reproduces the in-memory state.
      if (durability_ && applied > 0) {
        std::lock_guard wal_lock(durability_->wal_mutex);
        durability_->writer->append_batch(table, ts, ops.first(applied));
      }
      throw;
    }
    if (durability_) {
      std::lock_guard wal_lock(durability_->wal_mutex);
      durability_->writer->append_batch(table, ts, ops);
    }
  }
  if (want_mutations) {
    Mutation m;
    m.kind = MutationKind::kPut;
    m.table = table;
    m.timestamp = ts;
    for (std::size_t i = 0; i < ops.size(); ++i) {
      m.row.assign(ops[i].row);
      m.column.assign(ops[i].column);
      m.new_value = ops[i].value;
      m.old_value = previous[i].first;
      m.had_old_value = previous[i].second;
      for (const auto& [_, observe] : *observers) observe(m);
    }
  }
  if (obs_) obs_->batch_latency->observe(StoreObs::seconds_since(t0));
}

void DataStore::erase(const TableName& table, const RowKey& row, const ColumnKey& column,
                      Timestamp ts) {
  if (obs_) obs_->erases->inc();
  const auto entry = find_entry(table);
  if (entry == nullptr) return;
  std::optional<double> removed;
  {
    std::unique_lock lock(entry->mutex);
    removed = entry->table.erase(row, column);
    if (removed && durability_) {
      // Erasing an absent cell is not a mutation, so it is not logged.
      std::lock_guard wal_lock(durability_->wal_mutex);
      durability_->writer->append_erase(table, row, column, ts);
    }
  }
  if (!removed) return;
  if (observer_count_.load(std::memory_order_acquire) == 0) return;
  const auto observers = observer_snapshot();
  if (observers->empty()) return;
  Mutation m;
  m.kind = MutationKind::kDelete;
  m.table = table;
  m.row = row;
  m.column = column;
  m.timestamp = ts;
  m.old_value = *removed;
  m.had_old_value = true;
  for (const auto& [_, observe] : *observers) observe(m);
}

std::optional<double> DataStore::get(const TableName& table, const RowKey& row,
                                     const ColumnKey& column) const {
  std::chrono::steady_clock::time_point t0;
  bool timed = false;
  if (obs_) {
    timed = obs_->count_and_sample(*obs_->gets);
    if (timed) t0 = std::chrono::steady_clock::now();
  }
  const auto entry = find_entry(table);
  std::optional<double> out;
  if (entry != nullptr) {
    std::shared_lock lock(entry->mutex);
    out = entry->table.get(row, column);
  }
  if (timed) obs_->get_latency->observe(StoreObs::seconds_since(t0));
  return out;
}

std::optional<double> DataStore::get_previous(const TableName& table, const RowKey& row,
                                              const ColumnKey& column) const {
  // Folded into the "get" op label: same access shape, older version.
  if (obs_) obs_->gets->inc();
  const auto entry = find_entry(table);
  if (entry == nullptr) return std::nullopt;
  std::shared_lock lock(entry->mutex);
  return entry->table.get_previous(row, column);
}

void DataStore::scan_container(
    const ContainerRef& container,
    const std::function<void(const RowKey&, const ColumnKey&, double)>& visit) const {
  std::chrono::steady_clock::time_point t0;
  if (obs_) {
    obs_->scans->inc();
    t0 = std::chrono::steady_clock::now();
  }
  const auto entry = find_entry(container.table());
  if (entry != nullptr) {
    const bool unfiltered = !container.has_column() && !container.has_row_prefix();
    std::shared_lock lock(entry->mutex);
    entry->table.scan_cells([&](const Table::CellView& cv) {
      if (unfiltered || container.matches_cell(*cv.row, *cv.col)) {
        visit(*cv.row, *cv.col, cv.value);
      }
    });
  }
  if (obs_) {
    obs_->scan_latency->observe(StoreObs::seconds_since(t0));
    if (obs_->tracer != nullptr) {
      obs_->tracer->record("ds_scan:" + container.table(), "ds", 0, t0,
                           std::chrono::steady_clock::now() - t0);
    }
  }
}

FlatSnapshot DataStore::snapshot_flat(const ContainerRef& container) const {
  std::chrono::steady_clock::time_point t0;
  if (obs_) {
    obs_->scans->inc();
    t0 = std::chrono::steady_clock::now();
  }
  const auto entry = find_entry(container.table());
  FlatSnapshot out;
  if (entry != nullptr) {
    const bool unfiltered = !container.has_column() && !container.has_row_prefix();
    std::vector<FlatEntry> entries;
    {
      std::shared_lock lock(entry->mutex);
      entries.reserve(entry->table.cell_count());
      entry->table.scan_cells([&](const Table::CellView& cv) {
        if (unfiltered || container.matches_cell(*cv.row, *cv.col)) {
          entries.push_back(FlatEntry{cv.id, cv.row, cv.col, cv.value});
        }
      });
    }
    out = FlatSnapshot(entry, &entry->table, std::move(entries));
  }
  if (obs_) {
    obs_->scan_latency->observe(StoreObs::seconds_since(t0));
    if (obs_->tracer != nullptr) {
      obs_->tracer->record("ds_scan:" + container.table(), "ds", 0, t0,
                           std::chrono::steady_clock::now() - t0);
    }
  }
  return out;
}

std::map<std::string, double> DataStore::snapshot(const ContainerRef& container) const {
  std::map<std::string, double> out;
  scan_container(container, [&out](const RowKey& row, const ColumnKey& column, double value) {
    std::string key;
    key.reserve(row.size() + 1 + column.size());
    key.append(row).push_back('\x1f');
    key.append(column);
    // Scan order is (row, column) order, which matches the concatenated-key
    // order for ordinary keys, so the end hint is almost always right.
    out.emplace_hint(out.end(), std::move(key), value);
  });
  return out;
}

std::size_t DataStore::cell_count(const TableName& table) const {
  const auto entry = find_entry(table);
  if (entry == nullptr) return 0;
  std::shared_lock lock(entry->mutex);
  return entry->table.cell_count();
}

std::size_t DataStore::container_cell_count(const ContainerRef& container) const {
  std::size_t n = 0;
  scan_container(container, [&n](const RowKey&, const ColumnKey&, double) { ++n; });
  return n;
}

bool DataStore::has_table(const TableName& table) const { return find_entry(table) != nullptr; }

std::vector<TableName> DataStore::table_names() const {
  const auto snap = tables_.load(std::memory_order_acquire);
  std::vector<TableName> out;
  out.reserve(snap->size());
  for (const auto& [name, _] : *snap) out.push_back(name);
  return out;
}

void DataStore::drop_table(const TableName& table) {
  std::lock_guard lock(registry_mutex_);
  const auto snap = tables_.load(std::memory_order_acquire);
  if (!snap->contains(table)) return;
  auto next = std::make_shared<TableMap>(*snap);
  next->erase(table);
  if (durability_) {
    std::lock_guard wal_lock(durability_->wal_mutex);
    durability_->writer->append_drop_table(table);
  }
  tables_.store(std::shared_ptr<const TableMap>(std::move(next)), std::memory_order_release);
  registry_gen_.store(next_registry_gen(), std::memory_order_release);
}

void DataStore::clear() {
  std::lock_guard lock(registry_mutex_);
  if (durability_) {
    std::lock_guard wal_lock(durability_->wal_mutex);
    durability_->writer->append_clear();
  }
  tables_.store(std::make_shared<const TableMap>(), std::memory_order_release);
  registry_gen_.store(next_registry_gen(), std::memory_order_release);
}

std::vector<CellVersion> DataStore::cell_versions(const TableName& table, const RowKey& row,
                                                  const ColumnKey& column) const {
  const auto entry = find_entry(table);
  if (entry == nullptr) return {};
  std::shared_lock lock(entry->mutex);
  return entry->table.versions(row, column);
}

namespace {

/// WAL segments and checkpoint cuts found in a data dir, each ascending.
struct DirScan {
  std::vector<std::uint64_t> segments;
  std::vector<std::uint64_t> checkpoints;
};

DirScan scan_data_dir(const std::string& dir, bool remove_tmp) {
  DirScan out;
  std::error_code ec;
  for (const auto& dirent : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = dirent.path().filename().string();
    if (const auto seq = parse_wal_segment_name(name)) {
      out.segments.push_back(*seq);
    } else if (const auto cut = parse_checkpoint_file_name(name)) {
      out.checkpoints.push_back(*cut);
    } else if (remove_tmp && name.ends_with(".tmp")) {
      // Leftover from a crash mid-checkpoint-write: never valid, never
      // referenced.
      std::error_code rm_ec;
      std::filesystem::remove(dirent.path(), rm_ec);
    }
  }
  if (ec) throw Error("cannot scan data dir '" + dir + "': " + ec.message());
  std::sort(out.segments.begin(), out.segments.end());
  std::sort(out.checkpoints.begin(), out.checkpoints.end());
  return out;
}

/// Best-effort deletion of everything a durable checkpoint at `cut`
/// supersedes: WAL segments <= cut and older checkpoints.
void remove_superseded(const std::string& dir, std::uint64_t cut) {
  std::error_code ec;
  for (const auto& dirent : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = dirent.path().filename().string();
    bool superseded = false;
    if (const auto seq = parse_wal_segment_name(name)) superseded = *seq <= cut;
    if (const auto ck = parse_checkpoint_file_name(name)) superseded = *ck < cut;
    if (superseded) {
      std::error_code rm_ec;
      std::filesystem::remove(dirent.path(), rm_ec);
    }
  }
}

}  // namespace

void DataStore::enable_durability(const std::string& dir, DurabilityOptions options) {
  SF_CHECK(durability_ == nullptr, "durability is already enabled on this store");
  SF_CHECK(tables_.load(std::memory_order_acquire)->empty(),
           "enable_durability requires an empty store; attach to an existing data dir "
           "with DataStore::recover");
  std::filesystem::create_directories(dir);
  const DirScan found = scan_data_dir(dir, /*remove_tmp=*/false);
  if (!found.segments.empty() || !found.checkpoints.empty()) {
    throw InvalidArgument("data dir '" + dir +
                          "' already holds WAL/checkpoint files; use DataStore::recover");
  }
  auto durability = std::make_unique<Durability>();
  durability->dir = dir;
  durability->options = options;
  durability->segment_seq = 1;
  durability->writer = std::make_unique<WalWriter>(durability->segment_path(1), options.flush,
                                                   options.fault_injector);
  attach_durability(std::move(durability));
}

void DataStore::attach_durability(std::unique_ptr<Durability> durability) {
  durability_ = std::move(durability);
  obs::MetricsRegistry* registry =
      obs_ != nullptr ? obs_->registry : durability_->options.metrics;
  if (registry != nullptr) durability_->wire_metrics(*registry);
}

void DataStore::replay_record(const WalRecord& record) {
  switch (record.kind) {
    case WalRecordKind::kPut:
      put(record.table, record.row, record.column, record.ts, record.value);
      break;
    case WalRecordKind::kPutBatch: {
      std::vector<PutOp> ops;
      ops.reserve(record.batch.size());
      for (const WalRecord::BatchOp& op : record.batch) {
        ops.push_back(PutOp{op.row, op.column, op.value});
      }
      put_batch(record.table, record.ts, ops);
      break;
    }
    case WalRecordKind::kErase:
      erase(record.table, record.row, record.column, record.ts);
      break;
    case WalRecordKind::kCreateTable:
      entry_for(record.table);
      break;
    case WalRecordKind::kDropTable:
      drop_table(record.table);
      break;
    case WalRecordKind::kClear:
      clear();
      break;
    case WalRecordKind::kWaveCommit:
      break;  // tracked by recover() itself
  }
}

std::unique_ptr<DataStore> DataStore::recover(const std::string& dir, DurabilityOptions options,
                                              std::size_t max_versions, RecoveryInfo* info) {
  const auto t0 = std::chrono::steady_clock::now();
  RecoveryInfo local;
  std::filesystem::create_directories(dir);
  const DirScan found = scan_data_dir(dir, /*remove_tmp=*/true);

  auto store = std::make_unique<DataStore>(max_versions);
  std::uint64_t cut = 0;
  std::optional<Timestamp> last_wave;

  if (!found.checkpoints.empty()) {
    cut = found.checkpoints.back();
    const std::string path = (std::filesystem::path(dir) / checkpoint_file_name(cut)).string();
    const auto image = load_checkpoint_file(path);
    if (!image) {
      // Hard error by design: the segments this checkpoint replaced were
      // deleted when it became durable, so there is nothing to fall back to.
      throw Error("checkpoint '" + path + "' is corrupt; recovery cannot proceed");
    }
    SF_CHECK(image->max_versions >= 1, "checkpoint max_versions invalid");
    store->max_versions_ = image->max_versions;
    for (const CheckpointTable& table : image->tables) {
      const auto entry = store->entry_for(table.name);
      std::unique_lock lock(entry->mutex);
      for (const CheckpointTable::Cell& cell : table.cells) {
        // Versions are stored newest first; re-put oldest first.
        for (auto it = cell.versions.rbegin(); it != cell.versions.rend(); ++it) {
          entry->table.put(cell.row, cell.column, it->timestamp, it->value);
        }
      }
    }
    if (image->has_committed_wave) last_wave = image->last_committed_wave;
    local.checkpoint_loaded = true;
  }

  std::vector<std::uint64_t> replay;
  for (const std::uint64_t seq : found.segments) {
    if (seq > cut) replay.push_back(seq);
  }
  for (std::size_t i = 0; i < replay.size(); ++i) {
    if (replay[i] != cut + 1 + i) {
      throw Error("WAL segment " + std::to_string(cut + 1 + i) + " is missing from '" + dir +
                  "'; recovery cannot proceed");
    }
  }
  for (std::size_t i = 0; i < replay.size(); ++i) {
    const std::string path =
        (std::filesystem::path(dir) / wal_segment_name(replay[i])).string();
    WalReader reader(path);
    WalRecord record;
    for (;;) {
      const WalReader::Next next = reader.next(record);
      if (next == WalReader::Next::kEnd) break;
      if (next == WalReader::Next::kTornTail) {
        if (i + 1 != replay.size()) {
          // Only a crash mid-append can tear a record, and appends only ever
          // go to the newest segment.
          throw Error("WAL segment '" + path +
                      "' has a torn record but is not the final segment: corruption");
        }
        std::filesystem::resize_file(path, reader.clean_bytes());
        local.truncated_torn_tail = true;
        break;
      }
      if (record.kind == WalRecordKind::kWaveCommit) {
        last_wave = record.wave;
      } else {
        store->replay_record(record);
      }
      ++local.records_replayed;
    }
    ++local.segments_replayed;
  }

  // A crash between "checkpoint durable" and "old artifacts deleted" leaves
  // superseded files behind; finish the job now that replay is done.
  if (local.checkpoint_loaded) remove_superseded(dir, cut);

  const std::uint64_t next_seq = (replay.empty() ? cut : replay.back()) + 1;
  auto durability = std::make_unique<Durability>();
  durability->dir = dir;
  durability->options = options;
  durability->segment_seq = next_seq;
  durability->committed_wave = last_wave;
  durability->writer =
      std::make_unique<WalWriter>(durability->segment_path(next_seq), options.flush,
                                  options.fault_injector, local.records_replayed);
  store->attach_durability(std::move(durability));

  local.last_durable_wave = last_wave;
  local.duration_seconds = StoreObs::seconds_since(t0);
  if (options.metrics != nullptr) {
    options.metrics->counter("sf_ds_recoveries_total", {}, "Crash recoveries performed").inc();
    options.metrics
        ->histogram("sf_ds_recovery_duration_seconds", obs::duration_buckets(), {},
                    "Recovery wall-clock duration")
        .observe(local.duration_seconds);
  }
  if (info != nullptr) *info = local;
  return store;
}

void DataStore::commit_wave(Timestamp wave) {
  if (!durability_) return;
  bool checkpoint_due = false;
  {
    std::lock_guard lock(durability_->wal_mutex);
    durability_->writer->append_wave_commit(wave);
    durability_->committed_wave = wave;
    if (durability_->wave_commits != nullptr) durability_->wave_commits->inc();
    if (durability_->options.checkpoint_every_waves > 0 &&
        ++durability_->waves_since_checkpoint >= durability_->options.checkpoint_every_waves) {
      checkpoint_due = true;
    }
  }
  if (checkpoint_due) checkpoint();
}

void DataStore::checkpoint() {
  if (durability_ == nullptr) {
    throw StateError("DataStore::checkpoint requires durability (enable_durability/recover)");
  }
  const auto t0 = std::chrono::steady_clock::now();
  CheckpointImage image;
  image.max_versions = max_versions_;
  std::uint64_t cut = 0;
  {
    // Lock order registry -> every table (shared) -> WAL, the same global
    // order writers use (one table, then WAL), so this cannot deadlock. With
    // all writers blocked, no record can land between the cut and the
    // capture: the image contains exactly the effects of segments <= cut.
    std::lock_guard registry_lock(registry_mutex_);
    const auto snap = tables_.load(std::memory_order_acquire);
    std::vector<std::shared_lock<std::shared_mutex>> table_locks;
    table_locks.reserve(snap->size());
    for (const auto& [name, entry] : *snap) table_locks.emplace_back(entry->mutex);
    std::lock_guard wal_lock(durability_->wal_mutex);

    cut = durability_->segment_seq;
    const std::uint64_t next_record_seq = durability_->writer->record_seq();
    durability_->writer.reset();  // flushes; closing the segment at the cut
    durability_->segment_seq = cut + 1;
    durability_->writer = std::make_unique<WalWriter>(
        durability_->segment_path(cut + 1), durability_->options.flush,
        durability_->options.fault_injector, next_record_seq);
    if (durability_->wal_obs.records != nullptr) {
      durability_->writer->set_obs(&durability_->wal_obs);
    }
    image.wal_cut_segment = cut;
    image.has_committed_wave = durability_->committed_wave.has_value();
    image.last_committed_wave = durability_->committed_wave.value_or(0);
    durability_->waves_since_checkpoint = 0;

    image.tables.reserve(snap->size());
    for (const auto& [name, entry] : *snap) {
      CheckpointTable table;
      table.name = name;
      table.cells.reserve(entry->table.cell_count());
      entry->table.scan_cells([&](const Table::CellView& cv) {
        CheckpointTable::Cell cell;
        cell.row = *cv.row;
        cell.column = *cv.col;
        cell.versions = entry->table.versions(*cv.row, *cv.col);
        table.cells.push_back(std::move(cell));
      });
      image.tables.push_back(std::move(table));
    }
  }
  // The file write happens outside every lock; a crash before the rename
  // leaves the old checkpoint + all segments, which recovery handles.
  write_checkpoint_file(durability_->checkpoint_path(cut), image);
  remove_superseded(durability_->dir, cut);
  if (durability_->checkpoints != nullptr) {
    durability_->checkpoints->inc();
    durability_->checkpoint_duration->observe(StoreObs::seconds_since(t0));
  }
}

void DataStore::sync_wal() {
  if (!durability_) return;
  std::lock_guard lock(durability_->wal_mutex);
  durability_->writer->sync();
}

std::optional<Timestamp> DataStore::last_committed_wave() const {
  if (!durability_) return std::nullopt;
  std::lock_guard lock(durability_->wal_mutex);
  return durability_->committed_wave;
}

std::string DataStore::data_dir() const { return durability_ ? durability_->dir : std::string(); }

std::size_t DataStore::subscribe(MutationObserver observer) {
  SF_CHECK(static_cast<bool>(observer), "observer must be callable");
  std::lock_guard lock(observers_mutex_);
  const std::size_t token = next_token_++;
  auto next = std::make_shared<ObserverList>(*observers_.load(std::memory_order_acquire));
  next->emplace_back(token, std::move(observer));
  const std::size_t count = next->size();
  observers_.store(std::shared_ptr<const ObserverList>(std::move(next)),
                   std::memory_order_release);
  observer_count_.store(count, std::memory_order_release);
  return token;
}

void DataStore::unsubscribe(std::size_t token) {
  std::lock_guard lock(observers_mutex_);
  auto next = std::make_shared<ObserverList>(*observers_.load(std::memory_order_acquire));
  std::erase_if(*next, [token](const auto& p) { return p.first == token; });
  const std::size_t count = next->size();
  observers_.store(std::shared_ptr<const ObserverList>(std::move(next)),
                   std::memory_order_release);
  observer_count_.store(count, std::memory_order_release);
}

}  // namespace smartflux::ds
