#include "datastore/datastore.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <shared_mutex>

#include "common/error.h"
#include "common/lock_rank.h"
#include "common/logging.h"
#include "common/thread_pool.h"
#include "datastore/checkpoint.h"
#include "datastore/wal.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace smartflux::ds {

const char* wal_flush_policy_name(WalFlushPolicy policy) noexcept {
  switch (policy) {
    case WalFlushPolicy::kEveryOp: return "every_op";
    case WalFlushPolicy::kEveryBatch: return "every_batch";
    case WalFlushPolicy::kEveryWave: return "every_wave";
  }
  return "?";
}

/// WAL families + checkpoint bookkeeping. One Family per shard: its mutex
/// serializes appends to that shard's segment and is always acquired after
/// the mutating thread's slot lock (lock rank kLockRankWal), so WAL order
/// equals apply order per shard; across shards the store-global lsn in every
/// record reconstructs a valid linearization at recovery. `meta_mutex`
/// (rank kLockRankDurabilityMeta) guards the rotation/commit bookkeeping and
/// is the innermost lock of all.
struct DataStore::Durability {
  struct Family {
    std::mutex mutex;                   ///< rank kLockRankWal
    std::unique_ptr<WalWriter> writer;  ///< guarded by mutex
    WalObs obs;  ///< records/bytes/syncs shared store-wide; shard_bytes own
  };

  std::string dir;
  DurabilityOptions options;
  std::size_t shards = 1;
  std::vector<std::unique_ptr<Family>> families;  ///< size == shards
  /// Store-global lsn counter shared by every family (shards > 1 only; the
  /// unsharded store keeps the writer's internal record count as its lsn so
  /// the legacy fault-injection seq space is unchanged).
  std::atomic<std::uint64_t> next_lsn{0};

  std::mutex meta_mutex;                    ///< rank kLockRankDurabilityMeta
  std::uint64_t segment_seq = 1;            ///< guarded by meta_mutex
  std::optional<Timestamp> committed_wave;  ///< guarded by meta_mutex
  std::size_t waves_since_checkpoint = 0;   ///< guarded by meta_mutex

  // Metric handles (null = no registry attached). Wired from
  // set_instrumentation's registry, falling back to options.metrics.
  obs::Counter* wave_commits = nullptr;
  obs::Counter* checkpoints = nullptr;
  obs::Histogram* checkpoint_duration = nullptr;
  bool metrics_wired = false;

  std::atomic<std::uint64_t>* lsn_source() noexcept {
    return shards == 1 ? nullptr : &next_lsn;
  }
  /// Disk-fault schedule tag of one family: the legacy "wal" for the
  /// unsharded store, "wal-s<k>" per shard otherwise.
  std::string fault_tag(std::size_t shard) const {
    return shards == 1 ? std::string("wal") : "wal-s" + std::to_string(shard);
  }
  std::string segment_path(std::size_t shard, std::uint64_t seq) const {
    const std::string name =
        shards == 1 ? wal_segment_name(seq) : sharded_wal_segment_name(shard, seq);
    return (std::filesystem::path(dir) / name).string();
  }
  std::string checkpoint_path(std::uint64_t cut) const {
    return (std::filesystem::path(dir) / checkpoint_file_name(cut)).string();
  }

  /// Opens one writer per shard at segment `seq`. `first_record_seq` only
  /// matters for the unsharded store (lsn continuity across recovery).
  void open_writers(std::uint64_t seq, std::uint64_t first_record_seq) {
    families.clear();
    families.reserve(shards);
    for (std::size_t shard = 0; shard < shards; ++shard) {
      auto family = std::make_unique<Family>();
      family->writer = std::make_unique<WalWriter>(segment_path(shard, seq), options.flush,
                                                   options.fault_injector, first_record_seq,
                                                   lsn_source(), fault_tag(shard));
      families.push_back(std::move(family));
    }
  }

  /// Appends one structural record (create/drop/clear) to EVERY family under
  /// all family mutexes (index order), with one shared lsn, so replay can
  /// dedupe the copies. `append_one(writer, lsn)` runs per family; a throw
  /// mid-broadcast leaves a partial set of same-lsn copies, which recovery
  /// applies exactly once (structural replay is idempotent).
  template <typename AppendOne>
  void broadcast(AppendOne&& append_one) {
    LockRankScope rank(kLockRankWal);
    std::vector<std::unique_lock<std::mutex>> locks;
    locks.reserve(families.size());
    for (auto& family : families) locks.emplace_back(family->mutex);
    const std::optional<std::uint64_t> lsn =
        shards == 1 ? std::nullopt
                    : std::optional<std::uint64_t>(
                          next_lsn.fetch_add(1, std::memory_order_relaxed));
    for (auto& family : families) append_one(*family->writer, lsn);
  }

  void wire_metrics(obs::MetricsRegistry& reg) {
    auto* records = &reg.counter("sf_ds_wal_records_total", {}, "WAL records appended");
    auto* bytes =
        &reg.counter("sf_ds_wal_bytes_total", {}, "WAL bytes appended (incl. framing)");
    auto* syncs = &reg.counter("sf_ds_wal_syncs_total", {}, "WAL fsync calls");
    auto* fsync_duration =
        &reg.histogram("sf_ds_wal_fsync_duration_seconds", obs::duration_buckets(), {},
                       "WAL fsync latency");
    for (std::size_t shard = 0; shard < families.size(); ++shard) {
      Family& family = *families[shard];
      family.obs.records = records;
      family.obs.bytes = bytes;
      family.obs.syncs = syncs;
      family.obs.fsync_duration = fsync_duration;
      // Per-shard byte series only when actually sharded: one series per
      // shard is bounded cardinality, but the unsharded default would just
      // duplicate sf_ds_wal_bytes_total (see DESIGN.md §9).
      family.obs.shard_bytes =
          shards == 1 ? nullptr
                      : &reg.counter("sf_ds_wal_shard_bytes_total",
                                     {{"shard", std::to_string(shard)}},
                                     "WAL bytes appended per shard family");
      if (family.writer) family.writer->set_obs(&family.obs);
    }
    wave_commits =
        &reg.counter("sf_ds_wave_commits_total", {}, "Wave-commit records stamped");
    checkpoints = &reg.counter("sf_ds_checkpoints_total", {}, "Checkpoints written");
    checkpoint_duration =
        &reg.histogram("sf_ds_checkpoint_duration_seconds", obs::duration_buckets(), {},
                       "Checkpoint capture + write duration");
    metrics_wired = true;
  }

  void unwire_metrics() {
    for (auto& family : families) {
      family->obs = WalObs{};
      if (family->writer) family->writer->set_obs(nullptr);
    }
    wave_commits = nullptr;
    checkpoints = nullptr;
    checkpoint_duration = nullptr;
    metrics_wired = false;
  }
};

/// Handles resolved at attach time. Point ops (get/put/erase) always bump a
/// counter; latency observation is sampled 1-in-2^shift so the per-cell hot
/// path stays two relaxed atomics in the common case. Scans and batches are
/// rare and heavy: always timed, and scans traced when a tracer is attached.
struct DataStore::StoreObs {
  obs::Counter* gets = nullptr;
  obs::Counter* puts = nullptr;
  obs::Counter* batches = nullptr;
  obs::Counter* erases = nullptr;
  obs::Counter* scans = nullptr;
  obs::Histogram* get_latency = nullptr;
  obs::Histogram* put_latency = nullptr;
  obs::Histogram* batch_latency = nullptr;
  obs::Histogram* scan_latency = nullptr;
  obs::Tracer* tracer = nullptr;
  obs::MetricsRegistry* registry = nullptr;  ///< for late durability wiring
  std::uint64_t sample_mask = 63;
  /// Per-shard routed-op counters + imbalance gauge (max/mean of the shard
  /// op counts, refreshed at each wave commit). Empty/null on the unsharded
  /// default — no extra series unless sharding is actually on (§9 note).
  std::vector<obs::Counter*> shard_ops;
  obs::Gauge* shard_imbalance = nullptr;
  /// Soft memory ceiling series (registered eagerly; cheap, and the gauges
  /// only move when a ceiling is actually configured).
  obs::Gauge* tracked_bytes = nullptr;
  obs::Gauge* memory_pressure = nullptr;
  obs::Counter* pressure_events = nullptr;
  obs::Counter* versions_trimmed = nullptr;

  StoreObs(obs::MetricsRegistry& registry, obs::Tracer* tr, unsigned shift, std::size_t shards)
      : tracer(tr), registry(&registry) {
    sample_mask = (std::uint64_t{1} << shift) - 1;
    if (shards > 1) {
      shard_ops.reserve(shards);
      for (std::size_t shard = 0; shard < shards; ++shard) {
        shard_ops.push_back(&registry.counter("sf_ds_shard_ops_total",
                                              {{"shard", std::to_string(shard)}},
                                              "Datastore ops routed to each shard"));
      }
      shard_imbalance = &registry.gauge(
          "sf_ds_shard_imbalance", {},
          "Max-over-mean of per-shard routed op counts (1.0 = perfectly even)");
    }
    auto op_counter = [&registry](const char* op) {
      return &registry.counter("sf_ds_ops_total", {{"op", op}},
                               "Datastore operations by kind");
    };
    auto op_latency = [&registry](const char* op) {
      return &registry.histogram("sf_ds_op_duration_seconds", obs::duration_buckets(),
                                 {{"op", op}},
                                 "Datastore op latency (point ops sampled 1-in-2^shift)");
    };
    tracked_bytes = &registry.gauge("sf_ds_tracked_bytes", {},
                                    "Approximate store heap footprint (wave-commit cadence)");
    memory_pressure = &registry.gauge("sf_ds_memory_pressure", {},
                                      "1 while tracked bytes exceed the soft ceiling");
    pressure_events = &registry.counter("sf_ds_memory_pressure_events_total", {},
                                        "Transitions into memory pressure");
    versions_trimmed = &registry.counter("sf_ds_trimmed_versions_total", {},
                                         "Superseded cell versions dropped under pressure");
    gets = op_counter("get");
    puts = op_counter("put");
    batches = op_counter("put_batch");
    erases = op_counter("erase");
    scans = op_counter("scan");
    get_latency = op_latency("get");
    put_latency = op_latency("put");
    batch_latency = op_latency("put_batch");
    scan_latency = op_latency("scan");
  }

  /// Bumps the op counter and decides latency sampling off its pre-increment
  /// value — one atomic per point op, and each op kind samples its own
  /// stream (every 2^shift-th get, every 2^shift-th put, ...).
  bool count_and_sample(obs::Counter& op) noexcept {
    return (op.fetch_inc() & sample_mask) == 0;
  }

  static double seconds_since(std::chrono::steady_clock::time_point t0) noexcept {
    return static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now() - t0)
                                   .count()) *
           1e-9;
  }
};

namespace {
/// Registry-generation stamps are unique across all DataStore instances and
/// never repeat, so a per-thread cache entry can never validate against a
/// different store that happens to reuse the same address.
std::uint64_t next_registry_gen() noexcept {
  static std::atomic<std::uint64_t> gen{1};
  return gen.fetch_add(1, std::memory_order_relaxed);
}
}  // namespace

DataStore::DataStore(std::size_t max_versions, ShardOptions shard_options)
    : max_versions_(max_versions), shard_options_(shard_options), ring_(shard_options) {
  SF_CHECK(max_versions >= 1, "DataStore must retain at least one version");
  tables_.store(std::make_shared<const TableMap>(), std::memory_order_release);
  registry_gen_.store(next_registry_gen(), std::memory_order_release);
  observers_.store(std::make_shared<const ObserverList>(), std::memory_order_release);
}

DataStore::~DataStore() = default;

void DataStore::set_instrumentation(obs::MetricsRegistry* registry, obs::Tracer* tracer,
                                    unsigned latency_sample_shift) {
  SF_CHECK(latency_sample_shift < 32, "latency_sample_shift out of range");
  if (registry == nullptr) {
    obs_.reset();
    if (durability_) durability_->unwire_metrics();
    return;
  }
  obs_ = std::make_unique<StoreObs>(*registry, tracer, latency_sample_shift, shards());
  if (durability_) durability_->wire_metrics(*registry);
}

std::shared_ptr<DataStore::TableEntry> DataStore::find_entry(const TableName& table) const {
  // Per-thread registry cache: while the registry is unchanged (by far the
  // common case — tables are created once and live forever), a point op pays
  // one lock-free uint64 load instead of the refcounted atomic-shared_ptr
  // load. The gen is read *before* the map, so a cached map can never be
  // older than the gen it is stamped with; a concurrent registry change just
  // invalidates the entry on the next op. The cached shared_ptr keeps the map
  // snapshot alive until this thread touches another store or generation,
  // which is safe (snapshots are immutable) and bounded (one map per thread).
  struct Cache {
    const DataStore* store = nullptr;
    std::uint64_t gen = 0;
    std::shared_ptr<const TableMap> map;
  };
  static thread_local Cache cache;
  const auto gen = registry_gen_.load(std::memory_order_acquire);
  if (cache.store != this || cache.gen != gen) {
    cache.map = tables_.load(std::memory_order_acquire);
    cache.store = this;
    cache.gen = gen;
  }
  const auto it = cache.map->find(table);
  return it == cache.map->end() ? nullptr : it->second;
}

std::shared_ptr<DataStore::TableEntry> DataStore::entry_for(const TableName& table) {
  if (auto entry = find_entry(table)) return entry;
  LockRankScope rank(kLockRankRegistry);
  std::lock_guard lock(registry_mutex_);
  // Re-check under the writer lock: another thread may have created it
  // between our lock-free lookup and here.
  auto snap = tables_.load(std::memory_order_acquire);
  if (const auto it = snap->find(table); it != snap->end()) return it->second;
  auto next = std::make_shared<TableMap>(*snap);
  auto entry = std::make_shared<TableEntry>(max_versions_, shards());
  next->emplace(table, entry);
  if (durability_) {
    // Logged before the new registry snapshot is published, so the create
    // record precedes every put record for this table in each family's log.
    // If the append throws, the table was never created.
    durability_->broadcast([&table](WalWriter& writer, std::optional<std::uint64_t> lsn) {
      writer.append_create_table(table, lsn);
    });
  }
  tables_.store(std::shared_ptr<const TableMap>(std::move(next)), std::memory_order_release);
  registry_gen_.store(next_registry_gen(), std::memory_order_release);
  return entry;
}

void DataStore::put(const TableName& table, const RowKey& row, const ColumnKey& column,
                    Timestamp ts, double value) {
  std::chrono::steady_clock::time_point t0;
  bool timed = false;
  if (obs_) {
    timed = obs_->count_and_sample(*obs_->puts);
    if (timed) t0 = std::chrono::steady_clock::now();
  }
  const auto entry = entry_for(table);
  const std::size_t shard = ring_.shard_of(row);
  if (obs_ && !obs_->shard_ops.empty()) obs_->shard_ops[shard]->inc();
  Slot& slot = *entry->slots[shard];
  std::optional<double> previous;
  {
    LockRankScope table_rank(kLockRankTable);
    std::unique_lock lock(slot.mutex);
    previous = slot.table.put(row, column, ts, value);
    if (durability_) {
      // Log under the slot lock so WAL order matches apply order for this
      // shard; the family mutex ranks below every table lock (see
      // Durability).
      auto& family = *durability_->families[shard];
      LockRankScope wal_rank(kLockRankWal);
      std::lock_guard wal_lock(family.mutex);
      family.writer->append_put(table, row, column, ts, value);
    }
  }
  if (observer_count_.load(std::memory_order_acquire) != 0) {
    const auto observers = observer_snapshot();
    Mutation m;
    m.kind = MutationKind::kPut;
    m.table = table;
    m.row = row;
    m.column = column;
    m.timestamp = ts;
    m.new_value = value;
    m.old_value = previous.value_or(0.0);
    m.had_old_value = previous.has_value();
    for (const auto& [_, observe] : *observers) observe(m);
  }
  if (timed) obs_->put_latency->observe(StoreObs::seconds_since(t0));
}

void DataStore::put_batch(const TableName& table, Timestamp ts, std::span<const PutOp> ops) {
  if (ops.empty()) return;
  std::chrono::steady_clock::time_point t0;
  if (obs_) {
    obs_->puts->inc(ops.size());
    obs_->batches->inc();
    t0 = std::chrono::steady_clock::now();
  }
  const auto entry = entry_for(table);
  std::shared_ptr<const ObserverList> observers;
  if (observer_count_.load(std::memory_order_acquire) != 0) observers = observer_snapshot();
  const bool want_mutations = observers != nullptr && !observers->empty();
  // (old value, had old) per op, at the op's ORIGINAL index — sub-batches of
  // different shards write disjoint slots of it concurrently.
  std::vector<std::pair<double, bool>> previous;
  if (want_mutations) previous.resize(ops.size());

  if (shards() == 1) {
    // Unsharded fast path: one lock, one WAL record — byte-identical
    // behavior (and log) to the pre-sharding store.
    Slot& slot = *entry->slots[0];
    LockRankScope table_rank(kLockRankTable);
    std::unique_lock lock(slot.mutex);
    std::size_t applied = 0;
    try {
      for (std::size_t i = 0; i < ops.size(); ++i) {
        const auto prev = slot.table.put(ops[i].row, ops[i].column, ts, ops[i].value);
        ++applied;
        if (want_mutations) previous[i] = {prev.value_or(0.0), prev.has_value()};
      }
    } catch (...) {
      // A mid-batch failure (timestamp regression) leaves a prefix applied;
      // log exactly that prefix so replay reproduces the in-memory state.
      if (durability_ && applied > 0) {
        auto& family = *durability_->families[0];
        LockRankScope wal_rank(kLockRankWal);
        std::lock_guard wal_lock(family.mutex);
        family.writer->append_batch(table, ts, ops.first(applied));
      }
      throw;
    }
    if (durability_) {
      auto& family = *durability_->families[0];
      LockRankScope wal_rank(kLockRankWal);
      std::lock_guard wal_lock(family.mutex);
      family.writer->append_batch(table, ts, ops);
    }
  } else {
    // Split by shard (stable: original order within each sub-batch, so the
    // same-cell-twice-in-one-batch case keeps its order — equal rows always
    // share a shard). Each sub-batch applies under its own slot lock and
    // logs ONE record to its own WAL family.
    std::vector<std::vector<std::uint32_t>> by_shard(shards());
    for (std::size_t i = 0; i < ops.size(); ++i) {
      by_shard[ring_.shard_of(ops[i].row)].push_back(static_cast<std::uint32_t>(i));
    }
    std::vector<std::size_t> hit;  // shards with a non-empty sub-batch
    for (std::size_t shard = 0; shard < by_shard.size(); ++shard) {
      if (!by_shard[shard].empty()) hit.push_back(shard);
    }
    if (obs_ && !obs_->shard_ops.empty()) {
      for (const std::size_t shard : hit) obs_->shard_ops[shard]->inc(by_shard[shard].size());
    }
    auto* previous_out = want_mutations ? &previous : nullptr;
    ThreadPool* pool = shard_options_.batch_pool;
    if (pool != nullptr && hit.size() > 1 &&
        ops.size() >= shard_options_.parallel_batch_min_ops) {
      std::vector<std::function<void()>> tasks;
      tasks.reserve(hit.size());
      for (const std::size_t shard : hit) {
        tasks.push_back([this, &table, entry, shard, ts, ops, &by_shard, previous_out] {
          apply_shard_batch(table, *entry, shard, ts, ops, by_shard[shard], previous_out);
        });
      }
      // Caller-participating run_all: safe even when the calling step itself
      // runs on this same pool. Rethrows the first failure in shard order;
      // other shards' sub-batches still complete (each one applied + logged
      // atomically, so WAL and memory stay in agreement).
      pool->run_all(std::move(tasks));
    } else {
      for (const std::size_t shard : hit) {
        apply_shard_batch(table, *entry, shard, ts, ops, by_shard[shard], previous_out);
      }
    }
  }

  if (want_mutations) {
    Mutation m;
    m.kind = MutationKind::kPut;
    m.table = table;
    m.timestamp = ts;
    for (std::size_t i = 0; i < ops.size(); ++i) {
      m.row.assign(ops[i].row);
      m.column.assign(ops[i].column);
      m.new_value = ops[i].value;
      m.old_value = previous[i].first;
      m.had_old_value = previous[i].second;
      for (const auto& [_, observe] : *observers) observe(m);
    }
  }
  if (obs_) obs_->batch_latency->observe(StoreObs::seconds_since(t0));
}

void DataStore::apply_shard_batch(const TableName& table, TableEntry& entry, std::size_t shard,
                                  Timestamp ts, std::span<const PutOp> ops,
                                  const std::vector<std::uint32_t>& indices,
                                  std::vector<std::pair<double, bool>>* previous) {
  // Materialize the sub-batch once: it is both the apply order and the ONE
  // WAL record for this shard, so replaying the family reproduces exactly
  // what this slot applied.
  std::vector<PutOp> sub;
  sub.reserve(indices.size());
  for (const std::uint32_t i : indices) sub.push_back(ops[i]);

  Slot& slot = *entry.slots[shard];
  LockRankScope table_rank(kLockRankTable);
  std::unique_lock lock(slot.mutex);
  std::size_t applied = 0;
  try {
    for (std::size_t j = 0; j < sub.size(); ++j) {
      const auto prev = slot.table.put(sub[j].row, sub[j].column, ts, sub[j].value);
      ++applied;
      if (previous != nullptr) {
        (*previous)[indices[j]] = {prev.value_or(0.0), prev.has_value()};
      }
    }
  } catch (...) {
    // Same prefix rule as the unsharded batch, per shard: log exactly what
    // this slot applied before the failure.
    if (durability_ && applied > 0) {
      auto& family = *durability_->families[shard];
      LockRankScope wal_rank(kLockRankWal);
      std::lock_guard wal_lock(family.mutex);
      family.writer->append_batch(table, ts, std::span<const PutOp>(sub).first(applied));
    }
    throw;
  }
  if (durability_) {
    auto& family = *durability_->families[shard];
    LockRankScope wal_rank(kLockRankWal);
    std::lock_guard wal_lock(family.mutex);
    family.writer->append_batch(table, ts, sub);
  }
}

void DataStore::erase(const TableName& table, const RowKey& row, const ColumnKey& column,
                      Timestamp ts) {
  if (obs_) obs_->erases->inc();
  const auto entry = find_entry(table);
  if (entry == nullptr) return;
  const std::size_t shard = ring_.shard_of(row);
  if (obs_ && !obs_->shard_ops.empty()) obs_->shard_ops[shard]->inc();
  Slot& slot = *entry->slots[shard];
  std::optional<double> removed;
  {
    LockRankScope table_rank(kLockRankTable);
    std::unique_lock lock(slot.mutex);
    removed = slot.table.erase(row, column);
    if (removed && durability_) {
      // Erasing an absent cell is not a mutation, so it is not logged.
      auto& family = *durability_->families[shard];
      LockRankScope wal_rank(kLockRankWal);
      std::lock_guard wal_lock(family.mutex);
      family.writer->append_erase(table, row, column, ts);
    }
  }
  if (!removed) return;
  if (observer_count_.load(std::memory_order_acquire) == 0) return;
  const auto observers = observer_snapshot();
  if (observers->empty()) return;
  Mutation m;
  m.kind = MutationKind::kDelete;
  m.table = table;
  m.row = row;
  m.column = column;
  m.timestamp = ts;
  m.old_value = *removed;
  m.had_old_value = true;
  for (const auto& [_, observe] : *observers) observe(m);
}

std::optional<double> DataStore::get(const TableName& table, const RowKey& row,
                                     const ColumnKey& column) const {
  std::chrono::steady_clock::time_point t0;
  bool timed = false;
  if (obs_) {
    timed = obs_->count_and_sample(*obs_->gets);
    if (timed) t0 = std::chrono::steady_clock::now();
  }
  const auto entry = find_entry(table);
  std::optional<double> out;
  if (entry != nullptr) {
    const std::size_t shard = ring_.shard_of(row);
    if (obs_ && !obs_->shard_ops.empty()) obs_->shard_ops[shard]->inc();
    Slot& slot = *entry->slots[shard];
    LockRankScope table_rank(kLockRankTable);
    std::shared_lock lock(slot.mutex);
    out = slot.table.get(row, column);
  }
  if (timed) obs_->get_latency->observe(StoreObs::seconds_since(t0));
  return out;
}

std::optional<double> DataStore::get_previous(const TableName& table, const RowKey& row,
                                              const ColumnKey& column) const {
  // Folded into the "get" op label: same access shape, older version.
  if (obs_) obs_->gets->inc();
  const auto entry = find_entry(table);
  if (entry == nullptr) return std::nullopt;
  Slot& slot = *entry->slots[ring_.shard_of(row)];
  LockRankScope table_rank(kLockRankTable);
  std::shared_lock lock(slot.mutex);
  return slot.table.get_previous(row, column);
}

std::optional<double> DataStore::get_at(const TableName& table, const RowKey& row,
                                        const ColumnKey& column, Timestamp ts) const {
  if (obs_) obs_->gets->inc();
  const auto entry = find_entry(table);
  if (entry == nullptr) return std::nullopt;
  Slot& slot = *entry->slots[ring_.shard_of(row)];
  LockRankScope table_rank(kLockRankTable);
  std::shared_lock lock(slot.mutex);
  return slot.table.get_at(row, column, ts);
}

std::optional<double> DataStore::get_previous_at(const TableName& table, const RowKey& row,
                                                 const ColumnKey& column, Timestamp ts) const {
  if (obs_) obs_->gets->inc();
  const auto entry = find_entry(table);
  if (entry == nullptr) return std::nullopt;
  Slot& slot = *entry->slots[ring_.shard_of(row)];
  LockRankScope table_rank(kLockRankTable);
  std::shared_lock lock(slot.mutex);
  return slot.table.get_previous_at(row, column, ts);
}

void DataStore::scan_slots_merged(
    const TableEntry& entry, const ContainerRef& container, std::optional<Timestamp> at,
    const std::function<void(const RowKey&, const ColumnKey&, double)>& visit) const {
  // Lock every slot shared in index order (same-rank order rule), gather the
  // matches, then restore global (row, column) order — each slot only holds
  // its own arc of the ring, so the merged order is not free like it is for
  // one slot. Sorting the union keeps the slot critical sections short.
  struct Hit {
    const std::string* row;
    const std::string* col;
    double value;
  };
  std::vector<Hit> hits;
  const bool unfiltered = !container.has_column() && !container.has_row_prefix();
  {
    LockRankScope table_rank(kLockRankTable);
    std::vector<std::shared_lock<std::shared_mutex>> locks;
    locks.reserve(entry.slots.size());
    for (const auto& slot : entry.slots) locks.emplace_back(slot->mutex);
    for (const auto& slot : entry.slots) {
      const auto gather = [&](const Table::CellView& cv) {
        if (unfiltered || container.matches_cell(*cv.row, *cv.col)) {
          hits.push_back(Hit{cv.row, cv.col, cv.value});
        }
      };
      if (at) {
        slot->table.scan_cells_at(*at, gather);
      } else {
        slot->table.scan_cells(gather);
      }
    }
  }
  std::sort(hits.begin(), hits.end(), [](const Hit& a, const Hit& b) {
    const int cmp = a.row->compare(*b.row);
    return cmp != 0 ? cmp < 0 : a.col->compare(*b.col) < 0;
  });
  for (const Hit& hit : hits) visit(*hit.row, *hit.col, hit.value);
}

void DataStore::scan_container(
    const ContainerRef& container,
    const std::function<void(const RowKey&, const ColumnKey&, double)>& visit) const {
  std::chrono::steady_clock::time_point t0;
  if (obs_) {
    obs_->scans->inc();
    t0 = std::chrono::steady_clock::now();
  }
  const auto entry = find_entry(container.table());
  if (entry != nullptr) {
    if (entry->slots.size() == 1) {
      const bool unfiltered = !container.has_column() && !container.has_row_prefix();
      Slot& slot = *entry->slots[0];
      LockRankScope table_rank(kLockRankTable);
      std::shared_lock lock(slot.mutex);
      slot.table.scan_cells([&](const Table::CellView& cv) {
        if (unfiltered || container.matches_cell(*cv.row, *cv.col)) {
          visit(*cv.row, *cv.col, cv.value);
        }
      });
    } else {
      scan_slots_merged(*entry, container, std::nullopt, visit);
    }
  }
  if (obs_) {
    obs_->scan_latency->observe(StoreObs::seconds_since(t0));
    if (obs_->tracer != nullptr) {
      obs_->tracer->record("ds_scan:" + container.table(), "ds", 0, t0,
                           std::chrono::steady_clock::now() - t0);
    }
  }
}

void DataStore::scan_container_at(
    const ContainerRef& container, Timestamp ts,
    const std::function<void(const RowKey&, const ColumnKey&, double)>& visit) const {
  if (obs_) obs_->scans->inc();
  const auto entry = find_entry(container.table());
  if (entry == nullptr) return;
  if (entry->slots.size() == 1) {
    const bool unfiltered = !container.has_column() && !container.has_row_prefix();
    Slot& slot = *entry->slots[0];
    LockRankScope table_rank(kLockRankTable);
    std::shared_lock lock(slot.mutex);
    slot.table.scan_cells_at(ts, [&](const Table::CellView& cv) {
      if (unfiltered || container.matches_cell(*cv.row, *cv.col)) {
        visit(*cv.row, *cv.col, cv.value);
      }
    });
  } else {
    scan_slots_merged(*entry, container, ts, visit);
  }
}

FlatSnapshot DataStore::snapshot_flat(const ContainerRef& container) const {
  std::chrono::steady_clock::time_point t0;
  if (obs_) {
    obs_->scans->inc();
    t0 = std::chrono::steady_clock::now();
  }
  const auto entry = find_entry(container.table());
  FlatSnapshot out;
  if (entry != nullptr) {
    const bool unfiltered = !container.has_column() && !container.has_row_prefix();
    std::vector<FlatEntry> entries;
    if (entry->slots.size() == 1) {
      Slot& slot = *entry->slots[0];
      {
        LockRankScope table_rank(kLockRankTable);
        std::shared_lock lock(slot.mutex);
        entries.reserve(slot.table.cell_count());
        slot.table.scan_cells([&](const Table::CellView& cv) {
          if (unfiltered || container.matches_cell(*cv.row, *cv.col)) {
            entries.push_back(FlatEntry{cv.id, cv.row, cv.col, cv.value});
          }
        });
      }
      out = FlatSnapshot(entry, &slot.table, std::move(entries));
    } else {
      {
        LockRankScope table_rank(kLockRankTable);
        std::vector<std::shared_lock<std::shared_mutex>> locks;
        locks.reserve(entry->slots.size());
        for (const auto& slot : entry->slots) locks.emplace_back(slot->mutex);
        for (const auto& slot : entry->slots) {
          slot->table.scan_cells([&](const Table::CellView& cv) {
            if (unfiltered || container.matches_cell(*cv.row, *cv.col)) {
              entries.push_back(FlatEntry{cv.id, cv.row, cv.col, cv.value});
            }
          });
        }
      }
      std::sort(entries.begin(), entries.end(), [](const FlatEntry& a, const FlatEntry& b) {
        const int cmp = a.row->compare(*b.row);
        return cmp != 0 ? cmp < 0 : a.col->compare(*b.col) < 0;
      });
      // keyspace = nullptr: packed interner ids are only unique per slot, so
      // the id fast path (pointer-equal keyspaces) must not engage across
      // differently sharded snapshots; consumers fall back to string keys.
      out = FlatSnapshot(entry, nullptr, std::move(entries));
    }
  }
  if (obs_) {
    obs_->scan_latency->observe(StoreObs::seconds_since(t0));
    if (obs_->tracer != nullptr) {
      obs_->tracer->record("ds_scan:" + container.table(), "ds", 0, t0,
                           std::chrono::steady_clock::now() - t0);
    }
  }
  return out;
}

std::map<std::string, double> DataStore::snapshot(const ContainerRef& container) const {
  std::map<std::string, double> out;
  scan_container(container, [&out](const RowKey& row, const ColumnKey& column, double value) {
    std::string key;
    key.reserve(row.size() + 1 + column.size());
    key.append(row).push_back('\x1f');
    key.append(column);
    // Scan order is (row, column) order, which matches the concatenated-key
    // order for ordinary keys, so the end hint is almost always right.
    out.emplace_hint(out.end(), std::move(key), value);
  });
  return out;
}

std::size_t DataStore::cell_count(const TableName& table) const {
  const auto entry = find_entry(table);
  if (entry == nullptr) return 0;
  LockRankScope table_rank(kLockRankTable);
  std::size_t n = 0;
  for (const auto& slot : entry->slots) {
    std::shared_lock lock(slot->mutex);
    n += slot->table.cell_count();
  }
  return n;
}

std::size_t DataStore::container_cell_count(const ContainerRef& container) const {
  std::size_t n = 0;
  scan_container(container, [&n](const RowKey&, const ColumnKey&, double) { ++n; });
  return n;
}

bool DataStore::has_table(const TableName& table) const { return find_entry(table) != nullptr; }

std::vector<TableName> DataStore::table_names() const {
  const auto snap = tables_.load(std::memory_order_acquire);
  std::vector<TableName> out;
  out.reserve(snap->size());
  for (const auto& [name, _] : *snap) out.push_back(name);
  return out;
}

void DataStore::drop_table(const TableName& table) {
  LockRankScope rank(kLockRankRegistry);
  std::lock_guard lock(registry_mutex_);
  const auto snap = tables_.load(std::memory_order_acquire);
  if (!snap->contains(table)) return;
  auto next = std::make_shared<TableMap>(*snap);
  next->erase(table);
  if (durability_) {
    durability_->broadcast([&table](WalWriter& writer, std::optional<std::uint64_t> lsn) {
      writer.append_drop_table(table, lsn);
    });
  }
  tables_.store(std::shared_ptr<const TableMap>(std::move(next)), std::memory_order_release);
  registry_gen_.store(next_registry_gen(), std::memory_order_release);
}

void DataStore::clear() {
  LockRankScope rank(kLockRankRegistry);
  std::lock_guard lock(registry_mutex_);
  if (durability_) {
    durability_->broadcast([](WalWriter& writer, std::optional<std::uint64_t> lsn) {
      writer.append_clear(lsn);
    });
  }
  tables_.store(std::make_shared<const TableMap>(), std::memory_order_release);
  registry_gen_.store(next_registry_gen(), std::memory_order_release);
}

std::vector<CellVersion> DataStore::cell_versions(const TableName& table, const RowKey& row,
                                                  const ColumnKey& column) const {
  const auto entry = find_entry(table);
  if (entry == nullptr) return {};
  Slot& slot = *entry->slots[ring_.shard_of(row)];
  LockRankScope table_rank(kLockRankTable);
  std::shared_lock lock(slot.mutex);
  return slot.table.versions(row, column);
}

namespace {

/// WAL segment files (both namings, as (shard, seq) plus the actual file
/// name, sorted by (seq, shard)) and checkpoint cuts found in a data dir.
struct FoundSegment {
  WalSegmentId id;
  std::string name;
};
struct DirScan {
  std::vector<FoundSegment> segments;
  std::vector<std::uint64_t> checkpoints;
};

DirScan scan_data_dir(const std::string& dir, bool remove_tmp) {
  DirScan out;
  std::error_code ec;
  for (const auto& dirent : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = dirent.path().filename().string();
    if (const auto id = parse_any_wal_segment_name(name)) {
      out.segments.push_back(FoundSegment{*id, name});
    } else if (const auto cut = parse_checkpoint_file_name(name)) {
      out.checkpoints.push_back(*cut);
    } else if (remove_tmp && name.ends_with(".tmp")) {
      // Leftover from a crash mid-checkpoint-write: never valid, never
      // referenced.
      std::error_code rm_ec;
      std::filesystem::remove(dirent.path(), rm_ec);
    }
  }
  if (ec) throw Error("cannot scan data dir '" + dir + "': " + ec.message());
  std::sort(out.segments.begin(), out.segments.end(),
            [](const FoundSegment& a, const FoundSegment& b) {
              return a.id.seq != b.id.seq ? a.id.seq < b.id.seq : a.id.shard < b.id.shard;
            });
  std::sort(out.checkpoints.begin(), out.checkpoints.end());
  return out;
}

/// Best-effort deletion of everything a durable checkpoint at `cut`
/// supersedes: WAL segments <= cut (either naming — a store reopened with a
/// different shard count leaves the other family behind) and older
/// checkpoints.
void remove_superseded(const std::string& dir, std::uint64_t cut) {
  std::error_code ec;
  for (const auto& dirent : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = dirent.path().filename().string();
    bool superseded = false;
    if (const auto id = parse_any_wal_segment_name(name)) superseded = id->seq <= cut;
    if (const auto ck = parse_checkpoint_file_name(name)) superseded = *ck < cut;
    if (superseded) {
      std::error_code rm_ec;
      std::filesystem::remove(dirent.path(), rm_ec);
    }
  }
}

}  // namespace

void DataStore::enable_durability(const std::string& dir, DurabilityOptions options) {
  SF_CHECK(durability_ == nullptr, "durability is already enabled on this store");
  SF_CHECK(tables_.load(std::memory_order_acquire)->empty(),
           "enable_durability requires an empty store; attach to an existing data dir "
           "with DataStore::recover");
  std::filesystem::create_directories(dir);
  const DirScan found = scan_data_dir(dir, /*remove_tmp=*/false);
  if (!found.segments.empty() || !found.checkpoints.empty()) {
    throw InvalidArgument("data dir '" + dir +
                          "' already holds WAL/checkpoint files; use DataStore::recover");
  }
  auto durability = std::make_unique<Durability>();
  durability->dir = dir;
  durability->options = options;
  durability->shards = shards();
  durability->segment_seq = 1;
  durability->open_writers(/*seq=*/1, /*first_record_seq=*/0);
  attach_durability(std::move(durability));
}

void DataStore::attach_durability(std::unique_ptr<Durability> durability) {
  durability_ = std::move(durability);
  obs::MetricsRegistry* registry =
      obs_ != nullptr ? obs_->registry : durability_->options.metrics;
  if (registry != nullptr) durability_->wire_metrics(*registry);
}

void DataStore::replay_record(const WalRecord& record) {
  switch (record.kind) {
    case WalRecordKind::kPut:
      put(record.table, record.row, record.column, record.ts, record.value);
      break;
    case WalRecordKind::kPutBatch: {
      std::vector<PutOp> ops;
      ops.reserve(record.batch.size());
      for (const WalRecord::BatchOp& op : record.batch) {
        ops.push_back(PutOp{op.row, op.column, op.value});
      }
      put_batch(record.table, record.ts, ops);
      break;
    }
    case WalRecordKind::kErase:
      erase(record.table, record.row, record.column, record.ts);
      break;
    case WalRecordKind::kCreateTable:
      entry_for(record.table);
      break;
    case WalRecordKind::kDropTable:
      drop_table(record.table);
      break;
    case WalRecordKind::kClear:
      clear();
      break;
    case WalRecordKind::kWaveCommit:
      break;  // tracked by recover() itself
  }
}

std::unique_ptr<DataStore> DataStore::recover(const std::string& dir, DurabilityOptions options,
                                              std::size_t max_versions, RecoveryInfo* info,
                                              ShardOptions shard_options) {
  const auto t0 = std::chrono::steady_clock::now();
  RecoveryInfo local;
  std::filesystem::create_directories(dir);
  const DirScan found = scan_data_dir(dir, /*remove_tmp=*/true);

  auto store = std::make_unique<DataStore>(max_versions, shard_options);
  std::uint64_t cut = 0;
  std::optional<Timestamp> last_wave;

  if (!found.checkpoints.empty()) {
    cut = found.checkpoints.back();
    const std::string path = (std::filesystem::path(dir) / checkpoint_file_name(cut)).string();
    const auto image = load_checkpoint_file(path);
    if (!image) {
      // Hard error by design: the segments this checkpoint replaced were
      // deleted when it became durable, so there is nothing to fall back to.
      throw Error("checkpoint '" + path + "' is corrupt; recovery cannot proceed");
    }
    SF_CHECK(image->max_versions >= 1, "checkpoint max_versions invalid");
    store->max_versions_ = image->max_versions;
    for (const CheckpointTable& table : image->tables) {
      const auto entry = store->entry_for(table.name);
      for (const CheckpointTable::Cell& cell : table.cells) {
        // Each row is re-routed through THIS store's ring — checkpoints are
        // shard-agnostic, so a dir written with any shard count reloads into
        // any other.
        Slot& slot = *entry->slots[store->ring_.shard_of(cell.row)];
        std::unique_lock lock(slot.mutex);
        // Versions are stored newest first; re-put oldest first.
        for (auto it = cell.versions.rbegin(); it != cell.versions.rend(); ++it) {
          slot.table.put(cell.row, cell.column, it->timestamp, it->value);
        }
      }
    }
    if (image->has_committed_wave) last_wave = image->last_committed_wave;
    local.checkpoint_loaded = true;
  }

  // Post-cut segment files grouped by seq (one group = the families of one
  // rotation generation), seqs contiguous from cut + 1.
  std::map<std::uint64_t, std::vector<const FoundSegment*>> groups;
  for (const FoundSegment& segment : found.segments) {
    if (segment.id.seq > cut) groups[segment.id.seq].push_back(&segment);
  }
  {
    std::uint64_t expect = cut + 1;
    for (const auto& [seq, _] : groups) {
      if (seq != expect) {
        throw Error("WAL segment " + std::to_string(expect) + " is missing from '" + dir +
                    "'; recovery cannot proceed");
      }
      ++expect;
    }
  }
  // Final segment seq per family: the only place a torn tail is legal.
  std::map<std::size_t, std::uint64_t> last_seq_of_shard;
  for (const auto& [seq, segments] : groups) {
    for (const FoundSegment* segment : segments) last_seq_of_shard[segment->id.shard] = seq;
  }

  std::uint64_t max_lsn = 0;
  bool any_records = false;
  for (const auto& [seq, segments] : groups) {
    // Read every family's records at this seq (truncating legal torn tails),
    // then merge them back into mutation order by lsn. Records broadcast to
    // every family (create/drop/clear, wave commits) share one lsn across
    // the copies: they are applied once, and a wave commit only counts as
    // durable when EVERY family of the generation holds it — the two-phase
    // barrier that keeps any one shard from being ahead of the stamp.
    std::vector<std::vector<WalRecord>> logs(segments.size());
    for (std::size_t f = 0; f < segments.size(); ++f) {
      const FoundSegment& segment = *segments[f];
      const std::string path = (std::filesystem::path(dir) / segment.name).string();
      WalReader reader(path);
      WalRecord record;
      for (;;) {
        const WalReader::Next next = reader.next(record);
        if (next == WalReader::Next::kEnd) break;
        if (next == WalReader::Next::kTornTail) {
          if (last_seq_of_shard[segment.id.shard] != seq) {
            // Only a crash mid-append can tear a record, and a family only
            // ever appends to its newest segment.
            throw Error("WAL segment '" + path +
                        "' has a torn record but is not the final segment: corruption");
          }
          std::filesystem::resize_file(path, reader.clean_bytes());
          local.truncated_torn_tail = true;
          break;
        }
        logs[f].push_back(std::move(record));
      }
      ++local.segments_replayed;
    }

    if (logs.size() == 1) {
      // Single family at this seq (unsharded dirs, and the common case of a
      // shard generation of one): file order IS mutation order.
      for (const WalRecord& record : logs[0]) {
        max_lsn = std::max(max_lsn, record.lsn);
        any_records = true;
        if (record.kind == WalRecordKind::kWaveCommit) {
          last_wave = record.wave;
        } else {
          store->replay_record(record);
        }
        ++local.records_replayed;
      }
      continue;
    }

    std::vector<std::size_t> head(logs.size(), 0);
    for (;;) {
      // Lowest lsn among the family heads; per-family order is already lsn
      // order (each family draws under its mutex), so this is a k-way merge.
      std::uint64_t min_lsn = 0;
      bool have = false;
      for (std::size_t f = 0; f < logs.size(); ++f) {
        if (head[f] >= logs[f].size()) continue;
        const std::uint64_t lsn = logs[f][head[f]].lsn;
        if (!have || lsn < min_lsn) min_lsn = lsn;
        have = true;
      }
      if (!have) break;
      const WalRecord* chosen = nullptr;
      std::size_t copies = 0;
      for (std::size_t f = 0; f < logs.size(); ++f) {
        if (head[f] >= logs[f].size() || logs[f][head[f]].lsn != min_lsn) continue;
        if (chosen == nullptr) chosen = &logs[f][head[f]];
        ++copies;
        ++head[f];
      }
      max_lsn = std::max(max_lsn, min_lsn);
      any_records = true;
      if (chosen->kind == WalRecordKind::kWaveCommit) {
        // Durable only when every family of the generation has the stamp on
        // disk; a partial broadcast (crash between the two phases) leaves
        // the wave un-durable even though some shards logged it.
        if (copies == segments.size()) last_wave = chosen->wave;
      } else {
        store->replay_record(*chosen);
      }
      ++local.records_replayed;
    }
  }

  // A crash between "checkpoint durable" and "old artifacts deleted" leaves
  // superseded files behind; finish the job now that replay is done.
  if (local.checkpoint_loaded) remove_superseded(dir, cut);

  const std::uint64_t next_seq = (groups.empty() ? cut : groups.rbegin()->first) + 1;
  auto durability = std::make_unique<Durability>();
  durability->dir = dir;
  durability->options = options;
  durability->shards = store->shards();
  durability->segment_seq = next_seq;
  durability->committed_wave = last_wave;
  // Sharded stores continue the store-global lsn sequence past everything on
  // disk; the unsharded store keeps the legacy record-count seq space via
  // first_record_seq below.
  durability->next_lsn.store(any_records ? max_lsn + 1 : 0, std::memory_order_relaxed);
  durability->open_writers(next_seq, /*first_record_seq=*/local.records_replayed);
  store->attach_durability(std::move(durability));

  local.last_durable_wave = last_wave;
  local.duration_seconds = StoreObs::seconds_since(t0);
  if (options.metrics != nullptr) {
    options.metrics->counter("sf_ds_recoveries_total", {}, "Crash recoveries performed").inc();
    options.metrics
        ->histogram("sf_ds_recovery_duration_seconds", obs::duration_buckets(), {},
                    "Recovery wall-clock duration")
        .observe(local.duration_seconds);
  }
  if (info != nullptr) *info = local;
  return store;
}

void DataStore::commit_wave(Timestamp wave) {
  if (!durability_) {
    // Non-durable stores still honor the memory ceiling at wave boundaries.
    maybe_relieve_memory();
    return;
  }
  bool checkpoint_due = false;
  {
    LockRankScope wal_rank(kLockRankWal);
    std::vector<std::unique_lock<std::mutex>> family_locks;
    family_locks.reserve(durability_->families.size());
    for (auto& family : durability_->families) family_locks.emplace_back(family->mutex);
    if (durability_->shards == 1) {
      // Legacy single-call path: append + fsync in one step, identical log
      // and fsync cadence to the unsharded store.
      durability_->families[0]->writer->append_wave_commit(wave);
    } else {
      // Two-phase all-shards barrier. Phase 1 writes the same-lsn commit
      // record into EVERY family's file (flushed, not yet synced); phase 2
      // fsyncs each family. Recovery only honors the stamp when all families
      // hold it, so no shard's durable state can be ahead of the wave
      // boundary regardless of where a crash lands.
      const std::uint64_t lsn =
          durability_->next_lsn.fetch_add(1, std::memory_order_relaxed);
      for (auto& family : durability_->families) {
        family->writer->append_wave_commit(wave, lsn, /*sync_now=*/false);
      }
      for (auto& family : durability_->families) family->writer->sync();
    }
    LockRankScope meta_rank(kLockRankDurabilityMeta);
    std::lock_guard meta(durability_->meta_mutex);
    durability_->committed_wave = wave;
    if (durability_->wave_commits != nullptr) durability_->wave_commits->inc();
    if (durability_->options.checkpoint_every_waves > 0 &&
        ++durability_->waves_since_checkpoint >= durability_->options.checkpoint_every_waves) {
      checkpoint_due = true;
    }
  }
  if (obs_ && obs_->shard_imbalance != nullptr) {
    // Wave boundaries are the natural cadence for the imbalance gauge: cheap
    // (reads N counters once per wave) and aligned with how operators reason
    // about the workload.
    std::uint64_t total = 0;
    std::uint64_t max_ops = 0;
    for (const obs::Counter* counter : obs_->shard_ops) {
      const std::uint64_t v = counter->value();
      total += v;
      max_ops = std::max(max_ops, v);
    }
    if (total > 0) {
      const double mean =
          static_cast<double>(total) / static_cast<double>(obs_->shard_ops.size());
      obs_->shard_imbalance->set(static_cast<double>(max_ops) / mean);
    }
  }
  if (checkpoint_due) checkpoint();
  maybe_relieve_memory();
}

void DataStore::set_memory_options(MemoryOptions options) {
  SF_CHECK(options.trim_keep_versions >= 1 || !options.enabled(),
           "trim_keep_versions must be >= 1");
  memory_options_ = options;
  if (!options.enabled()) {
    memory_pressure_.store(false, std::memory_order_relaxed);
    if (obs_) obs_->memory_pressure->set(0.0);
  }
}

std::size_t DataStore::approx_memory_bytes() const {
  const auto snap = tables_.load(std::memory_order_acquire);
  std::size_t total = 0;
  LockRankScope table_rank(kLockRankTable);
  for (const auto& [name, entry] : *snap) {
    for (const auto& slot : entry->slots) {
      std::shared_lock lock(slot->mutex);
      total += slot->table.approx_bytes();
    }
  }
  return total;
}

std::size_t DataStore::trim_superseded(std::size_t keep_versions) {
  const auto snap = tables_.load(std::memory_order_acquire);
  std::size_t dropped = 0;
  LockRankScope table_rank(kLockRankTable);
  for (const auto& [name, entry] : *snap) {
    for (const auto& slot : entry->slots) {
      std::unique_lock lock(slot->mutex);
      dropped += slot->table.trim_versions(keep_versions);
    }
  }
  return dropped;
}

MemoryStats DataStore::memory_stats() const {
  std::lock_guard lock(memory_mutex_);
  return memory_stats_;
}

void DataStore::maybe_relieve_memory() {
  if (!memory_options_.enabled()) return;
  const std::size_t bytes = approx_memory_bytes();
  {
    std::lock_guard lock(memory_mutex_);
    memory_stats_.tracked_bytes = bytes;
    memory_stats_.peak_tracked_bytes = std::max(memory_stats_.peak_tracked_bytes, bytes);
  }
  if (obs_) obs_->tracked_bytes->set(static_cast<double>(bytes));
  if (bytes <= memory_options_.soft_limit_bytes) {
    memory_pressure_.store(false, std::memory_order_relaxed);
    if (obs_) obs_->memory_pressure->set(0.0);
    return;
  }
  const bool entering = !memory_pressure_.exchange(true, std::memory_order_relaxed);
  if (obs_) obs_->memory_pressure->set(1.0);
  if (entering) {
    {
      std::lock_guard lock(memory_mutex_);
      ++memory_stats_.pressure_events;
    }
    if (obs_) obs_->pressure_events->inc();
    SF_LOG_WARN("ds") << "memory pressure: tracked " << bytes << " bytes > soft limit "
                      << memory_options_.soft_limit_bytes;
    // Checkpoint only on the transition — it is the expensive half of the
    // relief, and repeating it every pressured wave would thrash the disk.
    if (memory_options_.checkpoint_on_pressure && durability_ != nullptr) checkpoint();
  }
  // Trimming is cheap (a linear nver sweep, no allocation), so do it on
  // every pressured wave: newly superseded versions keep being dropped.
  const std::size_t dropped = trim_superseded(memory_options_.trim_keep_versions);
  if (dropped > 0) {
    std::lock_guard lock(memory_mutex_);
    memory_stats_.versions_trimmed += dropped;
  }
  if (obs_ && dropped > 0) obs_->versions_trimmed->inc(dropped);
}

void DataStore::checkpoint() {
  if (durability_ == nullptr) {
    throw StateError("DataStore::checkpoint requires durability (enable_durability/recover)");
  }
  const auto t0 = std::chrono::steady_clock::now();
  CheckpointImage image;
  image.max_versions = max_versions_;
  std::uint64_t cut = 0;
  {
    // Full lock-rank sweep: registry -> every slot (shared) -> every WAL
    // family -> meta, each level in index order — the same global order
    // writers use, so this cannot deadlock. With all writers blocked, no
    // record can land between the cut and the capture: the image contains
    // exactly the effects of segments <= cut, across every family.
    LockRankScope registry_rank(kLockRankRegistry);
    std::lock_guard registry_lock(registry_mutex_);
    const auto snap = tables_.load(std::memory_order_acquire);
    LockRankScope table_rank(kLockRankTable);
    std::vector<std::shared_lock<std::shared_mutex>> table_locks;
    for (const auto& [name, entry] : *snap) {
      for (const auto& slot : entry->slots) table_locks.emplace_back(slot->mutex);
    }
    LockRankScope wal_rank(kLockRankWal);
    std::vector<std::unique_lock<std::mutex>> family_locks;
    family_locks.reserve(durability_->families.size());
    for (auto& family : durability_->families) family_locks.emplace_back(family->mutex);
    LockRankScope meta_rank(kLockRankDurabilityMeta);
    std::lock_guard meta(durability_->meta_mutex);

    cut = durability_->segment_seq;
    for (std::size_t shard = 0; shard < durability_->families.size(); ++shard) {
      auto& family = *durability_->families[shard];
      const std::uint64_t next_record_seq = family.writer->record_seq();
      family.writer.reset();  // flushes; closing this family's segment at the cut
      family.writer = std::make_unique<WalWriter>(
          durability_->segment_path(shard, cut + 1), durability_->options.flush,
          durability_->options.fault_injector, next_record_seq, durability_->lsn_source(),
          durability_->fault_tag(shard));
      if (family.obs.records != nullptr) family.writer->set_obs(&family.obs);
    }
    durability_->segment_seq = cut + 1;
    image.wal_cut_segment = cut;
    image.has_committed_wave = durability_->committed_wave.has_value();
    image.last_committed_wave = durability_->committed_wave.value_or(0);
    durability_->waves_since_checkpoint = 0;

    image.tables.reserve(snap->size());
    for (const auto& [name, entry] : *snap) {
      CheckpointTable table;
      table.name = name;
      for (const auto& slot : entry->slots) {
        table.cells.reserve(table.cells.size() + slot->table.cell_count());
        slot->table.scan_cells([&](const Table::CellView& cv) {
          CheckpointTable::Cell cell;
          cell.row = *cv.row;
          cell.column = *cv.col;
          cell.versions = slot->table.versions(*cv.row, *cv.col);
          table.cells.push_back(std::move(cell));
        });
      }
      image.tables.push_back(std::move(table));
    }
  }
  // The file write happens outside every lock; a crash before the rename
  // leaves the old checkpoint + all segments, which recovery handles.
  write_checkpoint_file(durability_->checkpoint_path(cut), image);
  remove_superseded(durability_->dir, cut);
  if (durability_->checkpoints != nullptr) {
    durability_->checkpoints->inc();
    durability_->checkpoint_duration->observe(StoreObs::seconds_since(t0));
  }
}

void DataStore::sync_wal() {
  if (!durability_) return;
  LockRankScope wal_rank(kLockRankWal);
  for (auto& family : durability_->families) {
    std::lock_guard lock(family->mutex);
    family->writer->sync();
  }
}

std::optional<Timestamp> DataStore::last_committed_wave() const {
  if (!durability_) return std::nullopt;
  LockRankScope meta_rank(kLockRankDurabilityMeta);
  std::lock_guard meta(durability_->meta_mutex);
  return durability_->committed_wave;
}

std::string DataStore::data_dir() const { return durability_ ? durability_->dir : std::string(); }

std::size_t DataStore::subscribe(MutationObserver observer) {
  SF_CHECK(static_cast<bool>(observer), "observer must be callable");
  std::lock_guard lock(observers_mutex_);
  const std::size_t token = next_token_++;
  auto next = std::make_shared<ObserverList>(*observers_.load(std::memory_order_acquire));
  next->emplace_back(token, std::move(observer));
  const std::size_t count = next->size();
  observers_.store(std::shared_ptr<const ObserverList>(std::move(next)),
                   std::memory_order_release);
  observer_count_.store(count, std::memory_order_release);
  return token;
}

void DataStore::unsubscribe(std::size_t token) {
  std::lock_guard lock(observers_mutex_);
  auto next = std::make_shared<ObserverList>(*observers_.load(std::memory_order_acquire));
  std::erase_if(*next, [token](const auto& p) { return p.first == token; });
  const std::size_t count = next->size();
  observers_.store(std::shared_ptr<const ObserverList>(std::move(next)),
                   std::memory_order_release);
  observer_count_.store(count, std::memory_order_release);
}

}  // namespace smartflux::ds
