#include "datastore/datastore.h"

#include <atomic>
#include <chrono>

#include "common/error.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace smartflux::ds {

/// Handles resolved at attach time. Point ops (get/put/erase) always bump a
/// counter; latency observation is sampled 1-in-2^shift so the per-cell hot
/// path stays two relaxed atomics in the common case. Scans are rare and
/// heavy: always timed, and traced when a tracer is attached.
struct DataStore::StoreObs {
  obs::Counter* gets = nullptr;
  obs::Counter* puts = nullptr;
  obs::Counter* erases = nullptr;
  obs::Counter* scans = nullptr;
  obs::Histogram* get_latency = nullptr;
  obs::Histogram* put_latency = nullptr;
  obs::Histogram* scan_latency = nullptr;
  obs::Tracer* tracer = nullptr;
  std::uint64_t sample_mask = 63;

  StoreObs(obs::MetricsRegistry& registry, obs::Tracer* tr, unsigned shift) : tracer(tr) {
    sample_mask = (std::uint64_t{1} << shift) - 1;
    auto op_counter = [&registry](const char* op) {
      return &registry.counter("sf_ds_ops_total", {{"op", op}},
                               "Datastore operations by kind");
    };
    auto op_latency = [&registry](const char* op) {
      return &registry.histogram("sf_ds_op_duration_seconds", obs::duration_buckets(),
                                 {{"op", op}},
                                 "Datastore op latency (point ops sampled 1-in-2^shift)");
    };
    gets = op_counter("get");
    puts = op_counter("put");
    erases = op_counter("erase");
    scans = op_counter("scan");
    get_latency = op_latency("get");
    put_latency = op_latency("put");
    scan_latency = op_latency("scan");
  }

  /// Bumps the op counter and decides latency sampling off its pre-increment
  /// value — one atomic per point op, and each op kind samples its own
  /// stream (every 2^shift-th get, every 2^shift-th put, ...).
  bool count_and_sample(obs::Counter& op) noexcept {
    return (op.fetch_inc() & sample_mask) == 0;
  }

  static double seconds_since(std::chrono::steady_clock::time_point t0) noexcept {
    return static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now() - t0)
                                   .count()) *
           1e-9;
  }
};

DataStore::DataStore(std::size_t max_versions) : max_versions_(max_versions) {
  SF_CHECK(max_versions >= 1, "DataStore must retain at least one version");
}

DataStore::~DataStore() = default;

void DataStore::set_instrumentation(obs::MetricsRegistry* registry, obs::Tracer* tracer,
                                    unsigned latency_sample_shift) {
  SF_CHECK(latency_sample_shift < 32, "latency_sample_shift out of range");
  if (registry == nullptr) {
    obs_.reset();
    return;
  }
  obs_ = std::make_unique<StoreObs>(*registry, tracer, latency_sample_shift);
}

DataStore::TableEntry& DataStore::entry_for(const TableName& table) {
  std::lock_guard lock(tables_mutex_);
  auto& slot = tables_[table];
  if (!slot) slot = std::make_unique<TableEntry>(max_versions_);
  return *slot;
}

const DataStore::TableEntry* DataStore::find_entry(const TableName& table) const {
  std::lock_guard lock(tables_mutex_);
  auto it = tables_.find(table);
  return it == tables_.end() ? nullptr : it->second.get();
}

void DataStore::put(const TableName& table, const RowKey& row, const ColumnKey& column,
                    Timestamp ts, double value) {
  std::chrono::steady_clock::time_point t0;
  bool timed = false;
  if (obs_) {
    timed = obs_->count_and_sample(*obs_->puts);
    if (timed) t0 = std::chrono::steady_clock::now();
  }
  TableEntry& entry = entry_for(table);
  std::optional<double> previous;
  {
    std::lock_guard lock(entry.mutex);
    previous = entry.table.put(row, column, ts, value);
  }
  Mutation m;
  m.kind = MutationKind::kPut;
  m.table = table;
  m.row = row;
  m.column = column;
  m.timestamp = ts;
  m.new_value = value;
  m.old_value = previous.value_or(0.0);
  m.had_old_value = previous.has_value();
  notify(m);
  if (timed) obs_->put_latency->observe(StoreObs::seconds_since(t0));
}

void DataStore::erase(const TableName& table, const RowKey& row, const ColumnKey& column,
                      Timestamp ts) {
  if (obs_) obs_->erases->inc();
  const TableEntry* entry = find_entry(table);
  if (entry == nullptr) return;
  std::optional<double> removed;
  {
    auto& mutable_entry = const_cast<TableEntry&>(*entry);
    std::lock_guard lock(mutable_entry.mutex);
    removed = mutable_entry.table.erase(row, column);
  }
  if (!removed) return;
  Mutation m;
  m.kind = MutationKind::kDelete;
  m.table = table;
  m.row = row;
  m.column = column;
  m.timestamp = ts;
  m.old_value = *removed;
  m.had_old_value = true;
  notify(m);
}

std::optional<double> DataStore::get(const TableName& table, const RowKey& row,
                                     const ColumnKey& column) const {
  std::chrono::steady_clock::time_point t0;
  bool timed = false;
  if (obs_) {
    timed = obs_->count_and_sample(*obs_->gets);
    if (timed) t0 = std::chrono::steady_clock::now();
  }
  const TableEntry* entry = find_entry(table);
  std::optional<double> out;
  if (entry != nullptr) {
    std::lock_guard lock(entry->mutex);
    out = entry->table.get(row, column);
  }
  if (timed) obs_->get_latency->observe(StoreObs::seconds_since(t0));
  return out;
}

std::optional<double> DataStore::get_previous(const TableName& table, const RowKey& row,
                                              const ColumnKey& column) const {
  // Folded into the "get" op label: same access shape, older version.
  if (obs_) obs_->gets->inc();
  const TableEntry* entry = find_entry(table);
  if (entry == nullptr) return std::nullopt;
  std::lock_guard lock(entry->mutex);
  return entry->table.get_previous(row, column);
}

void DataStore::scan_container(
    const ContainerRef& container,
    const std::function<void(const RowKey&, const ColumnKey&, double)>& visit) const {
  std::chrono::steady_clock::time_point t0;
  if (obs_) {
    obs_->scans->inc();
    t0 = std::chrono::steady_clock::now();
  }
  const TableEntry* entry = find_entry(container.table());
  if (entry != nullptr) {
    std::lock_guard lock(entry->mutex);
    entry->table.scan([&](const RowKey& row, const ColumnKey& column, double value) {
      if (container.matches(container.table(), row, column)) visit(row, column, value);
    });
  }
  if (obs_) {
    obs_->scan_latency->observe(StoreObs::seconds_since(t0));
    if (obs_->tracer != nullptr) {
      obs_->tracer->record("ds_scan:" + container.table(), "ds", 0, t0,
                           std::chrono::steady_clock::now() - t0);
    }
  }
}

std::map<std::string, double> DataStore::snapshot(const ContainerRef& container) const {
  std::map<std::string, double> out;
  scan_container(container, [&out](const RowKey& row, const ColumnKey& column, double value) {
    out.emplace(row + '\x1f' + column, value);
  });
  return out;
}

std::size_t DataStore::cell_count(const TableName& table) const {
  const TableEntry* entry = find_entry(table);
  if (entry == nullptr) return 0;
  std::lock_guard lock(entry->mutex);
  return entry->table.cell_count();
}

std::size_t DataStore::container_cell_count(const ContainerRef& container) const {
  std::size_t n = 0;
  scan_container(container, [&n](const RowKey&, const ColumnKey&, double) { ++n; });
  return n;
}

bool DataStore::has_table(const TableName& table) const { return find_entry(table) != nullptr; }

std::vector<TableName> DataStore::table_names() const {
  std::lock_guard lock(tables_mutex_);
  std::vector<TableName> out;
  out.reserve(tables_.size());
  for (const auto& [name, _] : tables_) out.push_back(name);
  return out;
}

void DataStore::drop_table(const TableName& table) {
  std::lock_guard lock(tables_mutex_);
  tables_.erase(table);
}

void DataStore::clear() {
  std::lock_guard lock(tables_mutex_);
  tables_.clear();
}

std::size_t DataStore::subscribe(MutationObserver observer) {
  SF_CHECK(static_cast<bool>(observer), "observer must be callable");
  std::lock_guard lock(observers_mutex_);
  const std::size_t token = next_token_++;
  observers_.emplace_back(token, std::move(observer));
  return token;
}

void DataStore::unsubscribe(std::size_t token) {
  std::lock_guard lock(observers_mutex_);
  std::erase_if(observers_, [token](const auto& p) { return p.first == token; });
}

void DataStore::notify(const Mutation& m) const {
  // Copy the observer list so observers may unsubscribe others concurrently.
  std::vector<MutationObserver> copy;
  {
    std::lock_guard lock(observers_mutex_);
    copy.reserve(observers_.size());
    for (const auto& [_, obs] : observers_) copy.push_back(obs);
  }
  for (const auto& obs : copy) obs(m);
}

}  // namespace smartflux::ds
