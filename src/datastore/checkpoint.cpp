#include "datastore/checkpoint.h"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "common/error.h"
#include "common/fsync.h"
#include "common/hashing.h"

namespace smartflux::ds {

namespace {

constexpr char kMagic[8] = {'s', 'f', 'c', 'k', 'p', 't', 'v', '1'};

void put_u32(std::string& out, std::uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out.append(buf, 4);
}

void put_u64(std::string& out, std::uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out.append(buf, 8);
}

void put_f64(std::string& out, double v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out.append(buf, 8);
}

void put_str(std::string& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.append(s);
}

class Decoder {
 public:
  Decoder(const char* data, std::size_t n) : p_(data), end_(data + n) {}

  std::uint32_t u32() {
    need(4);
    std::uint32_t v;
    std::memcpy(&v, p_, 4);
    p_ += 4;
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v;
    std::memcpy(&v, p_, 8);
    p_ += 8;
    return v;
  }
  double f64() {
    need(8);
    double v;
    std::memcpy(&v, p_, 8);
    p_ += 8;
    return v;
  }
  std::string str() {
    const std::uint32_t n = u32();
    need(n);
    std::string s(p_, n);
    p_ += n;
    return s;
  }
  bool exhausted() const noexcept { return p_ == end_; }
  bool ok() const noexcept { return ok_; }

 private:
  void need(std::size_t n) {
    if (static_cast<std::size_t>(end_ - p_) < n) {
      ok_ = false;
      throw Error("checkpoint body underrun");
    }
  }

  const char* p_;
  const char* end_;
  bool ok_ = true;
};

std::string encode(const CheckpointImage& image) {
  std::string body;
  put_u64(body, image.max_versions);
  put_u64(body, image.wal_cut_segment);
  put_u64(body, image.last_committed_wave);
  put_u32(body, image.has_committed_wave ? 1 : 0);
  put_u32(body, static_cast<std::uint32_t>(image.tables.size()));
  for (const CheckpointTable& table : image.tables) {
    put_str(body, table.name);
    put_u64(body, table.cells.size());
    for (const CheckpointTable::Cell& cell : table.cells) {
      put_str(body, cell.row);
      put_str(body, cell.column);
      put_u32(body, static_cast<std::uint32_t>(cell.versions.size()));
      for (const CellVersion& v : cell.versions) {
        put_u64(body, v.timestamp);
        put_f64(body, v.value);
      }
    }
  }
  return body;
}

CheckpointImage decode(const std::string& body) {
  Decoder dec(body.data(), body.size());
  CheckpointImage image;
  image.max_versions = dec.u64();
  image.wal_cut_segment = dec.u64();
  image.last_committed_wave = dec.u64();
  image.has_committed_wave = dec.u32() != 0;
  const std::uint32_t table_count = dec.u32();
  image.tables.reserve(table_count);
  for (std::uint32_t t = 0; t < table_count; ++t) {
    CheckpointTable table;
    table.name = dec.str();
    const std::uint64_t cell_count = dec.u64();
    table.cells.reserve(cell_count);
    for (std::uint64_t c = 0; c < cell_count; ++c) {
      CheckpointTable::Cell cell;
      cell.row = dec.str();
      cell.column = dec.str();
      const std::uint32_t nver = dec.u32();
      cell.versions.reserve(nver);
      for (std::uint32_t v = 0; v < nver; ++v) {
        CellVersion ver;
        ver.timestamp = dec.u64();
        ver.value = dec.f64();
        cell.versions.push_back(ver);
      }
      table.cells.push_back(std::move(cell));
    }
    image.tables.push_back(std::move(table));
  }
  if (!dec.exhausted()) throw Error("checkpoint body has trailing bytes");
  return image;
}

}  // namespace

void write_checkpoint_file(const std::string& path, const CheckpointImage& image) {
  const std::string body = encode(image);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os) throw Error("cannot open checkpoint temp file '" + tmp + "'");
    os.write(kMagic, sizeof kMagic);
    std::string header;
    put_u64(header, body.size());
    put_u32(header, crc32c(body.data(), body.size()));
    os.write(header.data(), static_cast<std::streamsize>(header.size()));
    os.write(body.data(), static_cast<std::streamsize>(body.size()));
    os.flush();
    if (!os) throw Error("checkpoint write failed for '" + tmp + "'");
  }
  fsync_path(tmp);
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    throw Error("checkpoint rename '" + tmp + "' -> '" + path + "' failed: " + ec.message());
  }
  fsync_dir(std::filesystem::path(path).parent_path().string());
}

std::optional<CheckpointImage> load_checkpoint_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return std::nullopt;
  std::string data((std::istreambuf_iterator<char>(is)), std::istreambuf_iterator<char>());
  if (is.bad()) return std::nullopt;
  if (data.size() < sizeof kMagic + 12) return std::nullopt;
  if (std::memcmp(data.data(), kMagic, sizeof kMagic) != 0) return std::nullopt;
  std::uint64_t body_len = 0;
  std::uint32_t crc = 0;
  std::memcpy(&body_len, data.data() + sizeof kMagic, 8);
  std::memcpy(&crc, data.data() + sizeof kMagic + 8, 4);
  if (data.size() != sizeof kMagic + 12 + body_len) return std::nullopt;
  const std::string body = data.substr(sizeof kMagic + 12);
  if (crc32c(body.data(), body.size()) != crc) return std::nullopt;
  try {
    return decode(body);
  } catch (const Error&) {
    return std::nullopt;
  }
}

}  // namespace smartflux::ds
