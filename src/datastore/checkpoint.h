#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "datastore/types.h"

namespace smartflux::ds {

/// In-memory image of one checkpointed table: every live cell with its full
/// retained version history (newest first, as Table::versions returns), in
/// scan (row, column) order.
struct CheckpointTable {
  struct Cell {
    std::string row;
    std::string column;
    std::vector<CellVersion> versions;  ///< newest first
  };
  std::string name;
  std::vector<Cell> cells;
};

/// A complete store snapshot plus the WAL position it cuts at: recovery =
/// load image + replay segments > wal_cut_segment.
struct CheckpointImage {
  std::uint64_t max_versions = 2;
  /// Highest WAL segment whose effects are contained in the image.
  std::uint64_t wal_cut_segment = 0;
  /// Newest committed wave at the cut (0 = none committed yet).
  std::uint64_t last_committed_wave = 0;
  bool has_committed_wave = false;
  std::vector<CheckpointTable> tables;
};

/// Writes the image durably: serialize (CRC32C-trailed binary) to
/// `<path>.tmp`, fsync, rename over `path`, fsync the directory. A crash at
/// any point leaves either the old checkpoint or the complete new one.
void write_checkpoint_file(const std::string& path, const CheckpointImage& image);

/// Loads and validates a checkpoint. Returns nullopt only for files that are
/// structurally not a checkpoint or fail their checksum — the caller decides
/// whether that is fatal (it is, for the newest checkpoint: older segments
/// have already been deleted).
std::optional<CheckpointImage> load_checkpoint_file(const std::string& path);

}  // namespace smartflux::ds
