#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <span>
#include <string>
#include <vector>

#include "datastore/container_ref.h"
#include "datastore/durability.h"
#include "datastore/flat_snapshot.h"
#include "datastore/shard_ring.h"
#include "datastore/table.h"
#include "datastore/types.h"

namespace smartflux::obs {
class MetricsRegistry;
class Tracer;
}  // namespace smartflux::obs

namespace smartflux::ds {

/// Observer callback invoked synchronously for every mutation, equivalent to
/// the paper's data-store-level Observer / adapted client-library options for
/// making SmartFlux aware of all updates (§4).
///
/// Reentrancy rule: observers run *outside* every store lock (the mutation is
/// already applied and the table lock released), so an observer may read from
/// the store — including the table that just changed. Observers must not
/// *write* to the store: a write would re-enter notification and can recurse
/// without bound. A slow observer delays only its own writer thread, never
/// concurrent readers or writers to other tables.
using MutationObserver = std::function<void(const Mutation&)>;

/// Soft memory ceiling for the store. Crossing soft_limit_bytes at a wave
/// commit flips the pressure gauge and triggers relief: a checkpoint (on the
/// first pressured wave only — it rotates the WAL and bounds recovery debt)
/// followed by trimming superseded cell versions down to
/// trim_keep_versions. The ceiling is *soft*: the SoA tables keep their
/// version slots inline, so trimming shrinks the logical history (as-of
/// reads, checkpoints) rather than freeing bytes — the hard bound on
/// footprint is the caller's admission control (bounded key universe +
/// backpressured ingest), which the pressure gauge exists to drive.
struct MemoryOptions {
  /// Tracked-bytes ceiling; 0 disables the whole mechanism.
  std::size_t soft_limit_bytes = 0;
  /// Versions each cell keeps after a pressure trim. Must cover the deepest
  /// in-flight as-of read window (pipelined waves!).
  std::size_t trim_keep_versions = 1;
  /// Checkpoint when pressure is first entered (durable stores only).
  bool checkpoint_on_pressure = true;

  bool enabled() const noexcept { return soft_limit_bytes > 0; }
};

/// Ceiling bookkeeping, readable without a metrics registry.
struct MemoryStats {
  std::size_t tracked_bytes = 0;       ///< last sample (wave-commit cadence)
  std::size_t peak_tracked_bytes = 0;
  std::size_t pressure_events = 0;     ///< transitions into pressure
  std::size_t versions_trimmed = 0;
};

/// In-process, versioned, column-oriented key-value store standing in for
/// HBase. Tables are created lazily on first write. All public operations
/// are thread-safe. Concurrency model:
///
///  - Each table is partitioned into ShardOptions::shards lock domains by
///    consistent hashing of the row key (one domain total with the default
///    shards = 1): readers of a shard run concurrently with each other and
///    with writers to *other* shards; only a write to the same shard
///    excludes. With durability on, each shard also owns its own WAL segment
///    family, so concurrent writers to different shards never contend on one
///    log mutex and fsyncs amortize per shard.
///  - The table registry is RCU-style (an atomically swapped immutable map
///    snapshot), so point ops never touch a registry mutex; only table
///    creation/drop serializes on one.
///  - The observer list is copy-on-write: writers grab an immutable
///    snapshot of it per op (or once per batch) with a single atomic load.
///  - Lock order (asserted in debug builds, see common/lock_rank.h):
///    registry -> table shard slot -> WAL shard family -> durability meta;
///    same-rank locks in shard-index order.
class DataStore {
 public:
  explicit DataStore(std::size_t max_versions = 2, ShardOptions shard_options = {});
  ~DataStore();

  DataStore(const DataStore&) = delete;
  DataStore& operator=(const DataStore&) = delete;

  /// Attaches observability sinks (neither owned; pass nullptr to detach).
  /// Counts every get/put/erase/scan under sf_ds_ops_total{op=...}; latencies
  /// go to sf_ds_op_duration_seconds{op=...}, sampled 1-in-2^sample_shift for
  /// point ops (scans, being rare and heavy, are always timed and — when a
  /// tracer is attached — also recorded as "ds_scan:<table>" spans; batches
  /// are always timed whole under op="put_batch"). Not thread-safe against
  /// in-flight operations: attach before use.
  void set_instrumentation(obs::MetricsRegistry* registry, obs::Tracer* tracer = nullptr,
                           unsigned latency_sample_shift = 6);

  /// Writes a cell, notifying observers. Creates the table if needed.
  void put(const TableName& table, const RowKey& row, const ColumnKey& column, Timestamp ts,
           double value);

  /// Writes a batch of cells into one table under a single exclusive lock
  /// acquisition, with the observer list snapshotted once for the whole
  /// batch. Equivalent to a put() loop cell for cell (same versioning, same
  /// per-mutation observer callbacks in batch order), but writers pay the
  /// lock, registry lookup and observer-list load once instead of per cell.
  /// Observers fire after the whole batch has been applied, so an observer
  /// reading the store may already see later cells of the same batch.
  void put_batch(const TableName& table, Timestamp ts, std::span<const PutOp> ops);

  /// Deletes a cell (all versions), notifying observers if it existed.
  void erase(const TableName& table, const RowKey& row, const ColumnKey& column, Timestamp ts);

  std::optional<double> get(const TableName& table, const RowKey& row,
                            const ColumnKey& column) const;
  std::optional<double> get_previous(const TableName& table, const RowKey& row,
                                     const ColumnKey& column) const;

  /// As-of-wave reads: the newest version with timestamp <= ts (and the one
  /// before it). The isolation primitive pipelined wave execution is built
  /// on — a client bound to wave w reads through these, so wave w+1's
  /// concurrently ingested versions are invisible to it. Identical to
  /// get/get_previous when nothing newer than ts has been written.
  std::optional<double> get_at(const TableName& table, const RowKey& row,
                               const ColumnKey& column, Timestamp ts) const;
  std::optional<double> get_previous_at(const TableName& table, const RowKey& row,
                                        const ColumnKey& column, Timestamp ts) const;

  /// Visits the latest value of every cell inside `container`, in
  /// (row, column) order.
  ///
  /// Deadlock contract: the visitor runs under the table's *shared* lock.
  /// It therefore must not write to the store for the same table (the
  /// exclusive lock would wait on the scan) and must not re-enter any
  /// locking read of the same table either (recursively taking a shared
  /// lock is undefined behavior and can deadlock once a writer queues in
  /// between). Reads of *other* tables are safe. When the visitor needs to
  /// touch the store — or just run for a while without blocking writers —
  /// take a `snapshot_flat()` and iterate that instead: it copies the
  /// container out under the lock and releases it before you look at the
  /// data.
  void scan_container(const ContainerRef& container,
                      const std::function<void(const RowKey&, const ColumnKey&, double)>& visit)
      const;

  /// As-of-wave scan_container: visits each cell's value as of `ts`,
  /// skipping cells that only exist after it. Same deadlock contract.
  void scan_container_at(
      const ContainerRef& container, Timestamp ts,
      const std::function<void(const RowKey&, const ColumnKey&, double)>& visit) const;

  /// Flat snapshot of a container: contiguous entries in (row, column)
  /// order with interner-backed zero-copy key views — the cheap path
  /// monitoring harvests through. The snapshot stays valid after
  /// `drop_table`/`clear` (it keeps the source table alive).
  FlatSnapshot snapshot_flat(const ContainerRef& container) const;

  /// Dense snapshot of a container keyed by "row\x1f column". Kept for
  /// compatibility; new code should prefer `snapshot_flat` (no per-cell
  /// string concatenation or tree insertion).
  std::map<std::string, double> snapshot(const ContainerRef& container) const;

  /// Full retained version history of one cell, newest first (empty if the
  /// cell does not exist). The exact-state primitive the crash-matrix tests
  /// and checkpoints compare/serialize with.
  std::vector<CellVersion> cell_versions(const TableName& table, const RowKey& row,
                                         const ColumnKey& column) const;

  std::size_t cell_count(const TableName& table) const;
  std::size_t container_cell_count(const ContainerRef& container) const;
  bool has_table(const TableName& table) const;
  std::vector<TableName> table_names() const;
  void drop_table(const TableName& table);
  void clear();

  // --- Durability (WAL + checkpoints + crash-consistent recovery) ----------

  /// Turns on write-ahead logging into `dir` (created if missing). Every
  /// mutation from here on is appended as a checksummed record; the
  /// DurabilityOptions flush policy decides the fsync cadence. The store
  /// must still be empty and `dir` must not already hold WAL/checkpoint
  /// files — attach to an existing data dir with recover() instead.
  void enable_durability(const std::string& dir, DurabilityOptions options = {});

  /// Crash-consistent recovery: loads the newest checkpoint in `dir` (if
  /// any), replays the WAL suffix — truncating a torn trailing record, a
  /// mid-log checksum error is a hard Error — and returns a store that
  /// continues durable logging into the same dir (a fresh segment). An
  /// empty/missing dir yields a fresh durable store. `info`, when non-null,
  /// receives what was found (incl. the last durable wave for the
  /// wave-boundary consistency rule).
  /// `shard_options` shapes the *recovered* store; the dir may have been
  /// written with any shard count (legacy and sharded segment names both
  /// replay, with every row re-routed through the new ring).
  static std::unique_ptr<DataStore> recover(const std::string& dir,
                                            DurabilityOptions options = {},
                                            std::size_t max_versions = 2,
                                            RecoveryInfo* info = nullptr,
                                            ShardOptions shard_options = {});

  /// Stamps the wave boundary: appends a wave-commit record and fsyncs (the
  /// durability point of the kEveryWave policy, and the data half of the
  /// "wave recovered iff data + journal record on disk" rule). Triggers an
  /// automatic checkpoint every checkpoint_every_waves commits. No-op when
  /// durability is disabled. The workflow engine calls this after each
  /// completed wave, before appending the wave's journal record.
  void commit_wave(Timestamp wave);

  /// On-demand checkpoint: serializes every table (full version history) to
  /// a new checkpoint file, rotates the WAL to a fresh segment, and deletes
  /// the segments + older checkpoints the new one replaces, bounding
  /// recovery cost. Writers are blocked for the in-memory capture only (the
  /// file write happens outside all locks). Throws StateError when
  /// durability is disabled.
  void checkpoint();

  /// Flushes and fsyncs the WAL regardless of policy. No-op when disabled.
  void sync_wal();

  bool durable() const noexcept { return durability_ != nullptr; }
  /// Newest wave stamped via commit_wave (or found durable by recover()).
  std::optional<Timestamp> last_committed_wave() const;
  /// Data directory, empty when durability is disabled.
  std::string data_dir() const;

  // --- Soft memory ceiling --------------------------------------------------

  /// Installs (or disables, with a default-constructed value) the soft
  /// memory ceiling. Checked at every commit_wave — including on
  /// non-durable stores, where commit_wave is otherwise a no-op.
  void set_memory_options(MemoryOptions options);
  const MemoryOptions& memory_options() const noexcept { return memory_options_; }

  /// Rough tracked heap footprint across every table and shard (capacities
  /// of the SoA arrays + interned keys). Takes each slot's shared lock in
  /// turn, so the figure is a consistent-per-slot approximation.
  std::size_t approx_memory_bytes() const;

  /// True while the last ceiling check found tracked bytes above the limit.
  bool memory_pressure() const noexcept {
    return memory_pressure_.load(std::memory_order_relaxed);
  }

  /// Trims every cell of every table to at most `keep_versions` retained
  /// versions (see Table::trim_versions for the read-window caution).
  /// Returns the number of versions dropped.
  std::size_t trim_superseded(std::size_t keep_versions);

  MemoryStats memory_stats() const;

  /// Registers a mutation observer; returns a token for unsubscribe.
  /// See MutationObserver for the reentrancy rule.
  std::size_t subscribe(MutationObserver observer);
  void unsubscribe(std::size_t token);

  std::size_t max_versions() const noexcept { return max_versions_; }
  std::size_t shards() const noexcept { return ring_.shards(); }
  const ShardOptions& shard_options() const noexcept { return shard_options_; }
  /// Shard owning `row` — exposed for tests and benchmarks.
  std::size_t shard_of(const RowKey& row) const noexcept { return ring_.shard_of(row); }

 private:
  /// One lock domain of a table: with N shards each table is a vector of N
  /// slots, a row always living in slots[ring.shard_of(row)]. Slots are
  /// heap-separated so the shared_mutexes of adjacent shards never share a
  /// cache line.
  struct Slot {
    mutable std::shared_mutex mutex;
    Table table;
    explicit Slot(std::size_t max_versions) : table(max_versions) {}
  };
  struct TableEntry {
    std::vector<std::unique_ptr<Slot>> slots;
    TableEntry(std::size_t max_versions, std::size_t shards) {
      slots.reserve(shards);
      for (std::size_t i = 0; i < shards; ++i) {
        slots.push_back(std::make_unique<Slot>(max_versions));
      }
    }
  };
  using TableMap = std::map<TableName, std::shared_ptr<TableEntry>>;
  using ObserverList = std::vector<std::pair<std::size_t, MutationObserver>>;
  struct StoreObs;     ///< pre-resolved metric handles (datastore.cpp)
  struct Durability;   ///< WAL writer + checkpoint bookkeeping (datastore.cpp)

  /// Existing entry or nullptr, via one atomic registry-snapshot load.
  std::shared_ptr<TableEntry> find_entry(const TableName& table) const;
  /// Existing entry, or creates one (copy-on-write registry swap), logging a
  /// create-table record (broadcast to every WAL family) when durable.
  std::shared_ptr<TableEntry> entry_for(const TableName& table);
  /// Applies one sub-batch (the ops of `indices`) to its shard slot and WAL
  /// family, recording previous values at the ops' original positions.
  void apply_shard_batch(const TableName& table, TableEntry& entry, std::size_t shard,
                         Timestamp ts, std::span<const PutOp> ops,
                         const std::vector<std::uint32_t>& indices,
                         std::vector<std::pair<double, bool>>* previous);
  /// Merged as-of scan across every slot of a table (shards > 1 path):
  /// locks all slots shared, gathers matches, restores (row, column) order.
  void scan_slots_merged(const TableEntry& entry, const ContainerRef& container,
                         std::optional<Timestamp> at,
                         const std::function<void(const RowKey&, const ColumnKey&, double)>&
                             visit) const;
  /// Installs an open WAL + bookkeeping (shared by enable_durability and
  /// recover). Wires the WAL metric handles when instrumentation is on.
  void attach_durability(std::unique_ptr<Durability> durability);
  /// Ceiling check + relief, run at the tail of every commit_wave outside
  /// all locks (checkpoint() and trim_superseded() take their own).
  void maybe_relieve_memory();
  /// Replays one WAL record into this (not-yet-durable) store.
  void replay_record(const struct WalRecord& record);
  std::shared_ptr<const ObserverList> observer_snapshot() const {
    return observers_.load(std::memory_order_acquire);
  }

  std::size_t max_versions_;
  ShardOptions shard_options_;
  ShardRing ring_;
  std::unique_ptr<StoreObs> obs_;  ///< null unless set_instrumentation attached one
  /// Null unless durability is enabled. The per-family WAL mutexes inside
  /// serialize appends; they are always taken *after* a table/registry lock
  /// (see the lock-rank order above), so log order matches apply order per
  /// shard.
  std::unique_ptr<Durability> durability_;

  mutable std::mutex registry_mutex_;  ///< serializes table create/drop/clear only
  std::atomic<std::shared_ptr<const TableMap>> tables_;
  /// Globally unique stamp of the current `tables_` snapshot (bumped on every
  /// create/drop/clear). Point ops validate a per-thread registry cache
  /// against it with one lock-free load, skipping the refcounted
  /// atomic-shared_ptr load while the registry is unchanged (find_entry).
  std::atomic<std::uint64_t> registry_gen_;

  MemoryOptions memory_options_;
  std::atomic<bool> memory_pressure_{false};
  mutable std::mutex memory_mutex_;  ///< guards memory_stats_
  MemoryStats memory_stats_;

  std::mutex observers_mutex_;  ///< serializes subscribe/unsubscribe only
  std::atomic<std::shared_ptr<const ObserverList>> observers_;
  /// Mirror of observers_->size(): lets writers skip the observer-list
  /// snapshot load entirely on the (common) unobserved store.
  std::atomic<std::size_t> observer_count_{0};
  std::size_t next_token_ = 1;  ///< guarded by observers_mutex_
};

}  // namespace smartflux::ds
