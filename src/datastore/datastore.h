#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "datastore/container_ref.h"
#include "datastore/table.h"
#include "datastore/types.h"

namespace smartflux::obs {
class MetricsRegistry;
class Tracer;
}  // namespace smartflux::obs

namespace smartflux::ds {

/// Observer callback invoked synchronously for every mutation, equivalent to
/// the paper's data-store-level Observer / adapted client-library options for
/// making SmartFlux aware of all updates (§4). Observers must not call back
/// into the store.
using MutationObserver = std::function<void(const Mutation&)>;

/// In-process, versioned, column-oriented key-value store standing in for
/// HBase. Tables are created lazily on first write. All public operations are
/// thread-safe (per-table locking; table map under its own mutex).
class DataStore {
 public:
  explicit DataStore(std::size_t max_versions = 2);
  ~DataStore();

  DataStore(const DataStore&) = delete;
  DataStore& operator=(const DataStore&) = delete;

  /// Attaches observability sinks (neither owned; pass nullptr to detach).
  /// Counts every get/put/erase/scan under sf_ds_ops_total{op=...}; latencies
  /// go to sf_ds_op_duration_seconds{op=...}, sampled 1-in-2^sample_shift for
  /// point ops (scans, being rare and heavy, are always timed and — when a
  /// tracer is attached — also recorded as "ds_scan:<table>" spans). Not
  /// thread-safe against in-flight operations: attach before use.
  void set_instrumentation(obs::MetricsRegistry* registry, obs::Tracer* tracer = nullptr,
                           unsigned latency_sample_shift = 6);

  /// Writes a cell, notifying observers. Creates the table if needed.
  void put(const TableName& table, const RowKey& row, const ColumnKey& column, Timestamp ts,
           double value);

  /// Deletes a cell (all versions), notifying observers if it existed.
  void erase(const TableName& table, const RowKey& row, const ColumnKey& column, Timestamp ts);

  std::optional<double> get(const TableName& table, const RowKey& row,
                            const ColumnKey& column) const;
  std::optional<double> get_previous(const TableName& table, const RowKey& row,
                                     const ColumnKey& column) const;

  /// Visits the latest value of every cell inside `container`, in
  /// (row, column) order. The visitor runs under the table lock and must
  /// not call back into the store for the same table (self-deadlock);
  /// collect into a local structure instead.
  void scan_container(const ContainerRef& container,
                      const std::function<void(const RowKey&, const ColumnKey&, double)>& visit)
      const;

  /// Dense snapshot of a container keyed by "row\x1f column".
  std::map<std::string, double> snapshot(const ContainerRef& container) const;

  std::size_t cell_count(const TableName& table) const;
  std::size_t container_cell_count(const ContainerRef& container) const;
  bool has_table(const TableName& table) const;
  std::vector<TableName> table_names() const;
  void drop_table(const TableName& table);
  void clear();

  /// Registers a mutation observer; returns a token for unsubscribe.
  std::size_t subscribe(MutationObserver observer);
  void unsubscribe(std::size_t token);

 private:
  struct TableEntry {
    mutable std::mutex mutex;
    Table table;
    explicit TableEntry(std::size_t max_versions) : table(max_versions) {}
  };
  struct StoreObs;  ///< pre-resolved metric handles (datastore.cpp)

  TableEntry& entry_for(const TableName& table);
  const TableEntry* find_entry(const TableName& table) const;
  void notify(const Mutation& m) const;

  std::size_t max_versions_;
  std::unique_ptr<StoreObs> obs_;  ///< null unless set_instrumentation attached one
  mutable std::mutex tables_mutex_;
  std::map<TableName, std::unique_ptr<TableEntry>> tables_;

  mutable std::mutex observers_mutex_;
  std::vector<std::pair<std::size_t, MutationObserver>> observers_;
  std::size_t next_token_ = 1;
};

}  // namespace smartflux::ds
