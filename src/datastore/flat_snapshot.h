#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace smartflux::ds {

/// One element of a FlatSnapshot. `id` packs the source table's dense
/// interner ids ((row_id << 32) | col_id) and is stable for the table's
/// lifetime; `row`/`col` point into the table's interner storage and stay
/// valid for as long as the owning snapshot (its keepalive handle) lives.
struct FlatEntry {
  std::uint64_t id = 0;
  const std::string* row = nullptr;
  const std::string* col = nullptr;
  double value = 0.0;
};

/// Allocation-light container snapshot: one contiguous vector of entries
/// sorted by (row, column) string order — the same order `scan_container`
/// visits — replacing the `std::map<std::string, double>` keyed by
/// "row\x1f column" that monitoring used to rebuild every wave. Taking one
/// costs a single vector fill under the table's shared lock; no per-cell
/// string concatenation or tree insertion.
///
/// Element identity across snapshots: two snapshots with the same non-null
/// `keyspace()` (i.e. taken from the same table) may treat equal `id`s as
/// equal elements; across different tables/stores elements compare by their
/// key strings. `core::compute_change` exploits the id fast path.
class FlatSnapshot {
 public:
  FlatSnapshot() = default;
  FlatSnapshot(std::shared_ptr<const void> keepalive, const void* keyspace,
               std::vector<FlatEntry> entries)
      : keepalive_(std::move(keepalive)), keyspace_(keyspace), entries_(std::move(entries)) {}

  const std::vector<FlatEntry>& entries() const noexcept { return entries_; }
  std::size_t size() const noexcept { return entries_.size(); }
  bool empty() const noexcept { return entries_.empty(); }

  /// Identity of the id space the entry ids were minted in (the source
  /// table), or nullptr for a default-constructed snapshot.
  const void* keyspace() const noexcept { return keyspace_; }

  auto begin() const noexcept { return entries_.begin(); }
  auto end() const noexcept { return entries_.end(); }

 private:
  /// Keeps the source table (and with it the interned key strings the
  /// entries point into) alive even if the store drops the table.
  std::shared_ptr<const void> keepalive_;
  const void* keyspace_ = nullptr;
  std::vector<FlatEntry> entries_;
};

}  // namespace smartflux::ds
