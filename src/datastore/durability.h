#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

#include "datastore/types.h"

namespace smartflux {
class FaultInjector;
}

namespace smartflux::obs {
class MetricsRegistry;
}

namespace smartflux::ds {

/// When the write-ahead log pushes appended records to stable storage
/// (fsync). Every policy *writes* each record to the OS promptly; the policy
/// only decides the sync cadence — i.e. which records a crash can lose.
enum class WalFlushPolicy : std::uint8_t {
  /// fsync after every record. A crash loses at most the record being
  /// written (a torn trailing record, truncated on recovery). Slowest.
  kEveryOp,
  /// fsync after every put_batch, structural record (create/drop/clear) and
  /// wave commit; single-cell puts/erases ride along with the next sync. The
  /// durability unit is the batch — the natural group-commit point of the
  /// per-wave write pattern.
  kEveryBatch,
  /// fsync only at wave commits. A crash loses at most the in-flight wave —
  /// exactly what the wave-boundary recovery rule re-runs anyway. Fastest;
  /// the intended policy for the continuous-workflow hot path.
  kEveryWave,
};

const char* wal_flush_policy_name(WalFlushPolicy policy) noexcept;

/// Configuration for DataStore::enable_durability / DataStore::recover.
///
/// Contract notes:
///  - Structural operations (drop_table, clear) must not race with writes to
///    the affected tables: the in-memory store tolerates the race (the write
///    to the dropped table is simply lost), but the log would replay the
///    write *after* the drop and resurrect the table.
///  - The WAL is a redo log: records are appended under the same table lock
///    as the in-memory apply, after the apply succeeded, so the log contains
///    exactly the mutations that took effect, in per-table apply order.
struct DurabilityOptions {
  WalFlushPolicy flush = WalFlushPolicy::kEveryBatch;
  /// Automatic checkpoint every N committed waves (0 = manual checkpoint()
  /// calls only). A checkpoint bounds recovery cost: it snapshots every
  /// table, rotates the WAL, and deletes the replaced segments.
  std::size_t checkpoint_every_waves = 0;
  /// Optional deterministic disk-fault injection layer (not owned). The WAL
  /// queries it per record append (tag "wal") and per fsync.
  FaultInjector* fault_injector = nullptr;
  /// Optional metrics registry (not owned): WAL record/byte/sync counters,
  /// fsync + checkpoint + recovery duration histograms under sf_ds_wal_* /
  /// sf_ds_checkpoint_* / sf_ds_recovery_*.
  obs::MetricsRegistry* metrics = nullptr;
};

/// What DataStore::recover found on disk.
struct RecoveryInfo {
  /// A valid checkpoint was loaded as the base image.
  bool checkpoint_loaded = false;
  /// WAL records replayed on top of the base image.
  std::uint64_t records_replayed = 0;
  /// WAL segments the replayed records came from.
  std::size_t segments_replayed = 0;
  /// A partial trailing record was found and truncated (never an error:
  /// that is what a crash mid-append leaves behind).
  bool truncated_torn_tail = false;
  /// The newest wave whose commit record is durable — the data half of the
  /// wave-boundary consistency rule. A wave is recovered iff its data commit
  /// AND its journal record are both on disk, so resume at
  /// min(last_durable_wave, journal.last_wave).
  std::optional<Timestamp> last_durable_wave;
  /// Wall-clock seconds recovery took (also exported as the
  /// sf_ds_recovery_duration_seconds histogram when metrics are attached).
  double duration_seconds = 0.0;
};

}  // namespace smartflux::ds
