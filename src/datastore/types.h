#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace smartflux::ds {

/// Logical timestamp. In continuous workflow processing this is usually the
/// wave number, but any monotonically non-decreasing value works.
using Timestamp = std::uint64_t;

using RowKey = std::string;
/// Flattened "family:qualifier" column name, HBase-style.
using ColumnKey = std::string;
using TableName = std::string;

/// One timestamped version of a cell. The store keeps a bounded history of
/// these per cell (newest first), which is how SmartFlux reads the current
/// and previous state in a single request (§5.3 of the paper).
struct CellVersion {
  Timestamp timestamp = 0;
  double value = 0.0;

  friend bool operator==(const CellVersion&, const CellVersion&) = default;
};

/// One cell write inside a DataStore::put_batch. The key views are not
/// owned: they only need to stay valid for the duration of the
/// (synchronous) call, so callers can batch without copying keys.
struct PutOp {
  std::string_view row;
  std::string_view column;
  double value = 0.0;
};

/// Kind of mutation applied to a cell, reported to write observers.
enum class MutationKind { kPut, kDelete };

/// A single observed mutation, as delivered to registered observers.
struct Mutation {
  MutationKind kind = MutationKind::kPut;
  TableName table;
  RowKey row;
  ColumnKey column;
  Timestamp timestamp = 0;
  double new_value = 0.0;   ///< Meaningful for kPut.
  double old_value = 0.0;   ///< Latest value before this mutation (0 if cell was absent).
  bool had_old_value = false;
};

}  // namespace smartflux::ds
