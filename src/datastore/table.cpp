#include "datastore/table.h"

#include <algorithm>

#include "common/error.h"

namespace smartflux::ds {

namespace {
constexpr std::size_t kInitialIndexSlots = 64;  // power of two
}

Table::Table(std::size_t max_versions)
    : max_versions_(max_versions),
      idx_key_(kInitialIndexSlots, 0),
      idx_cell_(kInitialIndexSlots, kNoCell) {
  SF_CHECK(max_versions >= 1, "a table must retain at least one version per cell");
}

std::uint32_t Table::find_cell(std::uint32_t row_id, std::uint32_t col_id) const noexcept {
  const std::uint64_t key = pack(row_id, col_id);
  std::size_t i = mix64(key) & (idx_cell_.size() - 1);
  while (idx_cell_[i] != kNoCell) {
    if (idx_cell_[i] != kTombstone && idx_key_[i] == key) return idx_cell_[i];
    i = (i + 1) & (idx_cell_.size() - 1);
  }
  return kNoCell;
}

std::uint32_t Table::find_cell(std::string_view row, std::string_view column) const noexcept {
  const std::uint32_t r = rows_.find(row);
  if (r == KeyInterner::kNoId) return kNoCell;
  const std::uint32_t c = cols_.find(column);
  if (c == KeyInterner::kNoId) return kNoCell;
  return find_cell(r, c);
}

void Table::index_insert(std::uint64_t key, std::uint32_t cell) {
  std::size_t i = mix64(key) & (idx_cell_.size() - 1);
  while (idx_cell_[i] != kNoCell && idx_cell_[i] != kTombstone) {
    i = (i + 1) & (idx_cell_.size() - 1);
  }
  if (idx_cell_[i] == kNoCell) ++idx_used_;  // reusing a tombstone keeps idx_used_
  idx_key_[i] = key;
  idx_cell_[i] = cell;
  if ((idx_used_ + 1) * 10 > idx_cell_.size() * 7) grow_index();
}

void Table::grow_index() {
  const std::size_t n = idx_cell_.size() * 2;
  std::vector<std::uint64_t> keys(n, 0);
  std::vector<std::uint32_t> cells(n, kNoCell);
  std::size_t used = 0;
  // Rehashing from the cell arrays drops tombstones.
  for (std::uint32_t cell = 0; cell < cell_row_.size(); ++cell) {
    if (cell_nver_[cell] == 0) continue;
    const std::uint64_t key = pack(cell_row_[cell], cell_col_[cell]);
    std::size_t i = mix64(key) & (n - 1);
    while (cells[i] != kNoCell) i = (i + 1) & (n - 1);
    keys[i] = key;
    cells[i] = cell;
    ++used;
  }
  idx_key_ = std::move(keys);
  idx_cell_ = std::move(cells);
  idx_used_ = used;
}

std::optional<double> Table::put(std::string_view row, std::string_view column, Timestamp ts,
                                 double value) {
  const std::uint32_t r = rows_.intern(row);
  const std::uint32_t c = cols_.intern(column);
  const std::uint32_t existing = find_cell(r, c);
  if (existing != kNoCell) {
    const std::size_t base = static_cast<std::size_t>(existing) * max_versions_;
    const std::uint32_t n = cell_nver_[existing];
    const double previous = version_slots_[base].value;
    SF_CHECK(ts >= version_slots_[base].timestamp, "cell timestamps must be non-decreasing");
    if (version_slots_[base].timestamp == ts) {
      version_slots_[base].value = value;
      return previous;
    }
    // Shift newest-first within the inline slots; the oldest falls off.
    const std::uint32_t keep = std::min<std::uint32_t>(
        n, static_cast<std::uint32_t>(max_versions_) - 1);
    for (std::uint32_t i = keep; i > 0; --i) {
      version_slots_[base + i] = version_slots_[base + i - 1];
    }
    version_slots_[base] = CellVersion{ts, value};
    cell_nver_[existing] = std::min<std::uint32_t>(
        n + 1, static_cast<std::uint32_t>(max_versions_));
    return previous;
  }

  std::uint32_t cell;
  if (!free_cells_.empty()) {
    cell = free_cells_.back();
    free_cells_.pop_back();
  } else {
    cell = static_cast<std::uint32_t>(cell_row_.size());
    cell_row_.push_back(0);
    cell_col_.push_back(0);
    cell_nver_.push_back(0);
    version_slots_.resize(version_slots_.size() + max_versions_);
  }
  cell_row_[cell] = r;
  cell_col_[cell] = c;
  cell_nver_[cell] = 1;
  version_slots_[static_cast<std::size_t>(cell) * max_versions_] = CellVersion{ts, value};
  index_insert(pack(r, c), cell);

  if (row_live_.size() <= r) row_live_.resize(rows_.size(), 0);
  if (row_live_[r]++ == 0) ++live_rows_;
  ++live_cells_;
  sorted_valid_.store(false, std::memory_order_release);
  return std::nullopt;
}

std::optional<double> Table::erase(std::string_view row, std::string_view column) {
  const std::uint32_t r = rows_.find(row);
  if (r == KeyInterner::kNoId) return std::nullopt;
  const std::uint32_t c = cols_.find(column);
  if (c == KeyInterner::kNoId) return std::nullopt;

  const std::uint64_t key = pack(r, c);
  std::size_t i = mix64(key) & (idx_cell_.size() - 1);
  std::uint32_t cell = kNoCell;
  while (idx_cell_[i] != kNoCell) {
    if (idx_cell_[i] != kTombstone && idx_key_[i] == key) {
      cell = idx_cell_[i];
      idx_cell_[i] = kTombstone;
      break;
    }
    i = (i + 1) & (idx_cell_.size() - 1);
  }
  if (cell == kNoCell) return std::nullopt;

  const double removed = version_slots_[static_cast<std::size_t>(cell) * max_versions_].value;
  cell_nver_[cell] = 0;
  free_cells_.push_back(cell);
  --live_cells_;
  if (--row_live_[r] == 0) --live_rows_;
  sorted_valid_.store(false, std::memory_order_release);
  return removed;
}

std::optional<double> Table::get(std::string_view row, std::string_view column) const {
  const std::uint32_t cell = find_cell(row, column);
  if (cell == kNoCell) return std::nullopt;
  return version_slots_[static_cast<std::size_t>(cell) * max_versions_].value;
}

std::optional<double> Table::get_previous(std::string_view row, std::string_view column) const {
  const std::uint32_t cell = find_cell(row, column);
  if (cell == kNoCell || cell_nver_[cell] < 2) return std::nullopt;
  return version_slots_[static_cast<std::size_t>(cell) * max_versions_ + 1].value;
}

std::size_t Table::version_at(std::uint32_t cell, Timestamp ts) const noexcept {
  const std::size_t base = static_cast<std::size_t>(cell) * max_versions_;
  const std::uint32_t n = cell_nver_[cell];
  for (std::uint32_t i = 0; i < n; ++i) {
    if (version_slots_[base + i].timestamp <= ts) return i;
  }
  return max_versions_;
}

std::optional<double> Table::get_at(std::string_view row, std::string_view column,
                                    Timestamp ts) const {
  const std::uint32_t cell = find_cell(row, column);
  if (cell == kNoCell) return std::nullopt;
  const std::size_t at = version_at(cell, ts);
  if (at >= max_versions_) return std::nullopt;
  return version_slots_[static_cast<std::size_t>(cell) * max_versions_ + at].value;
}

std::optional<double> Table::get_previous_at(std::string_view row, std::string_view column,
                                             Timestamp ts) const {
  const std::uint32_t cell = find_cell(row, column);
  if (cell == kNoCell) return std::nullopt;
  const std::size_t at = version_at(cell, ts);
  if (at + 1 >= cell_nver_[cell]) return std::nullopt;
  return version_slots_[static_cast<std::size_t>(cell) * max_versions_ + at + 1].value;
}

std::vector<CellVersion> Table::versions(std::string_view row, std::string_view column) const {
  const std::uint32_t cell = find_cell(row, column);
  if (cell == kNoCell) return {};
  const std::size_t base = static_cast<std::size_t>(cell) * max_versions_;
  return {version_slots_.begin() + static_cast<std::ptrdiff_t>(base),
          version_slots_.begin() + static_cast<std::ptrdiff_t>(base + cell_nver_[cell])};
}

void Table::ensure_sorted() const {
  // Readers run under the store's shared table lock, so a writer cannot be
  // mutating concurrently — but several readers may race to rebuild. The
  // acquire load pairs with the release store below (and the mutex orders
  // the rebuild itself), so whoever loses the race still observes a fully
  // built vector. Writers invalidate under the exclusive table lock, which
  // orders their structural changes before any subsequent reader.
  if (sorted_valid_.load(std::memory_order_acquire)) return;
  std::lock_guard lock(sorted_mutex_);
  if (sorted_valid_.load(std::memory_order_relaxed)) return;
  sorted_.clear();
  sorted_.reserve(live_cells_);
  for (std::uint32_t cell = 0; cell < cell_row_.size(); ++cell) {
    if (cell_nver_[cell] != 0) sorted_.push_back(cell);
  }
  std::sort(sorted_.begin(), sorted_.end(), [this](std::uint32_t a, std::uint32_t b) {
    if (cell_row_[a] != cell_row_[b]) {
      const int cmp = rows_.key(cell_row_[a]).compare(rows_.key(cell_row_[b]));
      if (cmp != 0) return cmp < 0;
    }
    return cell_col_[a] != cell_col_[b] &&
           cols_.key(cell_col_[a]).compare(cols_.key(cell_col_[b])) < 0;
  });
  sorted_valid_.store(true, std::memory_order_release);
}

void Table::scan_column(std::string_view column,
                        const std::function<void(const RowKey&, double)>& visit) const {
  const std::uint32_t c = cols_.find(column);
  if (c == KeyInterner::kNoId) return;
  ensure_sorted();
  // (row, column) order restricted to one column is row order.
  for (const std::uint32_t cell : sorted_) {
    if (cell_col_[cell] != c) continue;
    visit(rows_.key(cell_row_[cell]),
          version_slots_[static_cast<std::size_t>(cell) * max_versions_].value);
  }
}

void Table::scan(
    const std::function<void(const RowKey&, const ColumnKey&, double)>& visit) const {
  scan_cells([&visit](const CellView& cv) { visit(*cv.row, *cv.col, cv.value); });
}

std::vector<double> Table::column_values(std::string_view column) const {
  std::vector<double> out;
  scan_column(column, [&out](const RowKey&, double v) { out.push_back(v); });
  return out;
}

std::size_t Table::approx_bytes() const {
  const auto vec_bytes = [](const auto& v) {
    return v.capacity() * sizeof(typename std::decay_t<decltype(v)>::value_type);
  };
  std::size_t total = vec_bytes(cell_row_) + vec_bytes(cell_col_) + vec_bytes(cell_nver_) +
                      vec_bytes(version_slots_) + vec_bytes(free_cells_) +
                      vec_bytes(idx_key_) + vec_bytes(idx_cell_) + vec_bytes(row_live_) +
                      rows_.approx_bytes() + cols_.approx_bytes();
  {
    // sorted_ is rebuilt lazily under sorted_mutex_ by concurrent readers;
    // its capacity must be read under the same mutex.
    std::lock_guard lock(sorted_mutex_);
    total += vec_bytes(sorted_);
  }
  return total;
}

std::size_t Table::trim_versions(std::size_t keep) noexcept {
  const auto keep32 = static_cast<std::uint32_t>(std::max<std::size_t>(1, keep));
  std::size_t dropped = 0;
  for (std::size_t cell = 0; cell < cell_nver_.size(); ++cell) {
    if (cell_nver_[cell] > keep32) {
      dropped += cell_nver_[cell] - keep32;
      cell_nver_[cell] = keep32;
    }
  }
  return dropped;
}

void Table::clear() noexcept {
  cell_row_.clear();
  cell_col_.clear();
  cell_nver_.clear();
  version_slots_.clear();
  free_cells_.clear();
  std::fill(idx_cell_.begin(), idx_cell_.end(), kNoCell);
  idx_used_ = 0;
  std::fill(row_live_.begin(), row_live_.end(), 0u);
  live_rows_ = 0;
  live_cells_ = 0;
  sorted_valid_.store(false, std::memory_order_release);
}

}  // namespace smartflux::ds
