#include "datastore/table.h"

#include "common/error.h"

namespace smartflux::ds {

Table::Table(std::size_t max_versions) : max_versions_(max_versions) {
  SF_CHECK(max_versions >= 1, "a table must retain at least one version per cell");
}

std::optional<double> Table::put(const RowKey& row, const ColumnKey& column, Timestamp ts,
                                 double value) {
  Cell& cell = rows_[row][column];
  std::optional<double> previous;
  if (!cell.empty()) {
    previous = cell.front().value;
    SF_CHECK(ts >= cell.front().timestamp, "cell timestamps must be non-decreasing");
    if (cell.front().timestamp == ts) {
      cell.front().value = value;
      return previous;
    }
  } else {
    ++cell_count_;
  }
  cell.insert(cell.begin(), CellVersion{ts, value});
  if (cell.size() > max_versions_) cell.resize(max_versions_);
  return previous;
}

std::optional<double> Table::erase(const RowKey& row, const ColumnKey& column) {
  auto row_it = rows_.find(row);
  if (row_it == rows_.end()) return std::nullopt;
  auto col_it = row_it->second.find(column);
  if (col_it == row_it->second.end()) return std::nullopt;
  std::optional<double> removed;
  if (!col_it->second.empty()) removed = col_it->second.front().value;
  row_it->second.erase(col_it);
  --cell_count_;
  if (row_it->second.empty()) rows_.erase(row_it);
  return removed;
}

std::optional<double> Table::get(const RowKey& row, const ColumnKey& column) const {
  auto row_it = rows_.find(row);
  if (row_it == rows_.end()) return std::nullopt;
  auto col_it = row_it->second.find(column);
  if (col_it == row_it->second.end() || col_it->second.empty()) return std::nullopt;
  return col_it->second.front().value;
}

std::optional<double> Table::get_previous(const RowKey& row, const ColumnKey& column) const {
  auto row_it = rows_.find(row);
  if (row_it == rows_.end()) return std::nullopt;
  auto col_it = row_it->second.find(column);
  if (col_it == row_it->second.end() || col_it->second.size() < 2) return std::nullopt;
  return col_it->second[1].value;
}

std::vector<CellVersion> Table::versions(const RowKey& row, const ColumnKey& column) const {
  auto row_it = rows_.find(row);
  if (row_it == rows_.end()) return {};
  auto col_it = row_it->second.find(column);
  if (col_it == row_it->second.end()) return {};
  return col_it->second;
}

void Table::scan_column(const ColumnKey& column,
                        const std::function<void(const RowKey&, double)>& visit) const {
  for (const auto& [row, columns] : rows_) {
    auto col_it = columns.find(column);
    if (col_it != columns.end() && !col_it->second.empty()) {
      visit(row, col_it->second.front().value);
    }
  }
}

void Table::scan(
    const std::function<void(const RowKey&, const ColumnKey&, double)>& visit) const {
  for (const auto& [row, columns] : rows_) {
    for (const auto& [column, cell] : columns) {
      if (!cell.empty()) visit(row, column, cell.front().value);
    }
  }
}

std::vector<double> Table::column_values(const ColumnKey& column) const {
  std::vector<double> out;
  scan_column(column, [&out](const RowKey&, double v) { out.push_back(v); });
  return out;
}

void Table::clear() noexcept {
  rows_.clear();
  cell_count_ = 0;
}

}  // namespace smartflux::ds
