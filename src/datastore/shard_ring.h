#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "common/error.h"
#include "common/hashing.h"

namespace smartflux {
class ThreadPool;
}

namespace smartflux::ds {

/// Sharding configuration of a DataStore. `shards = 1` (the default) keeps
/// the store byte-for-byte compatible with the unsharded layout: one lock
/// domain per table, legacy `wal-%06d.sflog` segment names, no per-shard
/// metric series.
struct ShardOptions {
  /// Number of shards each table (and the WAL) is partitioned into. Rows are
  /// routed by consistent hashing of the row key; all writes for one row
  /// always land in the same shard.
  std::size_t shards = 1;
  /// Virtual nodes per shard on the hash ring. More vnodes smooth the key
  /// distribution across shards; the default is plenty for <= 64 shards.
  std::size_t vnodes_per_shard = 64;
  /// Seed of the ring's placement hash. Stores that must agree on routing
  /// (e.g. a recovered store and the one that wrote the WAL) need the same
  /// seed — recovery re-routes every replayed row anyway, so this only
  /// matters for cross-store comparisons of per-shard state.
  std::uint64_t ring_seed = 0x736d6172746678ULL;  // "smartfx"
  /// Optional pool (not owned) on which put_batch applies its per-shard
  /// sub-batches concurrently. Null = sub-batches apply on the calling
  /// thread, still under per-shard locks (concurrent *callers* scale).
  ThreadPool* batch_pool = nullptr;
  /// Batches smaller than this apply serially even when a pool is set — the
  /// split bookkeeping must be amortized over enough cells to beat one lock.
  std::size_t parallel_batch_min_ops = 256;
};

/// Consistent-hashing ring mapping row keys to shard indices: each shard
/// owns `vnodes_per_shard` points placed by a stateless hash; a key belongs
/// to the first point clockwise from its own hash (murmur-style point hash +
/// virtual nodes, the classic memcached/chash layout). Deterministic in
/// (shards, vnodes, seed), so the same key routes to the same shard across
/// runs, processes, and recoveries.
///
/// Virtual nodes matter for the *stability* property: when a store is
/// reopened with one more shard, only the keys whose arc the new shard's
/// vnodes claim move — roughly 1/N of them — instead of the (N-1)/N a
/// modulo split would reshuffle.
class ShardRing {
 public:
  ShardRing() : ShardRing(ShardOptions{}) {}

  explicit ShardRing(const ShardOptions& options)
      : shards_(options.shards), seed_(options.ring_seed) {
    SF_CHECK(options.shards >= 1, "ShardOptions::shards must be >= 1");
    SF_CHECK(options.vnodes_per_shard >= 1, "ShardOptions::vnodes_per_shard must be >= 1");
    if (shards_ == 1) return;  // every key routes to shard 0; no ring needed
    points_.reserve(shards_ * options.vnodes_per_shard);
    for (std::size_t shard = 0; shard < shards_; ++shard) {
      for (std::size_t vnode = 0; vnode < options.vnodes_per_shard; ++vnode) {
        points_.push_back(Point{hash64(seed_, shard, vnode), static_cast<std::uint32_t>(shard)});
      }
    }
    std::sort(points_.begin(), points_.end(), [](const Point& a, const Point& b) {
      // Owner breaks hash ties so the ring is a deterministic function of the
      // options even in the astronomically unlikely collision case.
      return a.hash != b.hash ? a.hash < b.hash : a.owner < b.owner;
    });
  }

  std::size_t shards() const noexcept { return shards_; }

  /// Shard owning `row`. O(log vnodes) binary search; shards()==1 short-
  /// circuits to 0 without hashing.
  std::size_t shard_of(std::string_view row) const noexcept {
    if (shards_ == 1) return 0;
    const std::uint64_t h = hash64_bytes(row, seed_);
    // First point at or after h, wrapping to the first point past the top.
    auto it = std::lower_bound(points_.begin(), points_.end(), h,
                               [](const Point& p, std::uint64_t key) { return p.hash < key; });
    if (it == points_.end()) it = points_.begin();
    return it->owner;
  }

 private:
  struct Point {
    std::uint64_t hash;
    std::uint32_t owner;
  };

  std::size_t shards_;
  std::uint64_t seed_;
  std::vector<Point> points_;  ///< empty when shards_ == 1
};

}  // namespace smartflux::ds
