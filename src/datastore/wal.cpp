#include "datastore/wal.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "common/error.h"
#include "common/fault_injection.h"
#include "common/hashing.h"
#include "obs/metrics.h"

namespace smartflux::ds {

namespace {

/// Flush the user-space buffer to the OS once it exceeds this, even under
/// kEveryWave (bounds memory, keeps the file current for external readers).
constexpr std::size_t kPendingFlushBytes = 1u << 20;

void put_u8(std::string& out, std::uint8_t v) { out.push_back(static_cast<char>(v)); }

void put_u32(std::string& out, std::uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out.append(buf, 4);
}

void put_u64(std::string& out, std::uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out.append(buf, 8);
}

void put_f64(std::string& out, double v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out.append(buf, 8);
}

void put_str(std::string& out, std::string_view s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.append(s);
}

/// Bounds-checked decode cursor over one payload.
class Decoder {
 public:
  Decoder(const char* data, std::size_t n, const std::string& path)
      : p_(data), end_(data + n), path_(path) {}

  std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(*p_++);
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v;
    std::memcpy(&v, p_, 4);
    p_ += 4;
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v;
    std::memcpy(&v, p_, 8);
    p_ += 8;
    return v;
  }
  double f64() {
    need(8);
    double v;
    std::memcpy(&v, p_, 8);
    p_ += 8;
    return v;
  }
  std::string str() {
    const std::uint32_t n = u32();
    need(n);
    std::string s(p_, n);
    p_ += n;
    return s;
  }
  bool exhausted() const noexcept { return p_ == end_; }

 private:
  void need(std::size_t n) {
    if (static_cast<std::size_t>(end_ - p_) < n) {
      throw Error("WAL payload underrun in '" + path_ + "' (corrupt record body)");
    }
  }

  const char* p_;
  const char* end_;
  const std::string& path_;
};

std::string format_seq_name(const char* prefix, const char* suffix, std::uint64_t seq) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%s%06llu%s", prefix,
                static_cast<unsigned long long>(seq), suffix);
  return buf;
}

std::optional<std::uint64_t> parse_seq_name(std::string_view name, std::string_view prefix,
                                            std::string_view suffix) {
  if (name.size() <= prefix.size() + suffix.size()) return std::nullopt;
  if (name.substr(0, prefix.size()) != prefix) return std::nullopt;
  if (name.substr(name.size() - suffix.size()) != suffix) return std::nullopt;
  const std::string_view digits =
      name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
  std::uint64_t seq = 0;
  for (const char c : digits) {
    if (c < '0' || c > '9') return std::nullopt;
    seq = seq * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return seq;
}

}  // namespace

std::string wal_segment_name(std::uint64_t seq) { return format_seq_name("wal-", ".sflog", seq); }

std::optional<std::uint64_t> parse_wal_segment_name(std::string_view name) {
  return parse_seq_name(name, "wal-", ".sflog");
}

std::string checkpoint_file_name(std::uint64_t cut_seq) {
  return format_seq_name("checkpoint-", ".sfck", cut_seq);
}

std::optional<std::uint64_t> parse_checkpoint_file_name(std::string_view name) {
  return parse_seq_name(name, "checkpoint-", ".sfck");
}

std::string sharded_wal_segment_name(std::size_t shard, std::uint64_t seq) {
  char buf[80];
  std::snprintf(buf, sizeof buf, "wal-s%llu-%06llu.sflog",
                static_cast<unsigned long long>(shard), static_cast<unsigned long long>(seq));
  return buf;
}

std::optional<WalSegmentId> parse_any_wal_segment_name(std::string_view name) {
  if (const auto seq = parse_wal_segment_name(name)) return WalSegmentId{0, *seq};
  constexpr std::string_view prefix = "wal-s";
  if (name.size() <= prefix.size() || name.substr(0, prefix.size()) != prefix) {
    return std::nullopt;
  }
  const std::size_t dash = name.find('-', prefix.size());
  if (dash == std::string_view::npos || dash == prefix.size()) return std::nullopt;
  std::size_t shard = 0;
  for (const char c : name.substr(prefix.size(), dash - prefix.size())) {
    if (c < '0' || c > '9') return std::nullopt;
    shard = shard * 10 + static_cast<std::size_t>(c - '0');
  }
  const auto seq = parse_seq_name(name.substr(dash + 1), "", ".sflog");
  if (!seq) return std::nullopt;
  return WalSegmentId{shard, *seq};
}

// ---------------------------------------------------------------------------
// WalWriter

WalWriter::WalWriter(std::string path, WalFlushPolicy policy, FaultInjector* injector,
                     std::uint64_t first_record_seq, std::atomic<std::uint64_t>* lsn_source,
                     std::string fault_tag)
    : path_(std::move(path)),
      file_(SyncFile::open_append(path_)),
      policy_(policy),
      injector_(injector),
      lsn_source_(lsn_source),
      fault_tag_(std::move(fault_tag)),
      record_seq_(first_record_seq) {}

WalWriter::~WalWriter() {
  if (!broken_ && !pending_.empty()) {
    try {
      file_.write_all(pending_.data(), pending_.size());
    } catch (...) {
      // Destructor: a crash would have lost these bytes too.
    }
  }
}

void WalWriter::check_usable() const {
  if (broken_) {
    throw Error("WAL '" + path_ + "' is broken (previous write or fsync failed); "
                "the store must be recovered from disk");
  }
}

std::uint64_t WalWriter::next_lsn() noexcept {
  return lsn_source_ != nullptr ? lsn_source_->fetch_add(1, std::memory_order_relaxed)
                                : record_seq_;
}

void WalWriter::append(std::string_view payload, int sync_class, std::uint64_t lsn) {
  check_usable();
  SF_CHECK(payload.size() <= kWalMaxPayloadBytes, "WAL record payload too large");
  const std::uint64_t seq = lsn;

  DiskWriteFault fault = DiskWriteFault::kNone;
  if (injector_ != nullptr) fault = injector_->disk_write_fault(fault_tag_, seq);
  if (fault == DiskWriteFault::kCrash) {
    broken_ = true;
    // A crash before the record: previously buffered records die with the
    // process (they were never synced), so drop them too.
    pending_.clear();
    throw InjectedFault("injected crash before WAL record " + std::to_string(seq));
  }

  std::string frame;
  frame.reserve(8 + payload.size());
  put_u32(frame, static_cast<std::uint32_t>(payload.size()));
  put_u32(frame, crc32c(payload.data(), payload.size()));
  frame.append(payload);

  if (fault == DiskWriteFault::kTornWrite || fault == DiskWriteFault::kShortWrite) {
    broken_ = true;
    // Earlier buffered-but-unsynced records reach the OS here: a torn write
    // tears only the record being appended, not its predecessors.
    if (!pending_.empty()) {
      file_.write_all(pending_.data(), pending_.size());
      pending_.clear();
    }
    const std::size_t keep =
        fault == DiskWriteFault::kShortWrite
            ? frame.size() - 1
            : injector_->torn_write_bytes(fault_tag_, seq, frame.size());
    file_.write_all(frame.data(), keep);
    throw InjectedFault("injected torn write at WAL record " + std::to_string(seq));
  }

  ++record_seq_;
  bytes_appended_ += frame.size();
  if (obs_ != nullptr && obs_->records != nullptr) {
    obs_->records->inc();
    obs_->bytes->inc(frame.size());
    if (obs_->shard_bytes != nullptr) obs_->shard_bytes->inc(frame.size());
  }

  pending_.append(frame);
  const bool policy_sync =
      sync_class == 2 ||
      (sync_class == 1 && policy_ != WalFlushPolicy::kEveryWave) ||
      (sync_class != 3 && policy_ == WalFlushPolicy::kEveryOp);
  if (policy_sync) {
    sync();
  } else if (sync_class == 3 || pending_.size() >= kPendingFlushBytes ||
             policy_ != WalFlushPolicy::kEveryWave) {
    flush();
  }
}

void WalWriter::flush() {
  check_usable();
  if (pending_.empty()) return;
  try {
    file_.write_all(pending_.data(), pending_.size());
  } catch (...) {
    broken_ = true;
    throw;
  }
  pending_.clear();
}

void WalWriter::sync() {
  flush();
  const std::uint64_t seq = sync_seq_++;
  if (injector_ != nullptr && injector_->disk_fsync_fault(fault_tag_, seq)) {
    broken_ = true;
    throw InjectedFault("injected fsync failure on WAL '" + path_ + "'");
  }
  std::chrono::steady_clock::time_point t0;
  const bool timed = obs_ != nullptr && obs_->fsync_duration != nullptr;
  if (timed) t0 = std::chrono::steady_clock::now();
  try {
    file_.sync();
  } catch (...) {
    broken_ = true;
    throw;
  }
  if (timed) {
    obs_->fsync_duration->observe(
        static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                std::chrono::steady_clock::now() - t0)
                                .count()) *
        1e-9);
    obs_->syncs->inc();
  } else if (obs_ != nullptr && obs_->syncs != nullptr) {
    obs_->syncs->inc();
  }
}

void WalWriter::append_put(std::string_view table, std::string_view row,
                           std::string_view column, Timestamp ts, double value) {
  const std::uint64_t lsn = next_lsn();
  scratch_.clear();
  put_u8(scratch_, static_cast<std::uint8_t>(WalRecordKind::kPut));
  put_u64(scratch_, lsn);
  put_str(scratch_, table);
  put_str(scratch_, row);
  put_str(scratch_, column);
  put_u64(scratch_, ts);
  put_f64(scratch_, value);
  append(scratch_, 0, lsn);
}

void WalWriter::append_batch(std::string_view table, Timestamp ts, std::span<const PutOp> ops) {
  const std::uint64_t lsn = next_lsn();
  scratch_.clear();
  put_u8(scratch_, static_cast<std::uint8_t>(WalRecordKind::kPutBatch));
  put_u64(scratch_, lsn);
  put_str(scratch_, table);
  put_u64(scratch_, ts);
  put_u32(scratch_, static_cast<std::uint32_t>(ops.size()));
  for (const PutOp& op : ops) {
    put_str(scratch_, op.row);
    put_str(scratch_, op.column);
    put_f64(scratch_, op.value);
  }
  append(scratch_, 1, lsn);
}

void WalWriter::append_erase(std::string_view table, std::string_view row,
                             std::string_view column, Timestamp ts) {
  const std::uint64_t lsn = next_lsn();
  scratch_.clear();
  put_u8(scratch_, static_cast<std::uint8_t>(WalRecordKind::kErase));
  put_u64(scratch_, lsn);
  put_str(scratch_, table);
  put_str(scratch_, row);
  put_str(scratch_, column);
  put_u64(scratch_, ts);
  append(scratch_, 0, lsn);
}

void WalWriter::append_create_table(std::string_view table, std::optional<std::uint64_t> lsn) {
  const std::uint64_t seq = lsn ? *lsn : next_lsn();
  scratch_.clear();
  put_u8(scratch_, static_cast<std::uint8_t>(WalRecordKind::kCreateTable));
  put_u64(scratch_, seq);
  put_str(scratch_, table);
  append(scratch_, 1, seq);
}

void WalWriter::append_drop_table(std::string_view table, std::optional<std::uint64_t> lsn) {
  const std::uint64_t seq = lsn ? *lsn : next_lsn();
  scratch_.clear();
  put_u8(scratch_, static_cast<std::uint8_t>(WalRecordKind::kDropTable));
  put_u64(scratch_, seq);
  put_str(scratch_, table);
  append(scratch_, 1, seq);
}

void WalWriter::append_clear(std::optional<std::uint64_t> lsn) {
  const std::uint64_t seq = lsn ? *lsn : next_lsn();
  scratch_.clear();
  put_u8(scratch_, static_cast<std::uint8_t>(WalRecordKind::kClear));
  put_u64(scratch_, seq);
  append(scratch_, 1, seq);
}

void WalWriter::append_wave_commit(Timestamp wave, std::optional<std::uint64_t> lsn,
                                   bool sync_now) {
  const std::uint64_t seq = lsn ? *lsn : next_lsn();
  scratch_.clear();
  put_u8(scratch_, static_cast<std::uint8_t>(WalRecordKind::kWaveCommit));
  put_u64(scratch_, seq);
  put_u64(scratch_, wave);
  append(scratch_, sync_now ? 2 : 3, seq);
}

// ---------------------------------------------------------------------------
// WalReader

WalReader::WalReader(const std::string& path) : path_(path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw Error("cannot open WAL segment '" + path + "'");
  std::string data((std::istreambuf_iterator<char>(is)), std::istreambuf_iterator<char>());
  if (is.bad()) throw Error("read failed for WAL segment '" + path + "'");
  data_ = std::move(data);
}

WalReader::Next WalReader::next(WalRecord& out) {
  if (done_) return Next::kEnd;
  const std::uint64_t remaining = data_.size() - pos_;
  if (remaining == 0) {
    done_ = true;
    return Next::kEnd;
  }
  // A partial header can only be the torn tail of the final append.
  if (remaining < 8) {
    done_ = true;
    return Next::kTornTail;
  }
  std::uint32_t len = 0;
  std::uint32_t crc = 0;
  std::memcpy(&len, data_.data() + pos_, 4);
  std::memcpy(&crc, data_.data() + pos_ + 4, 4);
  if (len > kWalMaxPayloadBytes) {
    // An absurd length with a full header present is corruption, not a torn
    // append — lengths are written before payloads, atomically within one
    // buffered write in practice, but we cannot prove which, so be strict
    // only when bytes follow that a sane record would not have.
    throw Error("WAL record length " + std::to_string(len) + " exceeds sanity cap in '" +
                path_ + "' (corrupt log)");
  }
  if (remaining - 8 < len) {
    done_ = true;
    return Next::kTornTail;
  }
  const char* payload = data_.data() + pos_ + 8;
  if (crc32c(payload, len) != crc) {
    if (pos_ + 8 + len == data_.size()) {
      // Bad checksum on the very last record: a torn write that happened to
      // reach full length minus some payload bytes, or a short write.
      // Tolerated: truncate to the previous record.
      done_ = true;
      return Next::kTornTail;
    }
    throw Error("WAL checksum mismatch at offset " + std::to_string(pos_) + " in '" + path_ +
                "' (mid-log corruption is not recoverable)");
  }

  Decoder dec(payload, len, path_);
  out = WalRecord{};
  const auto kind = static_cast<WalRecordKind>(dec.u8());
  out.kind = kind;
  out.lsn = dec.u64();
  switch (kind) {
    case WalRecordKind::kPut:
      out.table = dec.str();
      out.row = dec.str();
      out.column = dec.str();
      out.ts = dec.u64();
      out.value = dec.f64();
      break;
    case WalRecordKind::kPutBatch: {
      out.table = dec.str();
      out.ts = dec.u64();
      const std::uint32_t n = dec.u32();
      out.batch.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) {
        WalRecord::BatchOp op;
        op.row = dec.str();
        op.column = dec.str();
        op.value = dec.f64();
        out.batch.push_back(std::move(op));
      }
      break;
    }
    case WalRecordKind::kErase:
      out.table = dec.str();
      out.row = dec.str();
      out.column = dec.str();
      out.ts = dec.u64();
      break;
    case WalRecordKind::kCreateTable:
    case WalRecordKind::kDropTable:
      out.table = dec.str();
      break;
    case WalRecordKind::kClear:
      break;
    case WalRecordKind::kWaveCommit:
      out.wave = dec.u64();
      break;
    default:
      throw Error("unknown WAL record kind " + std::to_string(static_cast<int>(kind)) +
                  " in '" + path_ + "'");
  }
  if (!dec.exhausted()) {
    throw Error("WAL record has trailing payload bytes in '" + path_ + "' (corrupt record)");
  }
  pos_ += 8 + len;
  clean_bytes_ = pos_;
  ++records_read_;
  return Next::kRecord;
}

}  // namespace smartflux::ds
