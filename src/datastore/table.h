#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <optional>
#include <string_view>
#include <vector>

#include "datastore/types.h"

namespace smartflux::ds {

/// A sparse, sorted, multi-versioned column-oriented table: a map indexed by
/// (row, column, timestamp), modeled after BigTable/HBase. Cells keep up to
/// `max_versions` timestamped versions, newest first.
///
/// Thread-compatible: the owning DataStore serializes access per table.
class Table {
 public:
  explicit Table(std::size_t max_versions = 2);

  /// Writes a cell version. Timestamps must be non-decreasing per cell; an
  /// equal timestamp overwrites the newest version in place.
  /// Returns the previous latest value, if the cell existed.
  std::optional<double> put(const RowKey& row, const ColumnKey& column, Timestamp ts,
                            double value);

  /// Removes a cell entirely (all versions). Returns the removed latest value.
  std::optional<double> erase(const RowKey& row, const ColumnKey& column);

  /// Latest version of a cell, if present.
  std::optional<double> get(const RowKey& row, const ColumnKey& column) const;

  /// Version immediately preceding the latest, if retained.
  std::optional<double> get_previous(const RowKey& row, const ColumnKey& column) const;

  /// Full retained history, newest first.
  std::vector<CellVersion> versions(const RowKey& row, const ColumnKey& column) const;

  /// Visits every latest cell of the given column in row order.
  void scan_column(const ColumnKey& column,
                   const std::function<void(const RowKey&, double)>& visit) const;

  /// Visits every latest cell in the table in (row, column) order.
  void scan(const std::function<void(const RowKey&, const ColumnKey&, double)>& visit) const;

  /// Latest values of a column, in row order (dense snapshot).
  std::vector<double> column_values(const ColumnKey& column) const;

  std::size_t row_count() const noexcept { return rows_.size(); }
  std::size_t cell_count() const noexcept { return cell_count_; }
  std::size_t max_versions() const noexcept { return max_versions_; }
  bool empty() const noexcept { return rows_.empty(); }
  void clear() noexcept;

 private:
  // Newest-first bounded version list.
  using Cell = std::vector<CellVersion>;
  using Columns = std::map<ColumnKey, Cell>;

  std::size_t max_versions_;
  std::map<RowKey, Columns> rows_;
  std::size_t cell_count_ = 0;
};

}  // namespace smartflux::ds
