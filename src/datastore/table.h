#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string_view>
#include <vector>

#include "datastore/interner.h"
#include "datastore/types.h"

namespace smartflux::ds {

/// A sparse, multi-versioned column-oriented table: cells indexed by
/// (row, column, timestamp), modeled after BigTable/HBase. Cells keep up to
/// `max_versions` timestamped versions, newest first.
///
/// Representation (the hot-path layout): row and column keys are interned
/// into dense `uint32_t` ids per table; cells live in structure-of-arrays
/// storage addressed by an open-addressing hash index over the packed
/// (row_id, col_id) key, with the `max_versions` version slots of each cell
/// kept inline (no per-cell heap vector). Point ops are O(1) hash probes;
/// scans walk a lazily rebuilt flat array of live cells sorted by
/// (row, column) string order — the order the old tree-map scan produced.
///
/// Thread-compatible: the owning DataStore serializes writers exclusively
/// and allows concurrent readers (scan's lazy order-index rebuild is
/// internally synchronized so it is safe under concurrent readers).
class Table {
 public:
  explicit Table(std::size_t max_versions = 2);

  /// Zero-copy view of one live cell, as visited by `scan_cells`: `id`
  /// packs the interner ids ((row_id << 32) | col_id); `row`/`col` point
  /// into the interner storage (valid for the table's lifetime).
  struct CellView {
    std::uint64_t id = 0;
    const std::string* row = nullptr;
    const std::string* col = nullptr;
    double value = 0.0;
  };

  /// Writes a cell version. Timestamps must be non-decreasing per cell; an
  /// equal timestamp overwrites the newest version in place.
  /// Returns the previous latest value, if the cell existed.
  std::optional<double> put(std::string_view row, std::string_view column, Timestamp ts,
                            double value);

  /// Removes a cell entirely (all versions). Returns the removed latest value.
  std::optional<double> erase(std::string_view row, std::string_view column);

  /// Latest version of a cell, if present.
  std::optional<double> get(std::string_view row, std::string_view column) const;

  /// Version immediately preceding the latest, if retained.
  std::optional<double> get_previous(std::string_view row, std::string_view column) const;

  /// As-of read: the newest version with timestamp <= ts, if any is
  /// retained. With pipelined wave execution a client bound to wave w reads
  /// through these so it never sees wave w+1's concurrently ingested
  /// versions; for a serial store (no version newer than ts exists) they
  /// degrade to exactly get()/get_previous(). A version that has already
  /// fallen off the retention window is gone — pipelining depth d therefore
  /// requires max_versions >= d + 1.
  std::optional<double> get_at(std::string_view row, std::string_view column, Timestamp ts) const;
  /// Version immediately preceding the as-of version at ts, if retained.
  std::optional<double> get_previous_at(std::string_view row, std::string_view column,
                                        Timestamp ts) const;

  /// Full retained history, newest first.
  std::vector<CellVersion> versions(std::string_view row, std::string_view column) const;

  /// Visits every live cell in (row, column) string order with zero-copy
  /// key views — the primitive scans and snapshots are built from.
  /// Templated so the per-cell call inlines into the caller's loop.
  template <typename Visitor>
  void scan_cells(Visitor&& visit) const {
    ensure_sorted();
    for (const std::uint32_t cell : sorted_) {
      CellView view;
      view.id = pack(cell_row_[cell], cell_col_[cell]);
      view.row = rows_.key_ptr(cell_row_[cell]);
      view.col = cols_.key_ptr(cell_col_[cell]);
      view.value = version_slots_[static_cast<std::size_t>(cell) * max_versions_].value;
      visit(view);
    }
  }

  /// As-of variant of scan_cells: visits every cell that has a version with
  /// timestamp <= ts, in the same (row, column) order, with the value as of
  /// ts. Cells created only after ts (a pipelined wave's fresh ingest) are
  /// skipped entirely.
  template <typename Visitor>
  void scan_cells_at(Timestamp ts, Visitor&& visit) const {
    ensure_sorted();
    for (const std::uint32_t cell : sorted_) {
      const std::size_t at = version_at(cell, ts);
      if (at >= max_versions_) continue;
      CellView view;
      view.id = pack(cell_row_[cell], cell_col_[cell]);
      view.row = rows_.key_ptr(cell_row_[cell]);
      view.col = cols_.key_ptr(cell_col_[cell]);
      view.value = version_slots_[static_cast<std::size_t>(cell) * max_versions_ + at].value;
      visit(view);
    }
  }

  /// Visits every latest cell of the given column in row order.
  void scan_column(std::string_view column,
                   const std::function<void(const RowKey&, double)>& visit) const;

  /// Visits every latest cell in the table in (row, column) order.
  void scan(const std::function<void(const RowKey&, const ColumnKey&, double)>& visit) const;

  /// Latest values of a column, in row order (dense snapshot).
  std::vector<double> column_values(std::string_view column) const;

  std::size_t row_count() const noexcept { return live_rows_; }
  std::size_t cell_count() const noexcept { return live_cells_; }
  std::size_t max_versions() const noexcept { return max_versions_; }
  bool empty() const noexcept { return live_cells_ == 0; }

  /// Removes every cell. Interned keys (and their ids) survive, so key
  /// views held by outstanding FlatSnapshots stay valid.
  void clear() noexcept;

  /// Rough heap footprint of the table (SoA arrays at capacity, index,
  /// interned keys). Capacities, not sizes: this is what the process
  /// actually holds, which is what a memory ceiling must track.
  std::size_t approx_bytes() const;

  /// Drops retained versions beyond `keep` per cell (the latest `keep`
  /// survive; keep is clamped to >= 1). Returns the number of versions
  /// dropped. The inline slot layout means no bytes are reclaimed — this
  /// trims the *logical* history so as-of reads and checkpoints shrink.
  /// Caution: a pipelined reader at wave w needs the version window that
  /// covers w, so keep must be >= the deepest in-flight read window.
  std::size_t trim_versions(std::size_t keep) noexcept;

 private:
  static constexpr std::uint32_t kNoCell = 0xFFFFFFFFu;    ///< empty index slot
  static constexpr std::uint32_t kTombstone = 0xFFFFFFFEu; ///< erased index slot

  static constexpr std::uint64_t pack(std::uint32_t row, std::uint32_t col) noexcept {
    return (static_cast<std::uint64_t>(row) << 32) | col;
  }

  /// Cell index for (row_id, col_id), or kNoCell.
  std::uint32_t find_cell(std::uint32_t row_id, std::uint32_t col_id) const noexcept;
  /// Slot offset (within the cell's inline versions) of the newest version
  /// with timestamp <= ts, or max_versions_ when none qualifies. Linear over
  /// the retained versions — max_versions is small by construction.
  std::size_t version_at(std::uint32_t cell, Timestamp ts) const noexcept;
  std::uint32_t find_cell(std::string_view row, std::string_view column) const noexcept;
  void index_insert(std::uint64_t key, std::uint32_t cell);
  void grow_index();
  /// (Re)builds `sorted_` if a structural change invalidated it. Safe under
  /// concurrent readers; see the .cpp for the synchronization argument.
  void ensure_sorted() const;

  std::size_t max_versions_;

  KeyInterner rows_;
  KeyInterner cols_;

  // SoA cell storage: cell i's versions occupy
  // version_slots_[i * max_versions_ .. (i + 1) * max_versions_), newest
  // first, with cell_nver_[i] of them valid (0 = erased cell, reusable).
  std::vector<std::uint32_t> cell_row_;
  std::vector<std::uint32_t> cell_col_;
  std::vector<std::uint32_t> cell_nver_;
  std::vector<CellVersion> version_slots_;
  std::vector<std::uint32_t> free_cells_;

  // Open-addressing index: packed (row, col) key -> cell.
  std::vector<std::uint64_t> idx_key_;
  std::vector<std::uint32_t> idx_cell_;
  std::size_t idx_used_ = 0;  ///< occupied slots including tombstones

  std::vector<std::uint32_t> row_live_;  ///< live cells per row id
  std::size_t live_rows_ = 0;
  std::size_t live_cells_ = 0;

  // Live cells in (row, column) string order, rebuilt lazily on first scan
  // after a structural change (new/erased cell). Value updates do not
  // invalidate it.
  mutable std::vector<std::uint32_t> sorted_;
  mutable std::atomic<bool> sorted_valid_{false};
  mutable std::mutex sorted_mutex_;
};

}  // namespace smartflux::ds
