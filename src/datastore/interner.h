#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

#include "common/hashing.h"

namespace smartflux::ds {

/// Per-table string-key interner: maps every distinct key to a dense
/// `std::uint32_t` id (assigned in first-seen order, never reused or
/// recycled) and owns the canonical string. Keys live in a deque, so the
/// `const std::string*` views handed out stay valid for the interner's
/// lifetime even while new keys are interned — FlatSnapshot relies on this
/// to carry zero-copy key views out of the table lock.
///
/// Thread-compatible: the owning Table/DataStore must serialize `intern`
/// (writer) against `find`/`key` (readers). Dereferencing a previously
/// obtained `key_ptr` needs no lock at all: strings are never moved or
/// destroyed before the interner itself.
class KeyInterner {
 public:
  static constexpr std::uint32_t kNoId = 0xFFFFFFFFu;

  KeyInterner() : slots_(kInitialSlots, kNoId) {}

  /// Id of `key`, interning it on first sight.
  std::uint32_t intern(std::string_view key) {
    const std::uint64_t h = hash(key);
    std::size_t i = h & (slots_.size() - 1);
    while (slots_[i] != kNoId) {
      if (keys_[slots_[i]] == key) return slots_[i];
      i = (i + 1) & (slots_.size() - 1);
    }
    const auto id = static_cast<std::uint32_t>(keys_.size());
    keys_.emplace_back(key);
    key_bytes_ += key.size();
    slots_[i] = id;
    // Grow at ~70% load so linear probing stays short.
    if ((keys_.size() + 1) * 10 > slots_.size() * 7) grow();
    return id;
  }

  /// Id of `key` if already interned, kNoId otherwise.
  std::uint32_t find(std::string_view key) const noexcept {
    const std::uint64_t h = hash(key);
    std::size_t i = h & (slots_.size() - 1);
    while (slots_[i] != kNoId) {
      if (keys_[slots_[i]] == key) return slots_[i];
      i = (i + 1) & (slots_.size() - 1);
    }
    return kNoId;
  }

  const std::string& key(std::uint32_t id) const noexcept { return keys_[id]; }
  const std::string* key_ptr(std::uint32_t id) const noexcept { return &keys_[id]; }
  std::size_t size() const noexcept { return keys_.size(); }

  /// Rough heap footprint: key characters + per-string headers + index
  /// slots. Feeds the store's soft memory ceiling; same thread contract as
  /// the readers.
  std::size_t approx_bytes() const noexcept {
    return key_bytes_ + keys_.size() * sizeof(std::string) +
           slots_.capacity() * sizeof(std::uint32_t);
  }

 private:
  static constexpr std::size_t kInitialSlots = 64;  // power of two

  static std::uint64_t hash(std::string_view s) noexcept {
    std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a, finished with mix64
    for (const char c : s) {
      h ^= static_cast<unsigned char>(c);
      h *= 0x100000001b3ULL;
    }
    return mix64(h);
  }

  void grow() {
    std::vector<std::uint32_t> next(slots_.size() * 2, kNoId);
    for (std::uint32_t id = 0; id < keys_.size(); ++id) {
      std::size_t i = hash(keys_[id]) & (next.size() - 1);
      while (next[i] != kNoId) i = (i + 1) & (next.size() - 1);
      next[i] = id;
    }
    slots_ = std::move(next);
  }

  std::deque<std::string> keys_;        ///< id -> canonical string (pointer-stable)
  std::vector<std::uint32_t> slots_;    ///< open-addressing index, kNoId = empty
  std::size_t key_bytes_ = 0;           ///< total interned key characters
};

}  // namespace smartflux::ds
