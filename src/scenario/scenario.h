#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/fault_injection.h"
#include "datastore/client.h"
#include "wms/engine.h"

namespace smartflux::scenario {

/// One captured ingest write, as seen (and mutated) by the scenario engine.
struct CellWrite {
  ds::TableName table;
  ds::RowKey row;
  ds::ColumnKey column;
  double value = 0.0;
};

/// Burst arrivals: every `period` waves, `length` consecutive waves carry
/// `factor`x the normal cell volume. Extra cells are clones of the wave's
/// real cells under row suffixes "~b0".."~b<factor-2>" — a *bounded* key
/// pool (rows x (factor-1) extra keys total), so a soak run's footprint
/// stays a function of the configured universe, not of runtime.
struct BurstOptions {
  /// A burst starts every `period` waves; 0 disables bursts.
  std::size_t period = 0;
  /// Consecutive burst waves per period.
  std::size_t length = 1;
  /// Arrival multiplier during a burst (integer part used; must be > 1 to
  /// have any effect).
  double factor = 4.0;

  bool enabled() const noexcept { return period > 0 && factor > 1.0; }
};

/// Late sensors: each cell independently arrives `delay` waves late with
/// `probability`. A deferred cell is re-injected into the wave it arrives
/// in (and written with *that* wave's timestamp — late data is recorded at
/// arrival time, exactly like a real late report). Cells deferred past the
/// end of the run are never delivered.
struct LateOptions {
  double probability = 0.0;
  std::size_t delay = 1;

  bool enabled() const noexcept { return probability > 0.0; }
};

/// Missing sensors: each cell is silently dropped with `probability` while
/// the wave is inside [first_wave, last_wave].
struct DropOptions {
  double probability = 0.0;
  std::uint64_t first_wave = 0;
  std::uint64_t last_wave = ~std::uint64_t{0};

  bool enabled() const noexcept { return probability > 0.0; }
};

/// Hot-key skew: redirects `fraction` of cell writes onto one of `hot_keys`
/// shared rows ("hot~0".."hot~<n-1>"), concentrating load onto a few shard
/// lock domains the way a celebrity key would.
struct HotKeyOptions {
  double fraction = 0.0;
  std::size_t hot_keys = 4;

  bool enabled() const noexcept { return fraction > 0.0 && hot_keys > 0; }
};

/// Flash event: while the wave is inside [first_wave, last_wave], every
/// matching cell's value becomes value * scale + offset — a sudden regime
/// change (flash flood, sensor spike) the classifier has never seen.
struct FlashEvent {
  std::uint64_t first_wave = 0;
  std::uint64_t last_wave = 0;
  /// Restrict to one table; empty matches every table.
  ds::TableName table;
  double scale = 1.0;
  double offset = 0.0;

  bool active(ds::Timestamp wave) const noexcept {
    return wave >= first_wave && wave <= last_wave;
  }
};

/// Composable chaos configuration. Every probabilistic draw is a stateless
/// hash of (seed, mutator stream, wave, cell identity), so a given seed
/// reproduces the exact same mutation schedule on every run regardless of
/// thread count or call order — the same determinism contract FaultInjector
/// gives for step/disk faults.
struct ScenarioOptions {
  std::uint64_t seed = 0;
  BurstOptions burst{};
  LateOptions late{};
  DropOptions drop{};
  HotKeyOptions hot_key{};
  std::vector<FlashEvent> flash{};
};

/// Mutation accounting, readable after a run (not synchronized with a
/// concurrently running ingest — read it once the run has completed).
struct ScenarioStats {
  std::size_t cells_in = 0;        ///< cells captured from the inner ingest
  std::size_t cells_emitted = 0;   ///< cells actually written downstream
  std::size_t cells_dropped = 0;   ///< missing-sensor drops
  std::size_t cells_deferred = 0;  ///< late cells parked for a future wave
  std::size_t cells_replayed = 0;  ///< late cells delivered at arrival
  std::size_t burst_cells = 0;     ///< clone cells added by bursts
  std::size_t hot_key_redirects = 0;
  std::size_t flash_cells = 0;     ///< cell values rewritten by flash events
};

/// Wraps any workload's WaveIngest with deterministic input chaos: the inner
/// ingest runs against a private scratch store, its writes are captured,
/// mutated (late-arrival replay, drops, late deferral, flash events, hot-key
/// skew, bursts — in that order) and the surviving cells are emitted into
/// the real client as per-table batches.
///
/// The wrapper must outlive every ingest invocation. Invocations must be
/// sequential in wave order (the contract run_waves_pipelined already
/// guarantees: one ingest worker, strictly ordered waves).
class ScenarioEngine {
 public:
  explicit ScenarioEngine(ScenarioOptions options) : options_(std::move(options)) {}

  /// The chaos-wrapped ingest. Capturing `this`: the engine must outlive it.
  wms::WaveIngest wrap(wms::WaveIngest inner);

  /// True when `wave` falls inside a burst window (benches use this to
  /// bucket wave latencies into burst vs normal).
  bool burst_wave(ds::Timestamp wave) const noexcept;

  const ScenarioOptions& options() const noexcept { return options_; }
  const ScenarioStats& stats() const noexcept { return stats_; }

 private:
  void mutate_and_emit(ds::Client& out, ds::Timestamp wave, std::vector<CellWrite> cells);

  ScenarioOptions options_;
  ScenarioStats stats_;
  ds::DataStore scratch_{1};  ///< capture target, cleared every wave
  std::map<ds::Timestamp, std::vector<CellWrite>> deferred_;  ///< late cells by delivery wave
};

/// One deterministic chaos campaign: an input-mutation scenario plus a
/// step/disk fault schedule plus a socket-level client fault schedule, all
/// derived from a single master seed (scenario draws use hash64(seed, 1),
/// step/disk fault draws hash64(seed, 2), net chaos hash64(seed, 3)), so a
/// campaign is reproduced end to end by one number.
struct CampaignOptions {
  std::uint64_t seed = 0;
  /// Input chaos; its `seed` field is overwritten with the derived seed.
  ScenarioOptions scenario{};
  /// Step-attempt faults (throw / hang / failed writes).
  std::vector<FaultRule> step_faults{};
  /// Durable-sink faults (torn/short writes, fsync failures, crashes).
  std::vector<DiskFaultRule> disk_faults{};
  /// Socket-level client faults (partial writes, resets, stalls, duplicate
  /// retries); its `seed` field is overwritten with the derived seed.
  NetChaosOptions net_chaos{};
};

class Campaign {
 public:
  explicit Campaign(CampaignOptions options);

  /// Chaos-wraps a workload ingest (see ScenarioEngine::wrap).
  wms::WaveIngest wrap(wms::WaveIngest inner) { return scenario_.wrap(std::move(inner)); }

  ScenarioEngine& scenario() noexcept { return scenario_; }
  /// Wire this into WorkflowEngine::Options::fault_injector and/or
  /// DurabilityOptions::fault_injector.
  FaultInjector& faults() noexcept { return faults_; }
  /// Wire this into net::testing::ChaosClient instances driving the server.
  const NetChaosSchedule& net_chaos() const noexcept { return net_chaos_; }

 private:
  ScenarioEngine scenario_;
  FaultInjector faults_;
  NetChaosSchedule net_chaos_;
};

}  // namespace smartflux::scenario
