#include "scenario/scenario.h"

#include <algorithm>
#include <utility>

#include "common/hashing.h"
#include "datastore/container_ref.h"

namespace smartflux::scenario {

namespace {

// Distinct draw streams so the mutators' hashes never collide for the same
// (wave, cell) coordinate.
constexpr std::uint64_t kDropStream = 0xd309;
constexpr std::uint64_t kLateStream = 0x1a7e;
constexpr std::uint64_t kHotStream = 0x407c;

/// Stable identity of a cell across runs: table, row and column folded into
/// one 64-bit coordinate for the stateless draws.
std::uint64_t cell_id(const CellWrite& cell) noexcept {
  std::uint64_t h = hash64_bytes(cell.table);
  h = mix64(h ^ hash64_bytes(cell.row));
  return mix64(h ^ hash64_bytes(cell.column));
}

}  // namespace

wms::WaveIngest ScenarioEngine::wrap(wms::WaveIngest inner) {
  return [this, inner = std::move(inner)](ds::Client& out, ds::Timestamp wave) {
    std::vector<CellWrite> cells;
    ds::Client capture(scratch_, wave);
    inner(capture, wave);
    for (const ds::TableName& table : scratch_.table_names()) {
      scratch_.scan_container(
          ds::ContainerRef::whole_table(table),
          [&cells, &table](const ds::RowKey& row, const ds::ColumnKey& column, double value) {
            cells.push_back(CellWrite{table, row, column, value});
          });
    }
    scratch_.clear();
    mutate_and_emit(out, wave, std::move(cells));
  };
}

bool ScenarioEngine::burst_wave(ds::Timestamp wave) const noexcept {
  if (!options_.burst.enabled()) return false;
  return wave % options_.burst.period < options_.burst.length;
}

void ScenarioEngine::mutate_and_emit(ds::Client& out, ds::Timestamp wave,
                                     std::vector<CellWrite> cells) {
  stats_.cells_in += cells.size();

  // Late cells whose delivery wave has come are injected *ahead of* this
  // wave's fresh arrivals, so a fresh report for the same cell overwrites the
  // stale late one (batch order wins downstream). Replayed cells go through
  // the remaining mutators like any other cell — a late report can still be
  // dropped, hot-key skewed or flash-scaled — but never through the late
  // draw again (it already arrived; re-deferring would double-count
  // lateness and, at probability 1, starve delivery forever).
  std::vector<CellWrite> pending;
  if (auto it = deferred_.find(wave); it != deferred_.end()) {
    stats_.cells_replayed += it->second.size();
    pending = std::move(it->second);
    deferred_.erase(it);
  }
  const std::size_t replayed = pending.size();
  pending.reserve(replayed + cells.size());
  for (CellWrite& cell : cells) pending.push_back(std::move(cell));
  cells = std::move(pending);

  const std::uint64_t seed = options_.seed;
  std::vector<CellWrite> emit;
  emit.reserve(cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    CellWrite& cell = cells[i];
    const bool is_replay = i < replayed;
    const std::uint64_t id = cell_id(cell);
    if (options_.drop.enabled() && wave >= options_.drop.first_wave &&
        wave <= options_.drop.last_wave &&
        hash_unit(seed, kDropStream, wave, id) < options_.drop.probability) {
      ++stats_.cells_dropped;
      continue;
    }
    if (!is_replay && options_.late.enabled() &&
        hash_unit(seed, kLateStream, wave, id) < options_.late.probability) {
      ++stats_.cells_deferred;
      const std::size_t delay = std::max<std::size_t>(1, options_.late.delay);
      deferred_[wave + delay].push_back(std::move(cell));
      continue;
    }
    for (const FlashEvent& flash : options_.flash) {
      if (flash.active(wave) && (flash.table.empty() || flash.table == cell.table)) {
        cell.value = cell.value * flash.scale + flash.offset;
        ++stats_.flash_cells;
      }
    }
    if (options_.hot_key.enabled() &&
        hash_unit(seed, kHotStream, wave, id) < options_.hot_key.fraction) {
      cell.row = "hot~" + std::to_string(hash64(seed, kHotStream + 1, wave, id) %
                                         options_.hot_key.hot_keys);
      ++stats_.hot_key_redirects;
    }
    emit.push_back(std::move(cell));
  }

  if (burst_wave(wave)) {
    // Clone the wave's surviving cells into the bounded "~b<i>" pool.
    const auto copies = static_cast<std::size_t>(options_.burst.factor) - 1;
    const std::size_t base = emit.size();
    for (std::size_t rep = 0; rep < copies; ++rep) {
      for (std::size_t i = 0; i < base; ++i) {
        CellWrite clone = emit[i];
        clone.row += "~b" + std::to_string(rep);
        emit.push_back(std::move(clone));
        ++stats_.burst_cells;
      }
    }
  }

  // Emit per table as single batches: one lock acquisition per table per
  // wave downstream, and redirected duplicates (hot keys) overwrite in
  // batch order exactly like a put() loop would.
  std::map<ds::TableName, std::vector<ds::PutOp>> batches;
  for (const CellWrite& cell : emit) {
    batches[cell.table].push_back(ds::PutOp{cell.row, cell.column, cell.value});
  }
  for (const auto& [table, ops] : batches) {
    out.put_batch(table, ops);
  }
  stats_.cells_emitted += emit.size();
}

namespace {

ScenarioOptions derive_scenario(const CampaignOptions& options) {
  ScenarioOptions scenario = options.scenario;
  scenario.seed = hash64(options.seed, 1);
  return scenario;
}

NetChaosOptions derive_net_chaos(const CampaignOptions& options) {
  NetChaosOptions net = options.net_chaos;
  net.seed = hash64(options.seed, 3);
  return net;
}

}  // namespace

Campaign::Campaign(CampaignOptions options)
    : scenario_(derive_scenario(options)),
      faults_(hash64(options.seed, 2)),
      net_chaos_(derive_net_chaos(options)) {
  for (FaultRule& rule : options.step_faults) faults_.add_rule(std::move(rule));
  for (DiskFaultRule& rule : options.disk_faults) faults_.add_disk_rule(std::move(rule));
}

}  // namespace smartflux::scenario
