#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace smartflux::obs {

/// Key=value pairs identifying one time series within a metric family
/// (e.g. {{"step", "3_hotspots"}}). Sorted by key at registration, so the
/// same set in any order names the same series.
using Labels = std::vector<std::pair<std::string, std::string>>;

enum class MetricKind { kCounter, kGauge, kHistogram };
const char* metric_kind_name(MetricKind kind) noexcept;

/// Monotonic event counter. inc() is a single relaxed atomic add — safe to
/// call concurrently from worker threads on the hot path.
class Counter {
 public:
  void inc(std::uint64_t delta = 1) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  /// inc() that also returns the pre-increment value, so callers can derive
  /// 1-in-2^k sampling decisions from a counter they bump anyway instead of
  /// paying a second atomic for a dedicated sequence.
  std::uint64_t fetch_inc() noexcept { return value_.fetch_add(1, std::memory_order_relaxed); }
  /// Increment as a plain load + store instead of a locked RMW — several
  /// times cheaper, but increments are lost if two threads write the same
  /// series concurrently. Only for series with one writer thread (or
  /// externally serialized writers), e.g. the engine's per-wave rollup;
  /// concurrent readers are always safe.
  void inc_single_writer(std::uint64_t delta = 1) noexcept {
    value_.store(value_.load(std::memory_order_relaxed) + delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-value instrument (rates, sizes, phase numbers). set()/add() are
/// lock-free (add is a CAS loop).
class Gauge {
 public:
  void set(double x) noexcept { value_.store(x, std::memory_order_relaxed); }
  void add(double delta) noexcept {
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + delta, std::memory_order_relaxed)) {
    }
  }
  double value() const noexcept { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram. Bucket upper bounds are set at registration and
/// shared by every series of the family; an implicit +Inf overflow bucket is
/// always appended. observe() is two relaxed atomic adds (matching bucket +
/// running sum) — no locks and no CAS loops on the hot path. A sample x
/// lands in the first bucket with x <= upper_bound (Prometheus `le`
/// semantics).
///
/// The sum is accumulated in signed fixed-point nano-units (1e-9) so it can
/// be a plain integer fetch_add: observations are rounded to 1e-9 resolution
/// and the running sum must stay within ±9.2e9 units. Both limits are far
/// beyond what duration-in-seconds series — the intended use — ever reach.
class Histogram {
 public:
  /// `bounds` must be non-empty and strictly increasing.
  explicit Histogram(std::vector<double> bounds);

  void observe(double x) noexcept;
  /// observe() with plain load + store updates instead of locked RMWs; same
  /// single-writer-per-series contract as Counter::inc_single_writer().
  void observe_single_writer(double x) noexcept;
  const std::vector<double>& bounds() const noexcept { return bounds_; }
  /// Samples recorded so far (sum over all buckets).
  std::uint64_t count() const noexcept;
  double sum() const noexcept {
    return static_cast<double>(
               static_cast<std::int64_t>(sum_nano_.load(std::memory_order_relaxed))) /
           1e9;
  }
  /// Per-bucket (non-cumulative) counts; the last entry is the +Inf bucket.
  std::vector<std::uint64_t> bucket_counts() const;

 private:
  std::size_t bucket_for(double x) const noexcept;
  static std::uint64_t to_nano(double x) noexcept;

  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> sum_nano_{0};  ///< two's-complement nano-units
};

/// `count` buckets starting at `start`, each `width` wide.
std::vector<double> linear_buckets(double start, double width, std::size_t count);
/// `count` buckets starting at `start`, each `factor` times the previous.
std::vector<double> exponential_buckets(double start, double factor, std::size_t count);
/// Default buckets for wave/step/op durations in seconds: 1us .. ~4.2s,
/// geometric factor 4 (12 buckets + the implicit +Inf).
std::vector<double> duration_buckets();

/// Point-in-time copy of one histogram series, decoupled from the live
/// atomics (snapshot isolation: exporters never observe torn families).
struct HistogramSnapshot {
  std::vector<double> bounds;          ///< finite upper bounds
  std::vector<std::uint64_t> counts;   ///< per bucket, non-cumulative; last = +Inf
  double sum = 0.0;
  std::uint64_t count = 0;

  /// Quantile estimate (q in [0,1]) by linear interpolation inside the
  /// bucket holding the target rank. Samples in the +Inf bucket are
  /// attributed to the largest finite bound. Returns 0 when empty.
  double quantile(double q) const noexcept;
};

struct MetricSnapshot {
  std::string name;
  Labels labels;
  MetricKind kind = MetricKind::kCounter;
  std::uint64_t counter_value = 0;  ///< kCounter
  double gauge_value = 0.0;         ///< kGauge
  HistogramSnapshot histogram;      ///< kHistogram
};

struct MetricsSnapshot {
  /// Sorted by (name, labels) — exposition output is deterministic.
  std::vector<MetricSnapshot> metrics;
  /// Family name -> help text (families registered with empty help omitted).
  std::map<std::string, std::string> help;
};

/// Registry of labeled metric families. Registration (counter()/gauge()/
/// histogram()) takes a mutex and returns a reference that stays valid for
/// the registry's lifetime — components resolve their handles once at
/// construction and touch only lock-free atomics afterwards. Re-registering
/// the same (name, labels) returns the existing instrument; registering a
/// name under a different kind (or a histogram with different bounds) throws
/// InvalidArgument.
///
/// Naming scheme (see DESIGN.md §9): sf_<layer>_<noun>[_total|_seconds],
/// layers wms | smartflux | ml | ds. Labels are reserved for small, closed
/// sets (step ids, statuses, op names) — never per-wave or per-row values.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(const std::string& name, Labels labels = {}, const std::string& help = "");
  Gauge& gauge(const std::string& name, Labels labels = {}, const std::string& help = "");
  Histogram& histogram(const std::string& name, std::vector<double> bounds, Labels labels = {},
                       const std::string& help = "");

  /// Consistent point-in-time copy of every registered series.
  MetricsSnapshot snapshot() const;
  std::size_t series_count() const;

 private:
  struct Family {
    MetricKind kind = MetricKind::kCounter;
    std::string help;
    std::vector<double> bounds;  ///< histogram families only
    std::map<Labels, std::unique_ptr<Counter>> counters;
    std::map<Labels, std::unique_ptr<Gauge>> gauges;
    std::map<Labels, std::unique_ptr<Histogram>> histograms;
  };

  Family& family_for(const std::string& name, MetricKind kind, const std::string& help);

  mutable std::mutex mutex_;
  std::map<std::string, Family> families_;
};

}  // namespace smartflux::obs
