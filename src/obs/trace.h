#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace smartflux::obs {

/// One completed span. Timestamps are steady-clock offsets from the tracer's
/// construction (its epoch), so records are self-contained for export and
/// never depend on wall-clock time.
struct SpanRecord {
  std::uint64_t id = 0;
  std::uint64_t parent = 0;  ///< 0 = root span
  std::string name;          ///< e.g. "wave:42", "step:3_hotspots", "forest_fit"
  std::string category;      ///< layer: "wms", "smartflux", "ml", "ds"
  std::chrono::nanoseconds start{0};
  std::chrono::nanoseconds duration{0};
  std::uint32_t thread = 0;  ///< dense per-tracer thread ordinal (1-based)
};

class Tracer;

/// RAII span handle: records its duration into the tracer on destruction (or
/// an explicit finish()). A default-constructed Span — or one obtained from
/// start_span(nullptr, ...) — is inert and free to destroy, which is how
/// instrumented code stays zero-cost when tracing is disabled.
class Span {
 public:
  Span() = default;
  Span(Span&& other) noexcept;
  Span& operator=(Span&& other) noexcept;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { finish(); }

  /// Records the span now; further calls are no-ops.
  void finish() noexcept;
  /// Span id for parenting child spans (0 when inert).
  std::uint64_t id() const noexcept { return id_; }
  bool active() const noexcept { return tracer_ != nullptr; }

 private:
  friend class Tracer;
  Span(Tracer* tracer, std::uint64_t id, std::uint64_t parent, std::string name,
       std::string category, std::chrono::steady_clock::time_point start)
      : tracer_(tracer),
        id_(id),
        parent_(parent),
        name_(std::move(name)),
        category_(std::move(category)),
        start_(start) {}

  Tracer* tracer_ = nullptr;
  std::uint64_t id_ = 0;
  std::uint64_t parent_ = 0;
  std::string name_;
  std::string category_;
  std::chrono::steady_clock::time_point start_{};
};

/// Collects wave/step/train/predict/datastore spans into a bounded in-memory
/// buffer. Span creation stamps a steady-clock timestamp and draws an id from
/// an atomic; completion appends one record under a mutex (spans complete at
/// wave/step granularity, so the lock is far off any per-cell path). When the
/// buffer is full new records are counted as dropped rather than evicting
/// older ones — the head of a run is usually the interesting part.
///
/// The buffer is fully preallocated at construction, so memory use is
/// max_spans * sizeof(SpanRecord) (~6 MB at the default cap) up front and
/// recording never allocates. Size the cap to the run you intend to trace.
class Tracer {
 public:
  explicit Tracer(std::size_t max_spans = 65536);
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Starts a live span; finish (or destroy) it to record.
  Span span(std::string name, std::string category, std::uint64_t parent = 0);

  /// Records an already-measured interval (used where the caller timed the
  /// work anyway, e.g. step durations). Returns the span id.
  std::uint64_t record(std::string name, std::string category, std::uint64_t parent,
                       std::chrono::steady_clock::time_point start,
                       std::chrono::nanoseconds duration);

  /// Reserves `n` consecutive span ids and returns the first (0 when n == 0).
  /// Callers assembling a batch draw all their ids in one atomic add.
  std::uint64_t allocate_ids(std::size_t n) noexcept;

  /// Appends a batch of completed records under a single lock — the
  /// per-wave fast path (one lock and one thread-ordinal lookup instead of
  /// one per span). Records must carry ids from allocate_ids() and start
  /// offsets relative to epoch(); a zero `thread` field is filled with the
  /// calling thread's ordinal. Tail records beyond capacity are dropped and
  /// counted, like record(). The batch is consumed and cleared but keeps its
  /// capacity, so callers can reuse one scratch vector across waves without
  /// reallocating.
  void record_all(std::vector<SpanRecord>& records);

  std::vector<SpanRecord> snapshot() const;
  std::size_t size() const;
  std::size_t dropped() const noexcept { return dropped_.load(std::memory_order_relaxed); }
  void clear();

  std::chrono::steady_clock::time_point epoch() const noexcept { return epoch_; }

 private:
  friend class Span;
  void store(SpanRecord record);
  std::uint32_t thread_ordinal_locked();

  const std::size_t max_spans_;
  const std::chrono::steady_clock::time_point epoch_;
  std::atomic<std::uint64_t> next_id_{1};
  std::atomic<std::size_t> dropped_{0};
  mutable std::mutex mutex_;
  std::vector<SpanRecord> spans_;
  std::map<std::thread::id, std::uint32_t> thread_ordinals_;
};

/// Null-safe helper: an inert Span when `tracer` is null, a live one
/// otherwise. Instrumented code uses this so the disabled path is one branch.
Span start_span(Tracer* tracer, std::string name, std::string category,
                std::uint64_t parent = 0);

}  // namespace smartflux::obs
