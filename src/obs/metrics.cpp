#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace smartflux::obs {

namespace {

bool valid_metric_name(const std::string& name) {
  if (name.empty()) return false;
  auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == ':';
  };
  if (!head(name[0])) return false;
  for (char c : name) {
    if (!head(c) && !(c >= '0' && c <= '9')) return false;
  }
  return true;
}

bool valid_label_name(const std::string& name) {
  if (name.empty()) return false;
  auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
  };
  if (!head(name[0])) return false;
  for (char c : name) {
    if (!head(c) && !(c >= '0' && c <= '9')) return false;
  }
  return true;
}

/// Sorts labels by key and validates names; duplicate keys are an error.
Labels normalize_labels(Labels labels, const std::string& metric) {
  std::sort(labels.begin(), labels.end());
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (!valid_label_name(labels[i].first)) {
      throw InvalidArgument("invalid label name '" + labels[i].first + "' on metric '" + metric +
                            "'");
    }
    if (i > 0 && labels[i].first == labels[i - 1].first) {
      throw InvalidArgument("duplicate label '" + labels[i].first + "' on metric '" + metric +
                            "'");
    }
  }
  return labels;
}

}  // namespace

const char* metric_kind_name(MetricKind kind) noexcept {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  SF_CHECK(!bounds_.empty(), "histogram needs at least one bucket bound");
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    SF_CHECK(bounds_[i] > bounds_[i - 1], "histogram bounds must be strictly increasing");
  }
  counts_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) counts_[i].store(0);
}

std::size_t Histogram::bucket_for(double x) const noexcept {
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    if (x <= bounds_[i]) return i;
  }
  return bounds_.size();  // +Inf overflow
}

std::uint64_t Histogram::to_nano(double x) noexcept {
  // Signed nano-units wrap correctly through the unsigned accumulator for
  // negative observations too (two's complement), as long as the running sum
  // stays within the int64 range.
  return static_cast<std::uint64_t>(
      static_cast<std::int64_t>(x * 1e9 + (x < 0.0 ? -0.5 : 0.5)));
}

void Histogram::observe(double x) noexcept {
  counts_[bucket_for(x)].fetch_add(1, std::memory_order_relaxed);
  sum_nano_.fetch_add(to_nano(x), std::memory_order_relaxed);
}

void Histogram::observe_single_writer(double x) noexcept {
  std::atomic<std::uint64_t>& slot = counts_[bucket_for(x)];
  slot.store(slot.load(std::memory_order_relaxed) + 1, std::memory_order_relaxed);
  sum_nano_.store(sum_nano_.load(std::memory_order_relaxed) + to_nano(x),
                  std::memory_order_relaxed);
}

std::uint64_t Histogram::count() const noexcept {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    total += counts_[i].load(std::memory_order_relaxed);
  }
  return total;
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    out[i] = counts_[i].load(std::memory_order_relaxed);
  }
  return out;
}

std::vector<double> linear_buckets(double start, double width, std::size_t count) {
  SF_CHECK(count > 0 && width > 0.0, "linear_buckets needs count > 0 and width > 0");
  std::vector<double> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) out.push_back(start + width * static_cast<double>(i));
  return out;
}

std::vector<double> exponential_buckets(double start, double factor, std::size_t count) {
  SF_CHECK(count > 0 && start > 0.0 && factor > 1.0,
           "exponential_buckets needs count > 0, start > 0, factor > 1");
  std::vector<double> out;
  out.reserve(count);
  double bound = start;
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(bound);
    bound *= factor;
  }
  return out;
}

std::vector<double> duration_buckets() { return exponential_buckets(1e-6, 4.0, 12); }

double HistogramSnapshot::quantile(double q) const noexcept {
  if (count == 0 || bounds.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const std::uint64_t next = cumulative + counts[i];
    if (static_cast<double>(next) >= target) {
      if (i >= bounds.size()) return bounds.back();  // +Inf bucket: clamp
      const double lower = i == 0 ? 0.0 : bounds[i - 1];
      const double upper = bounds[i];
      if (counts[i] == 0) return upper;
      const double frac =
          (target - static_cast<double>(cumulative)) / static_cast<double>(counts[i]);
      return lower + (upper - lower) * std::clamp(frac, 0.0, 1.0);
    }
    cumulative = next;
  }
  return bounds.back();
}

MetricsRegistry::Family& MetricsRegistry::family_for(const std::string& name, MetricKind kind,
                                                     const std::string& help) {
  if (!valid_metric_name(name)) throw InvalidArgument("invalid metric name '" + name + "'");
  auto [it, inserted] = families_.try_emplace(name);
  Family& family = it->second;
  if (inserted) {
    family.kind = kind;
    family.help = help;
  } else if (family.kind != kind) {
    throw InvalidArgument("metric '" + name + "' already registered as " +
                          metric_kind_name(family.kind));
  } else if (family.help.empty() && !help.empty()) {
    family.help = help;
  }
  return family;
}

Counter& MetricsRegistry::counter(const std::string& name, Labels labels,
                                  const std::string& help) {
  Labels key = normalize_labels(std::move(labels), name);
  std::lock_guard lock(mutex_);
  Family& family = family_for(name, MetricKind::kCounter, help);
  auto& slot = family.counters[std::move(key)];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name, Labels labels, const std::string& help) {
  Labels key = normalize_labels(std::move(labels), name);
  std::lock_guard lock(mutex_);
  Family& family = family_for(name, MetricKind::kGauge, help);
  auto& slot = family.gauges[std::move(key)];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name, std::vector<double> bounds,
                                      Labels labels, const std::string& help) {
  Labels key = normalize_labels(std::move(labels), name);
  std::lock_guard lock(mutex_);
  Family& family = family_for(name, MetricKind::kHistogram, help);
  if (family.histograms.empty()) {
    family.bounds = bounds;
  } else if (family.bounds != bounds) {
    throw InvalidArgument("histogram '" + name + "' re-registered with different bounds");
  }
  auto& slot = family.histograms[std::move(key)];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return *slot;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot out;
  std::lock_guard lock(mutex_);
  for (const auto& [name, family] : families_) {
    if (!family.help.empty()) out.help[name] = family.help;
    for (const auto& [labels, counter] : family.counters) {
      MetricSnapshot m;
      m.name = name;
      m.labels = labels;
      m.kind = MetricKind::kCounter;
      m.counter_value = counter->value();
      out.metrics.push_back(std::move(m));
    }
    for (const auto& [labels, gauge] : family.gauges) {
      MetricSnapshot m;
      m.name = name;
      m.labels = labels;
      m.kind = MetricKind::kGauge;
      m.gauge_value = gauge->value();
      out.metrics.push_back(std::move(m));
    }
    for (const auto& [labels, histogram] : family.histograms) {
      MetricSnapshot m;
      m.name = name;
      m.labels = labels;
      m.kind = MetricKind::kHistogram;
      m.histogram.bounds = histogram->bounds();
      m.histogram.counts = histogram->bucket_counts();
      m.histogram.sum = histogram->sum();
      m.histogram.count = 0;
      for (std::uint64_t c : m.histogram.counts) m.histogram.count += c;
      out.metrics.push_back(std::move(m));
    }
  }
  return out;
}

std::size_t MetricsRegistry::series_count() const {
  std::lock_guard lock(mutex_);
  std::size_t n = 0;
  for (const auto& [_, family] : families_) {
    n += family.counters.size() + family.gauges.size() + family.histograms.size();
  }
  return n;
}

}  // namespace smartflux::obs
