#include "obs/trace.h"

#include <utility>

namespace smartflux::obs {

Span::Span(Span&& other) noexcept
    : tracer_(std::exchange(other.tracer_, nullptr)),
      id_(other.id_),
      parent_(other.parent_),
      name_(std::move(other.name_)),
      category_(std::move(other.category_)),
      start_(other.start_) {}

Span& Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    finish();
    tracer_ = std::exchange(other.tracer_, nullptr);
    id_ = other.id_;
    parent_ = other.parent_;
    name_ = std::move(other.name_);
    category_ = std::move(other.category_);
    start_ = other.start_;
  }
  return *this;
}

void Span::finish() noexcept {
  if (tracer_ == nullptr) return;
  Tracer* tracer = std::exchange(tracer_, nullptr);
  const auto end = std::chrono::steady_clock::now();
  SpanRecord record;
  record.id = id_;
  record.parent = parent_;
  record.name = std::move(name_);
  record.category = std::move(category_);
  record.start = std::chrono::duration_cast<std::chrono::nanoseconds>(start_ - tracer->epoch());
  record.duration = std::chrono::duration_cast<std::chrono::nanoseconds>(end - start_);
  tracer->store(std::move(record));
}

Tracer::Tracer(std::size_t max_spans)
    : max_spans_(max_spans), epoch_(std::chrono::steady_clock::now()) {
  // Preallocate and pre-fault the whole bounded buffer (resize touches every
  // page; clear keeps the capacity). Recording then never reallocates or
  // takes a first-touch page fault mid-run — that cost lands here, at setup.
  spans_.resize(max_spans_);
  spans_.clear();
}

Span Tracer::span(std::string name, std::string category, std::uint64_t parent) {
  const std::uint64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
  return Span(this, id, parent, std::move(name), std::move(category),
              std::chrono::steady_clock::now());
}

std::uint64_t Tracer::record(std::string name, std::string category, std::uint64_t parent,
                             std::chrono::steady_clock::time_point start,
                             std::chrono::nanoseconds duration) {
  const std::uint64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
  SpanRecord r;
  r.id = id;
  r.parent = parent;
  r.name = std::move(name);
  r.category = std::move(category);
  r.start = std::chrono::duration_cast<std::chrono::nanoseconds>(start - epoch_);
  r.duration = duration;
  store(std::move(r));
  return id;
}

std::uint64_t Tracer::allocate_ids(std::size_t n) noexcept {
  if (n == 0) return 0;
  return next_id_.fetch_add(n, std::memory_order_relaxed);
}

void Tracer::record_all(std::vector<SpanRecord>& records) {
  if (records.empty()) return;
  {
    std::lock_guard lock(mutex_);
    const std::uint32_t ordinal = thread_ordinal_locked();
    for (SpanRecord& record : records) {
      if (spans_.size() >= max_spans_) {
        dropped_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      if (record.thread == 0) record.thread = ordinal;
      spans_.push_back(std::move(record));
    }
  }
  records.clear();
}

void Tracer::store(SpanRecord record) {
  std::lock_guard lock(mutex_);
  if (spans_.size() >= max_spans_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  record.thread = thread_ordinal_locked();
  spans_.push_back(std::move(record));
}

std::uint32_t Tracer::thread_ordinal_locked() {
  const auto id = std::this_thread::get_id();
  auto [it, inserted] =
      thread_ordinals_.emplace(id, static_cast<std::uint32_t>(thread_ordinals_.size() + 1));
  return it->second;
}

std::vector<SpanRecord> Tracer::snapshot() const {
  std::lock_guard lock(mutex_);
  return spans_;
}

std::size_t Tracer::size() const {
  std::lock_guard lock(mutex_);
  return spans_.size();
}

void Tracer::clear() {
  std::lock_guard lock(mutex_);
  spans_.clear();
  dropped_.store(0, std::memory_order_relaxed);
}

Span start_span(Tracer* tracer, std::string name, std::string category, std::uint64_t parent) {
  if (tracer == nullptr) return Span{};
  return tracer->span(std::move(name), std::move(category), parent);
}

}  // namespace smartflux::obs
