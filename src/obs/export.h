#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace smartflux::obs {

/// Escapes a Prometheus label value: backslash, double quote, and newline.
std::string prometheus_escape(std::string_view value);
/// Escapes a string for embedding in a JSON string literal (quotes,
/// backslashes, control characters).
std::string json_escape(std::string_view value);

/// Prometheus text exposition format (version 0.0.4): # HELP / # TYPE
/// comments, one line per series, histograms expanded to cumulative
/// <name>_bucket{le=...} plus <name>_sum / <name>_count.
std::string to_prometheus(const MetricsSnapshot& snapshot);

/// JSON snapshot: {"metrics": [{name, kind, labels, ...}, ...]}. Histogram
/// buckets are non-cumulative with their upper bound ("le"; the overflow
/// bucket's bound is the string "+Inf").
std::string to_json(const MetricsSnapshot& snapshot);

/// Chrome trace_event JSON ({"traceEvents": [...]}) of complete ("ph":"X")
/// events, loadable in chrome://tracing and Perfetto. Timestamps and
/// durations are microseconds from the tracer's epoch; span ids and parent
/// links are carried in "args".
std::string to_chrome_trace(const std::vector<SpanRecord>& spans);

/// Writes `content` to `path` ("-" = stdout). Throws Error on failure.
void write_text_file(const std::string& path, std::string_view content);

}  // namespace smartflux::obs
