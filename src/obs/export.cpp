#include "obs/export.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/error.h"
#include "common/fsync.h"

namespace smartflux::obs {

namespace {

/// Formats a double the way Prometheus expects: plain decimal / scientific,
/// shortest round-trippable form is not required — %.17g is always valid.
std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string label_block(const Labels& labels, const std::string& extra_key = "",
                        const std::string& extra_value = "") {
  if (labels.empty() && extra_key.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ',';
    first = false;
    out += key;
    out += "=\"";
    out += prometheus_escape(value);
    out += '"';
  }
  if (!extra_key.empty()) {
    if (!first) out += ',';
    out += extra_key;
    out += "=\"";
    out += prometheus_escape(extra_value);
    out += '"';
  }
  out += '}';
  return out;
}

void append_json_labels(std::string& out, const Labels& labels) {
  out += "\"labels\":{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += json_escape(key);
    out += "\":\"";
    out += json_escape(value);
    out += '"';
  }
  out += '}';
}

}  // namespace

std::string prometheus_escape(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string json_escape(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string to_prometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  std::string last_family;
  for (const MetricSnapshot& m : snapshot.metrics) {
    if (m.name != last_family) {
      last_family = m.name;
      const auto help = snapshot.help.find(m.name);
      if (help != snapshot.help.end()) {
        out += "# HELP " + m.name + " " + help->second + "\n";
      }
      out += "# TYPE " + m.name + " ";
      out += metric_kind_name(m.kind);
      out += '\n';
    }
    switch (m.kind) {
      case MetricKind::kCounter:
        out += m.name + label_block(m.labels) + " " + std::to_string(m.counter_value) + "\n";
        break;
      case MetricKind::kGauge:
        out += m.name + label_block(m.labels) + " " + format_double(m.gauge_value) + "\n";
        break;
      case MetricKind::kHistogram: {
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < m.histogram.counts.size(); ++i) {
          cumulative += m.histogram.counts[i];
          const std::string le =
              i < m.histogram.bounds.size() ? format_double(m.histogram.bounds[i]) : "+Inf";
          out += m.name + "_bucket" + label_block(m.labels, "le", le) + " " +
                 std::to_string(cumulative) + "\n";
        }
        out += m.name + "_sum" + label_block(m.labels) + " " + format_double(m.histogram.sum) +
               "\n";
        out += m.name + "_count" + label_block(m.labels) + " " +
               std::to_string(m.histogram.count) + "\n";
        break;
      }
    }
  }
  return out;
}

std::string to_json(const MetricsSnapshot& snapshot) {
  std::string out = "{\"metrics\":[";
  bool first = true;
  for (const MetricSnapshot& m : snapshot.metrics) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"" + json_escape(m.name) + "\",\"kind\":\"";
    out += metric_kind_name(m.kind);
    out += "\",";
    append_json_labels(out, m.labels);
    switch (m.kind) {
      case MetricKind::kCounter:
        out += ",\"value\":" + std::to_string(m.counter_value);
        break;
      case MetricKind::kGauge:
        out += ",\"value\":" + format_double(m.gauge_value);
        break;
      case MetricKind::kHistogram: {
        out += ",\"count\":" + std::to_string(m.histogram.count);
        out += ",\"sum\":" + format_double(m.histogram.sum);
        out += ",\"buckets\":[";
        for (std::size_t i = 0; i < m.histogram.counts.size(); ++i) {
          if (i > 0) out += ',';
          out += "{\"le\":";
          if (i < m.histogram.bounds.size()) {
            out += format_double(m.histogram.bounds[i]);
          } else {
            out += "\"+Inf\"";
          }
          out += ",\"count\":" + std::to_string(m.histogram.counts[i]) + "}";
        }
        out += ']';
        break;
      }
    }
    out += '}';
  }
  out += "]}";
  return out;
}

std::string to_chrome_trace(const std::vector<SpanRecord>& spans) {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const SpanRecord& span : spans) {
    if (!first) out += ',';
    first = false;
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%u,"
                  "\"args\":{\"id\":%" PRIu64 ",\"parent\":%" PRIu64 "}",
                  static_cast<double>(span.start.count()) / 1e3,
                  static_cast<double>(span.duration.count()) / 1e3, span.thread, span.id,
                  span.parent);
    out += "{\"name\":\"" + json_escape(span.name) + "\",\"cat\":\"" +
           json_escape(span.category) + "\",";
    out += buf;
    out += '}';
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

void write_text_file(const std::string& path, std::string_view content) {
  if (path == "-") {
    std::fwrite(content.data(), 1, content.size(), stdout);
    return;
  }
  {
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    if (!os) throw Error("cannot open '" + path + "' for writing");
    os.write(content.data(), static_cast<std::streamsize>(content.size()));
    // flush + close-check before fsync: a full disk surfaces here, not as a
    // silently truncated export.
    os.flush();
    if (!os) throw Error("failed writing '" + path + "'");
    os.close();
    if (os.fail()) throw Error("failed closing '" + path + "'");
  }
  // Exports feed dashboards and committed bench artifacts; make them durable
  // with the same primitive (and failure contract) as the WAL.
  fsync_path(path);
}

}  // namespace smartflux::obs
