#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <vector>

#include "ml/decision_tree.h"

namespace smartflux::obs {
class MetricsRegistry;
class Tracer;
class Gauge;
class Histogram;
}  // namespace smartflux::obs

namespace smartflux::ml {

struct ForestOptions {
  std::size_t num_trees = 64;
  TreeOptions tree;
  /// Fraction of the training set drawn (with replacement) per tree.
  double bootstrap_fraction = 1.0;
  /// Score threshold above which class 1 is predicted; lowering it below 0.5
  /// trades precision for recall (paper §3.2 / §5.2: the LRB classifier is
  /// optimized for recall).
  double decision_threshold = 0.5;
  /// Worker threads fit() uses to train trees concurrently; 0 or 1 = serial.
  /// Training is deterministic either way: every per-tree seed and bootstrap
  /// sample is drawn from the forest RNG up front in serial order, so the
  /// fitted forest — including its save() bytes — is identical at any thread
  /// count. Execution policy only: not serialized by save()/load().
  std::size_t train_threads = 0;
  /// Observability sinks (neither owned; null = no instrumentation). Fit and
  /// batched scoring report durations and tree counts under sf_ml_* metrics;
  /// fits also record "forest_fit" spans. Like train_threads, execution
  /// policy only: not serialized by save()/load().
  obs::MetricsRegistry* metrics = nullptr;
  obs::Tracer* tracer = nullptr;
};

/// Random Forest (Breiman 2001): bagged CART trees with per-split feature
/// subsampling. The default classifier of SmartFlux (paper §3.2: best mean
/// ROC area, 0.86, across both benchmark workloads).
class RandomForest final : public Classifier {
 public:
  explicit RandomForest(ForestOptions options = {}, std::uint64_t seed = 1);

  void fit(const Dataset& data) override;
  int predict(std::span<const double> x) const override;
  /// Fraction of trees voting for class 1 (binary); mean posterior otherwise.
  double predict_score(std::span<const double> x) const override;
  /// Batched scoring, tree-major: each flattened tree makes one pass over the
  /// whole batch while its arrays stay in cache. Bit-identical to per-row
  /// predict_score (same tree summation order).
  void predict_scores(std::span<const double> rows, std::size_t num_rows,
                      std::span<double> out) const override;
  /// Batched decisions; binary forests reuse the batched scoring pass.
  void predict_batch(std::span<const double> rows, std::size_t num_rows,
                     std::span<int> out) const override;
  bool is_fitted() const noexcept override { return !trees_.empty(); }
  std::string name() const override { return "RandomForest"; }

  std::size_t num_trees() const noexcept { return trees_.size(); }
  const ForestOptions& options() const noexcept { return options_; }

  /// Out-of-bag accuracy estimate from the last fit (NaN if bootstrap
  /// produced no OOB samples, e.g. bootstrap_fraction heavily > 1).
  double oob_accuracy() const noexcept { return oob_accuracy_; }

  /// Persists the fitted forest (trees + the full ForestOptions except
  /// train_threads, which is an execution policy, not part of the model);
  /// load() restores a forest making identical predictions and whose
  /// options() — and therefore any re-fit — match the saved forest. Streams
  /// written by the legacy format (num_trees + threshold only) still load,
  /// with the unstored options at their defaults.
  void save(std::ostream& os) const;
  static RandomForest load(std::istream& is);

 private:
  ForestOptions options_;
  Rng rng_;
  std::vector<DecisionTree> trees_;
  std::size_t num_classes_ = 0;
  double oob_accuracy_ = 0.0;
  // Metric handles resolved once at construction when options_.metrics is set.
  obs::Histogram* train_duration_ = nullptr;
  obs::Histogram* predict_duration_ = nullptr;
  obs::Gauge* trees_gauge_ = nullptr;
};

}  // namespace smartflux::ml
