#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"
#include "ml/classifier.h"

namespace smartflux::ml {

/// Binary confusion-matrix counts (class 1 = positive).
struct Confusion {
  std::size_t tp = 0;
  std::size_t tn = 0;
  std::size_t fp = 0;
  std::size_t fn = 0;

  std::size_t total() const noexcept { return tp + tn + fp + fn; }
  void add(int truth, int predicted) noexcept;

  /// Proportion of instances correctly classified (paper §3.2).
  double accuracy() const noexcept;
  /// TP / (TP + FP); 1 when no positive predictions were made.
  double precision() const noexcept;
  /// TP / (TP + FN); 1 when there are no positives.
  double recall() const noexcept;
  double f1() const noexcept;
};

/// Area under the ROC curve from scores and binary labels (rank statistic /
/// Mann–Whitney U, with tie correction). Returns 0.5 when one class is absent.
double roc_auc(std::span<const double> scores, std::span<const int> labels) noexcept;

/// Evaluates a fitted classifier on a test set.
Confusion evaluate(const Classifier& clf, const Dataset& test);

struct CvMetrics {
  double accuracy = 0.0;
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  double roc_area = 0.0;
  std::size_t folds = 0;
};

/// Stratified k-fold cross-validation (paper §3.1 uses 10-fold). Trains a
/// fresh classifier per fold via `factory` and averages fold metrics.
CvMetrics cross_validate(const ClassifierFactory& factory, const Dataset& data, std::size_t folds,
                         std::uint64_t seed = 42);

/// Random train/test split preserving class ratios (stratified).
std::pair<Dataset, Dataset> train_test_split(const Dataset& data, double test_fraction,
                                             std::uint64_t seed = 42);

}  // namespace smartflux::ml
