#include "ml/multilabel.h"

#include "common/error.h"
#include "ml/evaluation.h"

namespace smartflux::ml {

MultiLabelDataset::MultiLabelDataset(std::size_t num_features, std::size_t num_labels)
    : num_features_(num_features), num_labels_(num_labels) {
  SF_CHECK(num_features >= 1, "need at least one feature");
  SF_CHECK(num_labels >= 1, "need at least one label");
}

void MultiLabelDataset::add(std::span<const double> x, std::span<const int> labels) {
  SF_CHECK(num_features_ != 0, "dataset not initialized");
  SF_CHECK(x.size() == num_features_, "feature width mismatch");
  SF_CHECK(labels.size() == num_labels_, "label width mismatch");
  features_.insert(features_.end(), x.begin(), x.end());
  labels_.insert(labels_.end(), labels.begin(), labels.end());
  ++rows_;
}

Dataset MultiLabelDataset::project(std::size_t label_index) const {
  SF_CHECK(label_index < num_labels_, "label index out of range");
  Dataset out(num_features_);
  out.reserve(rows_);
  for (std::size_t i = 0; i < rows_; ++i) out.add(features(i), labels(i)[label_index]);
  return out;
}

Dataset MultiLabelDataset::project(std::size_t label_index,
                                   std::span<const std::size_t> feature_subset) const {
  SF_CHECK(label_index < num_labels_, "label index out of range");
  if (feature_subset.empty()) return project(label_index);
  for (std::size_t f : feature_subset) SF_CHECK(f < num_features_, "feature index out of range");
  Dataset out(feature_subset.size());
  out.reserve(rows_);
  std::vector<double> row(feature_subset.size());
  for (std::size_t i = 0; i < rows_; ++i) {
    const auto full = features(i);
    for (std::size_t k = 0; k < feature_subset.size(); ++k) row[k] = full[feature_subset[k]];
    out.add(row, labels(i)[label_index]);
  }
  return out;
}

MultiLabelDataset MultiLabelDataset::slice(std::size_t begin, std::size_t end) const {
  SF_CHECK(begin <= end && end <= rows_, "slice bounds out of range");
  MultiLabelDataset out(num_features_, num_labels_);
  for (std::size_t i = begin; i < end; ++i) out.add(features(i), labels(i));
  return out;
}

BinaryRelevance::BinaryRelevance(ClassifierFactory factory) : factory_(std::move(factory)) {
  SF_CHECK(static_cast<bool>(factory_), "factory must be callable");
}

void BinaryRelevance::set_feature_subsets(std::vector<std::vector<std::size_t>> subsets) {
  SF_CHECK(!fitted_, "feature subsets must be set before fit");
  feature_subsets_ = std::move(subsets);
}

std::vector<double> BinaryRelevance::project_features(std::size_t label,
                                                      std::span<const double> x) const {
  if (label >= feature_subsets_.size() || feature_subsets_[label].empty()) {
    return {x.begin(), x.end()};
  }
  std::vector<double> out;
  out.reserve(feature_subsets_[label].size());
  for (std::size_t f : feature_subsets_[label]) {
    SF_CHECK(f < x.size(), "feature index out of range");
    out.push_back(x[f]);
  }
  return out;
}

void BinaryRelevance::fit(const MultiLabelDataset& data) {
  SF_CHECK(!data.empty(), "cannot fit on an empty multi-label dataset");
  SF_CHECK(feature_subsets_.empty() || feature_subsets_.size() == data.num_labels(),
           "feature subsets must cover every label");
  models_.clear();
  models_.resize(data.num_labels());
  for (std::size_t l = 0; l < data.num_labels(); ++l) {
    const Dataset proj = l < feature_subsets_.size()
                             ? data.project(l, feature_subsets_[l])
                             : data.project(l);
    const auto classes = proj.classes();
    if (classes.size() < 2) {
      models_[l].is_constant = true;
      models_[l].constant_label = classes.empty() ? 0 : classes.front();
      continue;
    }
    models_[l].model = factory_();
    models_[l].model->fit(proj);
  }
  fitted_ = true;
}

std::vector<int> BinaryRelevance::predict(std::span<const double> x) const {
  if (!fitted_) throw StateError("BinaryRelevance::predict called before fit");
  std::vector<int> out(models_.size(), 0);
  for (std::size_t l = 0; l < models_.size(); ++l) {
    out[l] = models_[l].is_constant ? models_[l].constant_label
                                    : models_[l].model->predict(project_features(l, x));
  }
  return out;
}

std::vector<double> BinaryRelevance::predict_scores(std::span<const double> x) const {
  if (!fitted_) throw StateError("BinaryRelevance::predict_scores called before fit");
  std::vector<double> out(models_.size(), 0.0);
  for (std::size_t l = 0; l < models_.size(); ++l) {
    out[l] = models_[l].is_constant ? static_cast<double>(models_[l].constant_label)
                                    : models_[l].model->predict_score(project_features(l, x));
  }
  return out;
}

std::vector<int> BinaryRelevance::predict_batch(std::span<const double> rows,
                                                std::size_t num_rows) const {
  if (!fitted_) throw StateError("BinaryRelevance::predict_batch called before fit");
  std::vector<int> out(num_rows * models_.size(), 0);
  if (num_rows == 0) return out;
  SF_CHECK(rows.size() % num_rows == 0, "row matrix width mismatch");
  const std::size_t width = rows.size() / num_rows;
  std::vector<double> projected;
  std::vector<int> column(num_rows);
  for (std::size_t l = 0; l < models_.size(); ++l) {
    if (models_[l].is_constant) {
      for (std::size_t i = 0; i < num_rows; ++i) {
        out[i * models_.size() + l] = models_[l].constant_label;
      }
      continue;
    }
    const auto proj = project_rows(l, rows, num_rows, width, projected);
    models_[l].model->predict_batch(proj, num_rows, column);
    for (std::size_t i = 0; i < num_rows; ++i) out[i * models_.size() + l] = column[i];
  }
  return out;
}

std::vector<double> BinaryRelevance::predict_scores_batch(std::span<const double> rows,
                                                          std::size_t num_rows) const {
  if (!fitted_) throw StateError("BinaryRelevance::predict_scores_batch called before fit");
  std::vector<double> out(num_rows * models_.size(), 0.0);
  if (num_rows == 0) return out;
  SF_CHECK(rows.size() % num_rows == 0, "row matrix width mismatch");
  const std::size_t width = rows.size() / num_rows;
  std::vector<double> projected;
  std::vector<double> column(num_rows);
  for (std::size_t l = 0; l < models_.size(); ++l) {
    if (models_[l].is_constant) {
      for (std::size_t i = 0; i < num_rows; ++i) {
        out[i * models_.size() + l] = static_cast<double>(models_[l].constant_label);
      }
      continue;
    }
    const auto proj = project_rows(l, rows, num_rows, width, projected);
    models_[l].model->predict_scores(proj, num_rows, column);
    for (std::size_t i = 0; i < num_rows; ++i) out[i * models_.size() + l] = column[i];
  }
  return out;
}

std::span<const double> BinaryRelevance::project_rows(std::size_t label,
                                                      std::span<const double> rows,
                                                      std::size_t num_rows, std::size_t width,
                                                      std::vector<double>& scratch) const {
  if (label >= feature_subsets_.size() || feature_subsets_[label].empty()) return rows;
  const auto& subset = feature_subsets_[label];
  scratch.resize(num_rows * subset.size());
  for (std::size_t i = 0; i < num_rows; ++i) {
    const double* row = rows.data() + i * width;
    for (std::size_t k = 0; k < subset.size(); ++k) {
      SF_CHECK(subset[k] < width, "feature index out of range");
      scratch[i * subset.size() + k] = row[subset[k]];
    }
  }
  return scratch;
}

BinaryRelevance::MlMetrics BinaryRelevance::evaluate(const MultiLabelDataset& test) const {
  SF_CHECK(!test.empty(), "cannot evaluate on an empty dataset");
  std::size_t exact = 0;
  std::vector<Confusion> per_label(models_.size());
  const auto predicted = predict_batch(test.feature_matrix(), test.size());
  for (std::size_t i = 0; i < test.size(); ++i) {
    const auto truth = test.labels(i);
    const int* row_pred = predicted.data() + i * models_.size();
    bool all = true;
    for (std::size_t l = 0; l < models_.size(); ++l) {
      per_label[l].add(truth[l], row_pred[l]);
      all = all && row_pred[l] == truth[l];
    }
    if (all) ++exact;
  }
  MlMetrics m;
  m.subset_accuracy = static_cast<double>(exact) / static_cast<double>(test.size());
  for (const auto& c : per_label) {
    m.hamming_accuracy += c.accuracy();
    m.mean_precision += c.precision();
    m.mean_recall += c.recall();
  }
  const auto nl = static_cast<double>(models_.size());
  m.hamming_accuracy /= nl;
  m.mean_precision /= nl;
  m.mean_recall /= nl;
  return m;
}

}  // namespace smartflux::ml
