#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "ml/classifier.h"

namespace smartflux::ml {

/// Per-feature z-score standardization fitted on training data and reused at
/// prediction time. Constant features map to 0.
class Standardizer {
 public:
  void fit(const Dataset& data);
  std::vector<double> transform(std::span<const double> x) const;
  bool is_fitted() const noexcept { return !means_.empty(); }

 private:
  std::vector<double> means_;
  std::vector<double> inv_stddevs_;
};

struct LinearOptions {
  std::size_t epochs = 200;
  double learning_rate = 0.1;
  /// L2 regularization strength.
  double lambda = 1e-4;
};

/// Binary logistic regression trained by SGD on standardized features.
/// One of the baseline algorithms of the paper's §3.2 comparison ("Logistic").
/// Binary only: labels must be 0/1.
class LogisticRegression final : public Classifier {
 public:
  explicit LogisticRegression(LinearOptions options = {}, std::uint64_t seed = 1);

  void fit(const Dataset& data) override;
  int predict(std::span<const double> x) const override;
  double predict_score(std::span<const double> x) const override;  // sigmoid probability
  bool is_fitted() const noexcept override { return fitted_; }
  std::string name() const override { return "LogisticRegression"; }

 private:
  double margin(std::span<const double> x) const;

  LinearOptions options_;
  Rng rng_;
  Standardizer standardizer_;
  std::vector<double> weights_;
  double bias_ = 0.0;
  bool fitted_ = false;
};

/// Linear soft-margin SVM trained with the Pegasos SGD scheme on standardized
/// features; scores are squashed through a logistic link for thresholding /
/// ROC purposes. Binary only: labels must be 0/1.
class LinearSVM final : public Classifier {
 public:
  explicit LinearSVM(LinearOptions options = {.epochs = 200, .learning_rate = 0.0, .lambda = 1e-3},
                     std::uint64_t seed = 1);

  void fit(const Dataset& data) override;
  int predict(std::span<const double> x) const override;
  double predict_score(std::span<const double> x) const override;
  bool is_fitted() const noexcept override { return fitted_; }
  std::string name() const override { return "LinearSVM"; }

 private:
  double margin(std::span<const double> x) const;

  LinearOptions options_;
  Rng rng_;
  Standardizer standardizer_;
  std::vector<double> weights_;
  double bias_ = 0.0;
  bool fitted_ = false;
};

/// k-nearest-neighbours with Euclidean distance on standardized features.
/// Serves as the simple non-parametric baseline.
class KNearestNeighbors final : public Classifier {
 public:
  explicit KNearestNeighbors(std::size_t k = 5);

  void fit(const Dataset& data) override;
  int predict(std::span<const double> x) const override;
  double predict_score(std::span<const double> x) const override;  // fraction of 1-neighbours
  bool is_fitted() const noexcept override { return !train_.empty(); }
  std::string name() const override { return "KNearestNeighbors"; }

 private:
  std::vector<std::pair<double, int>> neighbours(std::span<const double> x) const;

  std::size_t k_;
  Standardizer standardizer_;
  std::vector<std::vector<double>> train_;
  std::vector<int> labels_;
  std::size_t num_classes_ = 0;
};

}  // namespace smartflux::ml
