#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "common/rng.h"
#include "ml/classifier.h"

namespace smartflux::ml {

/// Options shared by DecisionTree and RandomForest.
struct TreeOptions {
  std::size_t max_depth = 16;
  std::size_t min_samples_leaf = 1;
  std::size_t min_samples_split = 2;
  /// Number of features examined per split; 0 = all (single tree) or
  /// floor(sqrt(F)) when used inside a RandomForest.
  std::size_t max_features = 0;
  /// Relative weight of class 1 vs class 0 when computing impurity; > 1
  /// biases the tree toward recall on class 1 (the paper tunes its forest to
  /// favor recall for LRB). Ignored for multiclass data.
  double positive_class_weight = 1.0;
};

/// CART-style binary decision tree with Gini impurity on numeric features.
/// Deterministic given the same data and Rng seed.
class DecisionTree final : public Classifier {
 public:
  explicit DecisionTree(TreeOptions options = {}, std::uint64_t seed = 1);

  void fit(const Dataset& data) override;
  /// Fits on a subset of rows (bootstrap support for forests).
  void fit_indices(const Dataset& data, std::span<const std::size_t> indices);

  int predict(std::span<const double> x) const override;
  double predict_score(std::span<const double> x) const override;
  bool is_fitted() const noexcept override { return !nodes_.empty(); }
  std::string name() const override { return "DecisionTree"; }

  std::size_t node_count() const noexcept { return nodes_.size(); }
  std::size_t depth() const noexcept { return depth_; }
  const TreeOptions& options() const noexcept { return options_; }

  /// Class distribution at the leaf reached by x (normalized).
  std::vector<double> leaf_distribution(std::span<const double> x) const;

  /// Persists the fitted tree in a line-oriented text format; load() restores
  /// a tree making identical predictions (training options are not needed at
  /// prediction time and are not stored).
  void save(std::ostream& os) const;
  static DecisionTree load(std::istream& is);

 private:
  struct Node {
    // Internal node: feature/threshold valid, children set.
    // Leaf: left == -1; `distribution` holds normalized class posteriors.
    int feature = -1;
    double threshold = 0.0;
    std::int32_t left = -1;
    std::int32_t right = -1;
    int majority = 0;
    std::vector<double> distribution;
  };

  std::int32_t build(const Dataset& data, std::vector<std::size_t>& indices, std::size_t begin,
                     std::size_t end, std::size_t depth);
  std::int32_t make_leaf(const Dataset& data, std::span<const std::size_t> indices);
  const Node& descend(std::span<const double> x) const;
  double class_weight(int label) const noexcept;

  TreeOptions options_;
  Rng rng_;
  std::vector<Node> nodes_;
  std::size_t depth_ = 0;
  std::size_t num_classes_ = 0;
  std::size_t num_features_ = 0;
};

}  // namespace smartflux::ml
