#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "common/rng.h"
#include "ml/classifier.h"

namespace smartflux::ml {

/// Options shared by DecisionTree and RandomForest.
struct TreeOptions {
  std::size_t max_depth = 16;
  std::size_t min_samples_leaf = 1;
  std::size_t min_samples_split = 2;
  /// Number of features examined per split; 0 = all (single tree) or
  /// floor(sqrt(F)) when used inside a RandomForest.
  std::size_t max_features = 0;
  /// Relative weight of class 1 vs class 0 when computing impurity; > 1
  /// biases the tree toward recall on class 1 (the paper tunes its forest to
  /// favor recall for LRB). Ignored for multiclass data.
  double positive_class_weight = 1.0;
};

/// CART-style binary decision tree with Gini impurity on numeric features.
/// Deterministic given the same data and Rng seed.
///
/// Nodes are stored flattened as a structure-of-arrays: one contiguous array
/// per field plus a shared distribution pool indexed by leaf, so a descent
/// touches a handful of dense arrays instead of pointer-chased node structs,
/// and fitting performs no per-node heap allocation.
class DecisionTree final : public Classifier {
 public:
  explicit DecisionTree(TreeOptions options = {}, std::uint64_t seed = 1);

  void fit(const Dataset& data) override;
  /// Fits on a subset of rows (bootstrap support for forests).
  void fit_indices(const Dataset& data, std::span<const std::size_t> indices);

  int predict(std::span<const double> x) const override;
  double predict_score(std::span<const double> x) const override;
  /// Batched scoring over contiguous row-major rows; one descent per row
  /// through the flattened arrays, keeping the tree hot in cache.
  void predict_scores(std::span<const double> rows, std::size_t num_rows,
                      std::span<double> out) const override;
  bool is_fitted() const noexcept override { return !feature_.empty(); }
  std::string name() const override { return "DecisionTree"; }

  std::size_t node_count() const noexcept { return feature_.size(); }
  std::size_t depth() const noexcept { return depth_; }
  const TreeOptions& options() const noexcept { return options_; }

  /// Class distribution at the leaf reached by x (normalized).
  std::vector<double> leaf_distribution(std::span<const double> x) const;

  /// Persists the fitted tree in a line-oriented text format; load() restores
  /// a tree making identical predictions (training options are not needed at
  /// prediction time and are not stored).
  void save(std::ostream& os) const;
  static DecisionTree load(std::istream& is);

 private:
  /// Scratch buffers shared by the whole build recursion so that splitting a
  /// node allocates nothing (the old Node-based builder paid a sort buffer,
  /// a candidate-feature vector, and three histograms per node).
  struct BuildScratch {
    std::vector<std::size_t> feats;
    std::vector<std::pair<double, int>> sorted;  // (feature value, label)
    std::vector<double> parent_counts;
    std::vector<double> left_counts;
    std::vector<double> leaf_counts;
  };

  std::int32_t build(const Dataset& data, std::vector<std::size_t>& indices, std::size_t begin,
                     std::size_t end, std::size_t depth, BuildScratch& scratch);
  std::int32_t make_leaf(const Dataset& data, std::span<const std::size_t> indices,
                         BuildScratch& scratch);
  /// Appends one default-initialized node across all arrays.
  std::int32_t push_node();
  std::size_t descend(std::span<const double> x) const;
  /// Root-to-leaf walk with no validity/width checks (batch inner loop).
  std::size_t descend_from(const double* x) const noexcept;
  double class_weight(int label) const noexcept;

  TreeOptions options_;
  Rng rng_;
  // Flattened node storage. Internal node: feature_ >= 0, threshold_ and both
  // children valid. Leaf: left_ == -1 and [dist_offset_, +dist_len_) slices
  // dist_pool_ with its normalized class posteriors (dist_len_ == 0 for
  // internal nodes). Root is node 0; children are filled in DFS order.
  std::vector<std::int32_t> feature_;
  std::vector<double> threshold_;
  std::vector<std::int32_t> left_;
  std::vector<std::int32_t> right_;
  std::vector<std::int32_t> majority_;
  std::vector<std::uint32_t> dist_offset_;
  std::vector<std::uint32_t> dist_len_;
  std::vector<double> dist_pool_;
  std::size_t depth_ = 0;
  std::size_t num_classes_ = 0;
  std::size_t num_features_ = 0;
};

}  // namespace smartflux::ml
