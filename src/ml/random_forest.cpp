#include "ml/random_forest.h"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>

#include "common/error.h"

namespace smartflux::ml {

RandomForest::RandomForest(ForestOptions options, std::uint64_t seed)
    : options_(options), rng_(seed) {
  SF_CHECK(options_.num_trees >= 1, "a forest needs at least one tree");
  SF_CHECK(options_.bootstrap_fraction > 0.0, "bootstrap_fraction must be positive");
  SF_CHECK(options_.decision_threshold > 0.0 && options_.decision_threshold < 1.0,
           "decision_threshold must be in (0, 1)");
}

void RandomForest::fit(const Dataset& data) {
  SF_CHECK(!data.empty(), "cannot fit a forest on an empty dataset");
  trees_.clear();
  trees_.reserve(options_.num_trees);
  num_classes_ = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    num_classes_ = std::max(num_classes_, static_cast<std::size_t>(data.label(i)) + 1);
  }

  TreeOptions tree_opts = options_.tree;
  if (tree_opts.max_features == 0) {
    // WEKA-style default: log2(F) + 1 candidate features per split. For the
    // low-dimensional feature vectors SmartFlux produces this examines more
    // features than sqrt(F) would, which matters when one feature (the
    // step's own impact) carries most of the signal.
    tree_opts.max_features = static_cast<std::size_t>(
        std::max(1.0, std::floor(std::log2(static_cast<double>(data.num_features()))) + 1.0));
  }

  const auto sample_size = static_cast<std::size_t>(
      std::max(1.0, options_.bootstrap_fraction * static_cast<double>(data.size())));

  // Out-of-bag vote accumulation: votes[i][c] over trees where i was not drawn.
  std::vector<std::vector<double>> oob_votes(data.size(), std::vector<double>(num_classes_, 0.0));
  std::vector<char> in_bag(data.size());
  std::vector<std::size_t> bootstrap(sample_size);

  for (std::size_t t = 0; t < options_.num_trees; ++t) {
    std::fill(in_bag.begin(), in_bag.end(), char{0});
    for (std::size_t k = 0; k < sample_size; ++k) {
      const std::size_t idx = rng_.uniform_index(data.size());
      bootstrap[k] = idx;
      in_bag[idx] = 1;
    }
    DecisionTree tree(tree_opts, rng_());
    tree.fit_indices(data, bootstrap);
    for (std::size_t i = 0; i < data.size(); ++i) {
      if (in_bag[i]) continue;
      const int c = tree.predict(data.features(i));
      if (static_cast<std::size_t>(c) < num_classes_) {
        oob_votes[i][static_cast<std::size_t>(c)] += 1.0;
      }
    }
    trees_.push_back(std::move(tree));
  }

  std::size_t evaluated = 0, correct = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    const auto& votes = oob_votes[i];
    double total = 0.0;
    for (double v : votes) total += v;
    if (total == 0.0) continue;
    const auto best =
        static_cast<int>(std::max_element(votes.begin(), votes.end()) - votes.begin());
    ++evaluated;
    if (best == data.label(i)) ++correct;
  }
  oob_accuracy_ = evaluated == 0
                      ? std::nan("")
                      : static_cast<double>(correct) / static_cast<double>(evaluated);
}

double RandomForest::predict_score(std::span<const double> x) const {
  if (trees_.empty()) throw StateError("RandomForest::predict called before fit");
  double sum = 0.0;
  for (const auto& tree : trees_) sum += tree.predict_score(x);
  return sum / static_cast<double>(trees_.size());
}

void RandomForest::save(std::ostream& os) const {
  if (trees_.empty()) throw StateError("cannot save an unfitted RandomForest");
  os.precision(17);
  os << "forest " << trees_.size() << ' ' << num_classes_ << ' '
     << options_.decision_threshold << ' ' << oob_accuracy_ << '\n';
  for (const auto& tree : trees_) tree.save(os);
}

RandomForest RandomForest::load(std::istream& is) {
  std::string magic;
  std::size_t num_trees = 0;
  std::size_t num_classes = 0;
  double threshold = 0.5;
  double oob = 0.0;
  if (!(is >> magic >> num_trees >> num_classes >> threshold >> oob) || magic != "forest") {
    throw InvalidArgument("malformed RandomForest stream (bad header)");
  }
  SF_CHECK(num_trees >= 1, "RandomForest stream declares no trees");
  ForestOptions options;
  options.num_trees = num_trees;
  options.decision_threshold = threshold;
  RandomForest forest(options);
  forest.num_classes_ = num_classes;
  forest.oob_accuracy_ = oob;
  forest.trees_.reserve(num_trees);
  for (std::size_t t = 0; t < num_trees; ++t) forest.trees_.push_back(DecisionTree::load(is));
  return forest;
}

int RandomForest::predict(std::span<const double> x) const {
  if (trees_.empty()) throw StateError("RandomForest::predict called before fit");
  if (num_classes_ <= 2) {
    return predict_score(x) >= options_.decision_threshold ? 1 : 0;
  }
  std::vector<double> votes(num_classes_, 0.0);
  for (const auto& tree : trees_) {
    const auto dist = tree.leaf_distribution(x);
    for (std::size_t c = 0; c < dist.size() && c < num_classes_; ++c) votes[c] += dist[c];
  }
  return static_cast<int>(std::max_element(votes.begin(), votes.end()) - votes.begin());
}

}  // namespace smartflux::ml
