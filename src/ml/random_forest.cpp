#include "ml/random_forest.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <istream>
#include <ostream>

#include "common/error.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace smartflux::ml {

RandomForest::RandomForest(ForestOptions options, std::uint64_t seed)
    : options_(options), rng_(seed) {
  SF_CHECK(options_.num_trees >= 1, "a forest needs at least one tree");
  SF_CHECK(options_.bootstrap_fraction > 0.0, "bootstrap_fraction must be positive");
  SF_CHECK(options_.decision_threshold > 0.0 && options_.decision_threshold < 1.0,
           "decision_threshold must be in (0, 1)");
  if (options_.metrics != nullptr) {
    auto& reg = *options_.metrics;
    const obs::Labels labels{{"model", "random_forest"}};
    train_duration_ = &reg.histogram("sf_ml_train_duration_seconds", obs::duration_buckets(),
                                     labels, "Classifier fit duration");
    predict_duration_ = &reg.histogram("sf_ml_predict_duration_seconds", obs::duration_buckets(),
                                       labels, "Batched scoring pass duration");
    trees_gauge_ = &reg.gauge("sf_ml_forest_trees", labels, "Trees in the last fitted forest");
  }
}

void RandomForest::fit(const Dataset& data) {
  SF_CHECK(!data.empty(), "cannot fit a forest on an empty dataset");
  obs::Span fit_span = obs::start_span(options_.tracer, "forest_fit", "ml");
  const auto fit_start = std::chrono::steady_clock::now();
  trees_.clear();
  num_classes_ = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    num_classes_ = std::max(num_classes_, static_cast<std::size_t>(data.label(i)) + 1);
  }

  TreeOptions tree_opts = options_.tree;
  if (tree_opts.max_features == 0) {
    // WEKA-style default: log2(F) + 1 candidate features per split. For the
    // low-dimensional feature vectors SmartFlux produces this examines more
    // features than sqrt(F) would, which matters when one feature (the
    // step's own impact) carries most of the signal.
    tree_opts.max_features = static_cast<std::size_t>(
        std::max(1.0, std::floor(std::log2(static_cast<double>(data.num_features()))) + 1.0));
  }

  const auto sample_size = static_cast<std::size_t>(
      std::max(1.0, options_.bootstrap_fraction * static_cast<double>(data.size())));

  // Draw every per-tree bootstrap sample and seed from the forest RNG up
  // front, in the order the serial loop consumed it. Tree fitting then has no
  // shared mutable state, so it can run on any number of threads and still
  // produce a bit-identical forest.
  const std::size_t num_trees = options_.num_trees;
  std::vector<std::vector<std::size_t>> bootstraps(num_trees);
  std::vector<std::uint64_t> seeds(num_trees);
  for (std::size_t t = 0; t < num_trees; ++t) {
    bootstraps[t].resize(sample_size);
    for (auto& idx : bootstraps[t]) idx = rng_.uniform_index(data.size());
    seeds[t] = rng_();
  }

  // Out-of-bag predictions per tree (-1 = in bag), merged after the barrier.
  trees_.resize(num_trees);
  std::vector<std::vector<std::int32_t>> oob_pred(num_trees);

  auto fit_one = [&](std::size_t t) {
    DecisionTree tree(tree_opts, seeds[t]);
    tree.fit_indices(data, bootstraps[t]);
    std::vector<char> in_bag(data.size(), 0);
    for (std::size_t idx : bootstraps[t]) in_bag[idx] = 1;
    auto& pred = oob_pred[t];
    pred.assign(data.size(), -1);
    for (std::size_t i = 0; i < data.size(); ++i) {
      if (!in_bag[i]) pred[i] = tree.predict(data.features(i));
    }
    trees_[t] = std::move(tree);
  };

  if (options_.train_threads > 1) {
    ThreadPool pool(options_.train_threads);
    pool.parallel_for(num_trees, fit_one);
  } else {
    for (std::size_t t = 0; t < num_trees; ++t) fit_one(t);
  }

  // Merge OOB votes in tree order — the same accumulation the serial
  // tree-at-a-time loop performed.
  std::vector<std::vector<double>> oob_votes(data.size(), std::vector<double>(num_classes_, 0.0));
  for (std::size_t t = 0; t < num_trees; ++t) {
    for (std::size_t i = 0; i < data.size(); ++i) {
      const std::int32_t c = oob_pred[t][i];
      if (c >= 0 && static_cast<std::size_t>(c) < num_classes_) {
        oob_votes[i][static_cast<std::size_t>(c)] += 1.0;
      }
    }
  }

  std::size_t evaluated = 0, correct = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    const auto& votes = oob_votes[i];
    double total = 0.0;
    for (double v : votes) total += v;
    if (total == 0.0) continue;
    const auto best =
        static_cast<int>(std::max_element(votes.begin(), votes.end()) - votes.begin());
    ++evaluated;
    if (best == data.label(i)) ++correct;
  }
  oob_accuracy_ = evaluated == 0
                      ? std::nan("")
                      : static_cast<double>(correct) / static_cast<double>(evaluated);

  if (train_duration_ != nullptr) {
    const auto elapsed = std::chrono::steady_clock::now() - fit_start;
    train_duration_->observe(
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count()) *
        1e-9);
    trees_gauge_->set(static_cast<double>(trees_.size()));
  }
}

double RandomForest::predict_score(std::span<const double> x) const {
  if (trees_.empty()) throw StateError("RandomForest::predict called before fit");
  double sum = 0.0;
  for (const auto& tree : trees_) sum += tree.predict_score(x);
  return sum / static_cast<double>(trees_.size());
}

void RandomForest::predict_scores(std::span<const double> rows, std::size_t num_rows,
                                  std::span<double> out) const {
  if (num_rows == 0) return;
  if (trees_.empty()) throw StateError("RandomForest::predict called before fit");
  std::chrono::steady_clock::time_point t0;
  if (predict_duration_ != nullptr) t0 = std::chrono::steady_clock::now();
  SF_CHECK(rows.size() % num_rows == 0, "row matrix width mismatch");
  SF_CHECK(out.size() >= num_rows, "output span too small");
  std::fill(out.begin(), out.begin() + static_cast<std::ptrdiff_t>(num_rows), 0.0);
  std::vector<double> tree_scores(num_rows);
  for (const auto& tree : trees_) {
    // Accumulate in tree order so the sum is bitwise the same as the scalar
    // predict_score loop over trees_.
    tree.predict_scores(rows, num_rows, tree_scores);
    for (std::size_t i = 0; i < num_rows; ++i) out[i] += tree_scores[i];
  }
  for (std::size_t i = 0; i < num_rows; ++i) out[i] /= static_cast<double>(trees_.size());
  if (predict_duration_ != nullptr) {
    const auto elapsed = std::chrono::steady_clock::now() - t0;
    predict_duration_->observe(
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count()) *
        1e-9);
  }
}

void RandomForest::predict_batch(std::span<const double> rows, std::size_t num_rows,
                                 std::span<int> out) const {
  if (num_rows == 0) return;
  if (trees_.empty()) throw StateError("RandomForest::predict called before fit");
  if (num_classes_ <= 2) {
    std::vector<double> scores(num_rows);
    predict_scores(rows, num_rows, scores);
    for (std::size_t i = 0; i < num_rows; ++i) {
      out[i] = scores[i] >= options_.decision_threshold ? 1 : 0;
    }
    return;
  }
  Classifier::predict_batch(rows, num_rows, out);  // multiclass: per-row vote
}

void RandomForest::save(std::ostream& os) const {
  if (trees_.empty()) throw StateError("cannot save an unfitted RandomForest");
  os.precision(17);
  os << "forest2 " << trees_.size() << ' ' << num_classes_ << ' '
     << options_.decision_threshold << ' ' << oob_accuracy_ << ' '
     << options_.bootstrap_fraction << ' ' << options_.tree.max_depth << ' '
     << options_.tree.min_samples_leaf << ' ' << options_.tree.min_samples_split << ' '
     << options_.tree.max_features << ' ' << options_.tree.positive_class_weight << '\n';
  for (const auto& tree : trees_) tree.save(os);
}

RandomForest RandomForest::load(std::istream& is) {
  std::string magic;
  std::size_t num_trees = 0;
  std::size_t num_classes = 0;
  ForestOptions options;
  if (!(is >> magic)) throw InvalidArgument("malformed RandomForest stream (bad header)");
  double oob = 0.0;
  if (magic == "forest2") {
    if (!(is >> num_trees >> num_classes >> options.decision_threshold >> oob >>
          options.bootstrap_fraction >> options.tree.max_depth >> options.tree.min_samples_leaf >>
          options.tree.min_samples_split >> options.tree.max_features >>
          options.tree.positive_class_weight)) {
      throw InvalidArgument("malformed RandomForest stream (bad header)");
    }
  } else if (magic == "forest") {
    // Legacy header: only num_trees and the threshold were stored; the other
    // options keep their defaults (pre-PR-1 behaviour).
    if (!(is >> num_trees >> num_classes >> options.decision_threshold >> oob)) {
      throw InvalidArgument("malformed RandomForest stream (bad header)");
    }
  } else {
    throw InvalidArgument("malformed RandomForest stream (bad header)");
  }
  SF_CHECK(num_trees >= 1, "RandomForest stream declares no trees");
  options.num_trees = num_trees;
  RandomForest forest(options);
  forest.num_classes_ = num_classes;
  forest.oob_accuracy_ = oob;
  forest.trees_.reserve(num_trees);
  for (std::size_t t = 0; t < num_trees; ++t) forest.trees_.push_back(DecisionTree::load(is));
  return forest;
}

int RandomForest::predict(std::span<const double> x) const {
  if (trees_.empty()) throw StateError("RandomForest::predict called before fit");
  if (num_classes_ <= 2) {
    return predict_score(x) >= options_.decision_threshold ? 1 : 0;
  }
  std::vector<double> votes(num_classes_, 0.0);
  for (const auto& tree : trees_) {
    const auto dist = tree.leaf_distribution(x);
    for (std::size_t c = 0; c < dist.size() && c < num_classes_; ++c) votes[c] += dist[c];
  }
  return static_cast<int>(std::max_element(votes.begin(), votes.end()) - votes.begin());
}

}  // namespace smartflux::ml
