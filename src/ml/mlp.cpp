#include "ml/mlp.h"

#include <cmath>
#include <numeric>

#include "common/error.h"

namespace smartflux::ml {

namespace {
double sigmoid(double z) noexcept { return 1.0 / (1.0 + std::exp(-z)); }
}  // namespace

MultiLayerPerceptron::MultiLayerPerceptron(MlpOptions options, std::uint64_t seed)
    : options_(options), rng_(seed) {
  SF_CHECK(options_.hidden_units >= 1, "need at least one hidden unit");
  SF_CHECK(options_.epochs >= 1, "epochs must be >= 1");
  SF_CHECK(options_.learning_rate > 0.0, "learning_rate must be positive");
}

double MultiLayerPerceptron::forward(std::span<const double> x,
                                     std::vector<double>& hidden) const {
  const std::size_t H = options_.hidden_units;
  hidden.resize(H);
  for (std::size_t h = 0; h < H; ++h) {
    double z = b1_[h];
    const double* w = w1_.data() + h * num_features_;
    for (std::size_t f = 0; f < num_features_; ++f) z += w[f] * x[f];
    hidden[h] = std::tanh(z);
  }
  double out = b2_;
  for (std::size_t h = 0; h < H; ++h) out += w2_[h] * hidden[h];
  return out;
}

void MultiLayerPerceptron::fit(const Dataset& data) {
  SF_CHECK(!data.empty(), "cannot fit on an empty dataset");
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (data.label(i) != 0 && data.label(i) != 1) {
      throw InvalidArgument("MultiLayerPerceptron supports binary labels {0,1} only");
    }
  }
  standardizer_.fit(data);
  num_features_ = data.num_features();
  const std::size_t H = options_.hidden_units;

  // Xavier-style initialization.
  const double scale1 = 1.0 / std::sqrt(static_cast<double>(num_features_));
  const double scale2 = 1.0 / std::sqrt(static_cast<double>(H));
  w1_.resize(H * num_features_);
  b1_.assign(H, 0.0);
  w2_.resize(H);
  b2_ = 0.0;
  for (double& w : w1_) w = rng_.normal(0.0, scale1);
  for (double& w : w2_) w = rng_.normal(0.0, scale2);

  std::vector<std::size_t> order(data.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::vector<double> hidden(H);

  for (std::size_t epoch = 0; epoch < options_.epochs; ++epoch) {
    rng_.shuffle(order);
    const double lr = options_.learning_rate / (1.0 + 0.005 * static_cast<double>(epoch));
    for (std::size_t i : order) {
      const auto x = standardizer_.transform(data.features(i));
      const double logit = forward(x, hidden);
      // Cross-entropy gradient at the output.
      const double delta_out = sigmoid(logit) - static_cast<double>(data.label(i));

      // Hidden-layer backprop: d tanh = 1 - a^2.
      for (std::size_t h = 0; h < H; ++h) {
        const double delta_h = delta_out * w2_[h] * (1.0 - hidden[h] * hidden[h]);
        double* w = w1_.data() + h * num_features_;
        for (std::size_t f = 0; f < num_features_; ++f) {
          w[f] -= lr * (delta_h * x[f] + options_.lambda * w[f]);
        }
        b1_[h] -= lr * delta_h;
        w2_[h] -= lr * (delta_out * hidden[h] + options_.lambda * w2_[h]);
      }
      b2_ -= lr * delta_out;
    }
  }
  fitted_ = true;
}

int MultiLayerPerceptron::predict(std::span<const double> x) const {
  return predict_score(x) >= 0.5 ? 1 : 0;
}

double MultiLayerPerceptron::predict_score(std::span<const double> x) const {
  if (!fitted_) throw StateError("MultiLayerPerceptron::predict called before fit");
  std::vector<double> hidden;
  return sigmoid(forward(standardizer_.transform(x), hidden));
}

}  // namespace smartflux::ml
