#include "ml/linear.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.h"

namespace smartflux::ml {

void Standardizer::fit(const Dataset& data) {
  SF_CHECK(!data.empty(), "cannot fit a standardizer on an empty dataset");
  const std::size_t nf = data.num_features();
  means_.assign(nf, 0.0);
  inv_stddevs_.assign(nf, 0.0);
  for (std::size_t i = 0; i < data.size(); ++i) {
    const auto row = data.features(i);
    for (std::size_t f = 0; f < nf; ++f) means_[f] += row[f];
  }
  for (double& m : means_) m /= static_cast<double>(data.size());
  std::vector<double> var(nf, 0.0);
  for (std::size_t i = 0; i < data.size(); ++i) {
    const auto row = data.features(i);
    for (std::size_t f = 0; f < nf; ++f) {
      const double d = row[f] - means_[f];
      var[f] += d * d;
    }
  }
  for (std::size_t f = 0; f < nf; ++f) {
    const double sd = std::sqrt(var[f] / static_cast<double>(data.size()));
    inv_stddevs_[f] = sd > 1e-12 ? 1.0 / sd : 0.0;
  }
}

std::vector<double> Standardizer::transform(std::span<const double> x) const {
  SF_CHECK(x.size() == means_.size(), "feature vector width mismatch");
  std::vector<double> out(x.size());
  for (std::size_t f = 0; f < x.size(); ++f) out[f] = (x[f] - means_[f]) * inv_stddevs_[f];
  return out;
}

namespace {
void check_binary_labels(const Dataset& data, const char* who) {
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (data.label(i) != 0 && data.label(i) != 1) {
      throw InvalidArgument(std::string(who) + " supports binary labels {0,1} only");
    }
  }
}
double sigmoid(double z) noexcept { return 1.0 / (1.0 + std::exp(-z)); }
}  // namespace

LogisticRegression::LogisticRegression(LinearOptions options, std::uint64_t seed)
    : options_(options), rng_(seed) {
  SF_CHECK(options_.epochs >= 1, "epochs must be >= 1");
  SF_CHECK(options_.learning_rate > 0.0, "learning_rate must be positive");
}

void LogisticRegression::fit(const Dataset& data) {
  SF_CHECK(!data.empty(), "cannot fit on an empty dataset");
  check_binary_labels(data, "LogisticRegression");
  standardizer_.fit(data);
  weights_.assign(data.num_features(), 0.0);
  bias_ = 0.0;

  std::vector<std::size_t> order(data.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  for (std::size_t epoch = 0; epoch < options_.epochs; ++epoch) {
    rng_.shuffle(order);
    const double lr = options_.learning_rate / (1.0 + 0.01 * static_cast<double>(epoch));
    for (std::size_t i : order) {
      const auto x = standardizer_.transform(data.features(i));
      double z = bias_;
      for (std::size_t f = 0; f < x.size(); ++f) z += weights_[f] * x[f];
      const double err = sigmoid(z) - static_cast<double>(data.label(i));
      for (std::size_t f = 0; f < x.size(); ++f) {
        weights_[f] -= lr * (err * x[f] + options_.lambda * weights_[f]);
      }
      bias_ -= lr * err;
    }
  }
  fitted_ = true;
}

double LogisticRegression::margin(std::span<const double> x) const {
  if (!fitted_) throw StateError("LogisticRegression::predict called before fit");
  const auto z = standardizer_.transform(x);
  double m = bias_;
  for (std::size_t f = 0; f < z.size(); ++f) m += weights_[f] * z[f];
  return m;
}

int LogisticRegression::predict(std::span<const double> x) const {
  return margin(x) >= 0.0 ? 1 : 0;
}

double LogisticRegression::predict_score(std::span<const double> x) const {
  return sigmoid(margin(x));
}

LinearSVM::LinearSVM(LinearOptions options, std::uint64_t seed) : options_(options), rng_(seed) {
  SF_CHECK(options_.epochs >= 1, "epochs must be >= 1");
  SF_CHECK(options_.lambda > 0.0, "lambda must be positive for Pegasos");
}

void LinearSVM::fit(const Dataset& data) {
  SF_CHECK(!data.empty(), "cannot fit on an empty dataset");
  check_binary_labels(data, "LinearSVM");
  standardizer_.fit(data);
  weights_.assign(data.num_features(), 0.0);
  bias_ = 0.0;

  // Pegasos: step size 1/(lambda * t) over epochs * n iterations.
  std::size_t t = 0;
  std::vector<std::size_t> order(data.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  for (std::size_t epoch = 0; epoch < options_.epochs; ++epoch) {
    rng_.shuffle(order);
    for (std::size_t i : order) {
      ++t;
      const double eta = 1.0 / (options_.lambda * static_cast<double>(t));
      const auto x = standardizer_.transform(data.features(i));
      const double y = data.label(i) == 1 ? 1.0 : -1.0;
      double m = bias_;
      for (std::size_t f = 0; f < x.size(); ++f) m += weights_[f] * x[f];
      const double scale = 1.0 - eta * options_.lambda;
      for (double& w : weights_) w *= scale;
      if (y * m < 1.0) {
        for (std::size_t f = 0; f < x.size(); ++f) weights_[f] += eta * y * x[f];
        bias_ += eta * y;
      }
    }
  }
  fitted_ = true;
}

double LinearSVM::margin(std::span<const double> x) const {
  if (!fitted_) throw StateError("LinearSVM::predict called before fit");
  const auto z = standardizer_.transform(x);
  double m = bias_;
  for (std::size_t f = 0; f < z.size(); ++f) m += weights_[f] * z[f];
  return m;
}

int LinearSVM::predict(std::span<const double> x) const { return margin(x) >= 0.0 ? 1 : 0; }

double LinearSVM::predict_score(std::span<const double> x) const { return sigmoid(margin(x)); }

KNearestNeighbors::KNearestNeighbors(std::size_t k) : k_(k) {
  SF_CHECK(k >= 1, "k must be >= 1");
}

void KNearestNeighbors::fit(const Dataset& data) {
  SF_CHECK(!data.empty(), "cannot fit on an empty dataset");
  standardizer_.fit(data);
  train_.clear();
  labels_.clear();
  train_.reserve(data.size());
  labels_.reserve(data.size());
  num_classes_ = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    train_.push_back(standardizer_.transform(data.features(i)));
    labels_.push_back(data.label(i));
    num_classes_ = std::max(num_classes_, static_cast<std::size_t>(data.label(i)) + 1);
  }
}

std::vector<std::pair<double, int>> KNearestNeighbors::neighbours(
    std::span<const double> x) const {
  if (train_.empty()) throw StateError("KNearestNeighbors::predict called before fit");
  const auto z = standardizer_.transform(x);
  std::vector<std::pair<double, int>> dist;
  dist.reserve(train_.size());
  for (std::size_t i = 0; i < train_.size(); ++i) {
    double d = 0.0;
    for (std::size_t f = 0; f < z.size(); ++f) {
      const double diff = z[f] - train_[i][f];
      d += diff * diff;
    }
    dist.emplace_back(d, labels_[i]);
  }
  const std::size_t k = std::min(k_, dist.size());
  std::partial_sort(dist.begin(), dist.begin() + static_cast<std::ptrdiff_t>(k), dist.end());
  dist.resize(k);
  return dist;
}

int KNearestNeighbors::predict(std::span<const double> x) const {
  const auto nn = neighbours(x);
  std::vector<std::size_t> votes(num_classes_, 0);
  for (const auto& [_, label] : nn) ++votes[static_cast<std::size_t>(label)];
  return static_cast<int>(std::max_element(votes.begin(), votes.end()) - votes.begin());
}

double KNearestNeighbors::predict_score(std::span<const double> x) const {
  const auto nn = neighbours(x);
  std::size_t ones = 0;
  for (const auto& [_, label] : nn) ones += label == 1 ? 1 : 0;
  return static_cast<double>(ones) / static_cast<double>(nn.size());
}

}  // namespace smartflux::ml
