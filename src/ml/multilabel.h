#pragma once

#include <memory>
#include <span>
#include <vector>

#include "ml/classifier.h"

namespace smartflux::ml {

/// Multi-label dataset: one shared feature matrix, L binary labels per row
/// (the paper's classifier maps per-step input impacts to the configuration
/// of steps to execute, §3.1).
class MultiLabelDataset {
 public:
  MultiLabelDataset() = default;
  MultiLabelDataset(std::size_t num_features, std::size_t num_labels);

  void add(std::span<const double> x, std::span<const int> labels);

  std::size_t size() const noexcept { return rows_; }
  bool empty() const noexcept { return rows_ == 0; }
  std::size_t num_features() const noexcept { return num_features_; }
  std::size_t num_labels() const noexcept { return num_labels_; }

  std::span<const double> features(std::size_t i) const noexcept {
    return {features_.data() + i * num_features_, num_features_};
  }
  std::span<const int> labels(std::size_t i) const noexcept {
    return {labels_.data() + i * num_labels_, num_labels_};
  }
  /// All rows as one contiguous row-major matrix (size() * num_features()
  /// doubles) — feeds the batched prediction APIs without copying.
  std::span<const double> feature_matrix() const noexcept { return features_; }

  /// Projects to the single-label dataset for one label index.
  Dataset project(std::size_t label_index) const;
  /// Same, keeping only the given feature columns.
  Dataset project(std::size_t label_index, std::span<const std::size_t> feature_subset) const;

  /// Rows [begin, end) as a new multi-label dataset.
  MultiLabelDataset slice(std::size_t begin, std::size_t end) const;

 private:
  std::size_t num_features_ = 0;
  std::size_t num_labels_ = 0;
  std::size_t rows_ = 0;
  std::vector<double> features_;
  std::vector<int> labels_;
};

/// Binary Relevance multi-label classifier: one independent binary classifier
/// per label, produced by a shared factory. Labels whose training column is
/// constant are handled with a constant predictor (no degenerate fits).
class BinaryRelevance {
 public:
  explicit BinaryRelevance(ClassifierFactory factory);

  /// Restricts label `l` to the given feature columns (empty = all features).
  /// Must be called before fit. Useful when each label is known to depend on
  /// a subset of features — e.g. SmartFlux's per-step impact columns.
  void set_feature_subsets(std::vector<std::vector<std::size_t>> subsets);

  void fit(const MultiLabelDataset& data);
  std::vector<int> predict(std::span<const double> x) const;
  std::vector<double> predict_scores(std::span<const double> x) const;

  /// Batched variants: `rows` holds num_rows feature vectors contiguously
  /// row-major; the result is a num_rows × num_labels row-major matrix. Each
  /// label's model makes one pass over the whole batch (a forest walks each
  /// tree once per batch instead of once per row), instead of being re-entered
  /// per (row, label).
  std::vector<int> predict_batch(std::span<const double> rows, std::size_t num_rows) const;
  std::vector<double> predict_scores_batch(std::span<const double> rows,
                                           std::size_t num_rows) const;

  bool is_fitted() const noexcept { return fitted_; }
  std::size_t num_labels() const noexcept { return models_.size(); }

  /// Exact-match ratio and per-label mean accuracy on a test set.
  struct MlMetrics {
    double subset_accuracy = 0.0;  ///< All labels of a row correct.
    double hamming_accuracy = 0.0; ///< Mean per-label accuracy.
    double mean_precision = 0.0;
    double mean_recall = 0.0;
  };
  MlMetrics evaluate(const MultiLabelDataset& test) const;

 private:
  struct PerLabel {
    std::unique_ptr<Classifier> model;  // null when constant
    int constant_label = 0;
    bool is_constant = false;
  };

  /// Features of `x` used by label `l`'s model (identity when no subset set).
  std::vector<double> project_features(std::size_t label, std::span<const double> x) const;
  /// Batch variant: returns `rows` untouched when label `l` uses all
  /// features, otherwise gathers its subset columns into `scratch` and
  /// returns a span over it.
  std::span<const double> project_rows(std::size_t label, std::span<const double> rows,
                                       std::size_t num_rows, std::size_t width,
                                       std::vector<double>& scratch) const;

  ClassifierFactory factory_;
  std::vector<std::vector<std::size_t>> feature_subsets_;
  std::vector<PerLabel> models_;
  bool fitted_ = false;
};

}  // namespace smartflux::ml
