#include "ml/evaluation.h"

#include <algorithm>
#include <numeric>

#include "common/error.h"

namespace smartflux::ml {

void Confusion::add(int truth, int predicted) noexcept {
  if (truth == 1) {
    predicted == 1 ? ++tp : ++fn;
  } else {
    predicted == 1 ? ++fp : ++tn;
  }
}

double Confusion::accuracy() const noexcept {
  const std::size_t n = total();
  return n == 0 ? 0.0 : static_cast<double>(tp + tn) / static_cast<double>(n);
}

double Confusion::precision() const noexcept {
  return tp + fp == 0 ? 1.0 : static_cast<double>(tp) / static_cast<double>(tp + fp);
}

double Confusion::recall() const noexcept {
  return tp + fn == 0 ? 1.0 : static_cast<double>(tp) / static_cast<double>(tp + fn);
}

double Confusion::f1() const noexcept {
  const double p = precision();
  const double r = recall();
  return p + r == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

double roc_auc(std::span<const double> scores, std::span<const int> labels) noexcept {
  if (scores.size() != labels.size() || scores.empty()) return 0.5;
  std::vector<std::size_t> order(scores.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&scores](std::size_t a, std::size_t b) { return scores[a] < scores[b]; });

  // Mid-ranks with tie handling.
  std::vector<double> rank(scores.size());
  std::size_t i = 0;
  while (i < order.size()) {
    std::size_t j = i;
    while (j + 1 < order.size() && scores[order[j + 1]] == scores[order[i]]) ++j;
    const double mid = 0.5 * static_cast<double>(i + j) + 1.0;  // 1-based mid-rank
    for (std::size_t k = i; k <= j; ++k) rank[order[k]] = mid;
    i = j + 1;
  }

  double rank_sum_pos = 0.0;
  std::size_t n_pos = 0;
  for (std::size_t k = 0; k < labels.size(); ++k) {
    if (labels[k] == 1) {
      rank_sum_pos += rank[k];
      ++n_pos;
    }
  }
  const std::size_t n_neg = labels.size() - n_pos;
  if (n_pos == 0 || n_neg == 0) return 0.5;
  const double u =
      rank_sum_pos - static_cast<double>(n_pos) * (static_cast<double>(n_pos) + 1.0) / 2.0;
  return u / (static_cast<double>(n_pos) * static_cast<double>(n_neg));
}

Confusion evaluate(const Classifier& clf, const Dataset& test) {
  Confusion c;
  std::vector<int> predicted(test.size());
  clf.predict_batch(test.feature_matrix(), test.size(), predicted);
  for (std::size_t i = 0; i < test.size(); ++i) {
    c.add(test.label(i), predicted[i]);
  }
  return c;
}

namespace {
/// Shuffled per-class index buckets for stratified partitioning.
std::vector<std::vector<std::size_t>> stratified_buckets(const Dataset& data, Rng& rng) {
  std::vector<std::vector<std::size_t>> buckets;
  for (std::size_t i = 0; i < data.size(); ++i) {
    const auto c = static_cast<std::size_t>(data.label(i));
    if (c >= buckets.size()) buckets.resize(c + 1);
    buckets[c].push_back(i);
  }
  for (auto& b : buckets) rng.shuffle(b);
  return buckets;
}
}  // namespace

CvMetrics cross_validate(const ClassifierFactory& factory, const Dataset& data, std::size_t folds,
                         std::uint64_t seed) {
  SF_CHECK(folds >= 2, "cross-validation requires at least 2 folds");
  SF_CHECK(data.size() >= folds, "fewer examples than folds");
  Rng rng(seed);
  const auto buckets = stratified_buckets(data, rng);

  // Assign each example a fold id, round-robin within its class bucket.
  std::vector<std::size_t> fold_of(data.size(), 0);
  for (const auto& bucket : buckets) {
    for (std::size_t k = 0; k < bucket.size(); ++k) fold_of[bucket[k]] = k % folds;
  }

  CvMetrics out;
  std::size_t used_folds = 0;
  for (std::size_t fold = 0; fold < folds; ++fold) {
    std::vector<std::size_t> train_idx, test_idx;
    for (std::size_t i = 0; i < data.size(); ++i) {
      (fold_of[i] == fold ? test_idx : train_idx).push_back(i);
    }
    if (train_idx.empty() || test_idx.empty()) continue;
    const Dataset train = data.subset(train_idx);
    const Dataset test = data.subset(test_idx);
    auto clf = factory();
    clf->fit(train);

    Confusion c;
    std::vector<int> predicted(test.size());
    std::vector<double> scores(test.size());
    std::vector<int> labels(test.labels().begin(), test.labels().end());
    clf->predict_batch(test.feature_matrix(), test.size(), predicted);
    clf->predict_scores(test.feature_matrix(), test.size(), scores);
    for (std::size_t i = 0; i < test.size(); ++i) {
      c.add(test.label(i), predicted[i]);
    }
    out.accuracy += c.accuracy();
    out.precision += c.precision();
    out.recall += c.recall();
    out.f1 += c.f1();
    out.roc_area += roc_auc(scores, labels);
    ++used_folds;
  }
  SF_CHECK(used_folds > 0, "no usable folds (dataset too small or degenerate)");
  const auto n = static_cast<double>(used_folds);
  out.accuracy /= n;
  out.precision /= n;
  out.recall /= n;
  out.f1 /= n;
  out.roc_area /= n;
  out.folds = used_folds;
  return out;
}

std::pair<Dataset, Dataset> train_test_split(const Dataset& data, double test_fraction,
                                             std::uint64_t seed) {
  SF_CHECK(test_fraction > 0.0 && test_fraction < 1.0, "test_fraction must be in (0, 1)");
  Rng rng(seed);
  const auto buckets = stratified_buckets(data, rng);
  std::vector<std::size_t> train_idx, test_idx;
  for (const auto& bucket : buckets) {
    const auto n_test = static_cast<std::size_t>(
        test_fraction * static_cast<double>(bucket.size()) + 0.5);
    for (std::size_t k = 0; k < bucket.size(); ++k) {
      (k < n_test ? test_idx : train_idx).push_back(bucket[k]);
    }
  }
  return {data.subset(train_idx), data.subset(test_idx)};
}

}  // namespace smartflux::ml
