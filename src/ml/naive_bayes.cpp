#include "ml/naive_bayes.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace smartflux::ml {

void GaussianNaiveBayes::fit(const Dataset& data) {
  SF_CHECK(!data.empty(), "cannot fit on an empty dataset");
  num_features_ = data.num_features();
  std::size_t num_classes = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    num_classes = std::max(num_classes, static_cast<std::size_t>(data.label(i)) + 1);
  }
  priors_.assign(num_classes, 0.0);
  means_.assign(num_classes, std::vector<double>(num_features_, 0.0));
  variances_.assign(num_classes, std::vector<double>(num_features_, 0.0));
  std::vector<double> counts(num_classes, 0.0);

  for (std::size_t i = 0; i < data.size(); ++i) {
    const auto c = static_cast<std::size_t>(data.label(i));
    counts[c] += 1.0;
    const auto row = data.features(i);
    for (std::size_t f = 0; f < num_features_; ++f) means_[c][f] += row[f];
  }
  for (std::size_t c = 0; c < num_classes; ++c) {
    if (counts[c] == 0.0) continue;
    for (double& m : means_[c]) m /= counts[c];
  }
  double global_var = 0.0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    const auto c = static_cast<std::size_t>(data.label(i));
    const auto row = data.features(i);
    for (std::size_t f = 0; f < num_features_; ++f) {
      const double d = row[f] - means_[c][f];
      variances_[c][f] += d * d;
      global_var += d * d;
    }
  }
  global_var /= static_cast<double>(data.size() * num_features_);
  const double floor = std::max(1e-9, 1e-9 * global_var);
  for (std::size_t c = 0; c < num_classes; ++c) {
    priors_[c] = counts[c] / static_cast<double>(data.size());
    for (std::size_t f = 0; f < num_features_; ++f) {
      variances_[c][f] =
          counts[c] > 1.0 ? std::max(variances_[c][f] / counts[c], floor) : std::max(global_var, floor);
    }
  }
}

std::vector<double> GaussianNaiveBayes::log_joint(std::span<const double> x) const {
  if (priors_.empty()) throw StateError("GaussianNaiveBayes::predict called before fit");
  SF_CHECK(x.size() == num_features_, "feature vector width mismatch");
  std::vector<double> out(priors_.size(), -std::numeric_limits<double>::infinity());
  for (std::size_t c = 0; c < priors_.size(); ++c) {
    if (priors_[c] <= 0.0) continue;
    double lj = std::log(priors_[c]);
    for (std::size_t f = 0; f < num_features_; ++f) {
      const double var = variances_[c][f];
      const double d = x[f] - means_[c][f];
      lj += -0.5 * (std::log(2.0 * M_PI * var) + d * d / var);
    }
    out[c] = lj;
  }
  return out;
}

int GaussianNaiveBayes::predict(std::span<const double> x) const {
  const auto lj = log_joint(x);
  return static_cast<int>(std::max_element(lj.begin(), lj.end()) - lj.begin());
}

double GaussianNaiveBayes::predict_score(std::span<const double> x) const {
  const auto lj = log_joint(x);
  if (lj.size() < 2) return 0.0;
  // Softmax posterior of class 1 (log-sum-exp for stability).
  const double mx = *std::max_element(lj.begin(), lj.end());
  double denom = 0.0;
  for (double v : lj) denom += std::exp(v - mx);
  return std::exp(lj[1] - mx) / denom;
}

}  // namespace smartflux::ml
