#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace smartflux::ml {

/// Dense numeric dataset: a row-major feature matrix with one integer class
/// label per row. Labels are small non-negative integers (0/1 for the binary
/// problems SmartFlux produces, but multiclass is supported).
class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(std::size_t num_features);

  /// Appends one example. Precondition: x.size() == num_features().
  void add(std::span<const double> x, int label);

  std::size_t size() const noexcept { return labels_.size(); }
  bool empty() const noexcept { return labels_.empty(); }
  std::size_t num_features() const noexcept { return num_features_; }

  std::span<const double> features(std::size_t i) const noexcept {
    return {data_.data() + i * num_features_, num_features_};
  }
  /// All rows as one contiguous row-major matrix (size() * num_features()
  /// doubles) — the layout the batched Classifier APIs consume directly.
  std::span<const double> feature_matrix() const noexcept { return data_; }
  int label(std::size_t i) const noexcept { return labels_[i]; }
  std::span<const int> labels() const noexcept { return labels_; }

  /// Sorted unique labels present in the dataset.
  std::vector<int> classes() const;

  /// Number of examples with the given label.
  std::size_t count_label(int label) const noexcept;

  /// New dataset with the selected rows (duplicates allowed — bootstrap).
  Dataset subset(std::span<const std::size_t> indices) const;

  /// Per-feature (min, max) over the dataset; empty if no rows.
  std::vector<std::pair<double, double>> feature_ranges() const;

  void reserve(std::size_t rows);
  void clear() noexcept;

 private:
  std::size_t num_features_ = 0;
  std::vector<double> data_;  // row-major, size() * num_features_
  std::vector<int> labels_;
};

}  // namespace smartflux::ml
