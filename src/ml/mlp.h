#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "ml/classifier.h"
#include "ml/linear.h"

namespace smartflux::ml {

struct MlpOptions {
  std::size_t hidden_units = 16;
  std::size_t epochs = 300;
  double learning_rate = 0.05;
  /// L2 regularization strength.
  double lambda = 1e-4;
};

/// Single-hidden-layer perceptron (tanh hidden layer, sigmoid output)
/// trained with SGD on standardized features — the paper's "Neuronal
/// Network" baseline in the §3.2 classifier comparison. Binary only:
/// labels must be 0/1.
class MultiLayerPerceptron final : public Classifier {
 public:
  explicit MultiLayerPerceptron(MlpOptions options = {}, std::uint64_t seed = 1);

  void fit(const Dataset& data) override;
  int predict(std::span<const double> x) const override;
  double predict_score(std::span<const double> x) const override;  // sigmoid probability
  bool is_fitted() const noexcept override { return fitted_; }
  std::string name() const override { return "MultiLayerPerceptron"; }

  const MlpOptions& options() const noexcept { return options_; }

 private:
  /// Forward pass; fills `hidden` with tanh activations, returns the output
  /// pre-activation (logit).
  double forward(std::span<const double> x, std::vector<double>& hidden) const;

  MlpOptions options_;
  Rng rng_;
  Standardizer standardizer_;
  std::size_t num_features_ = 0;
  // w1_[h * num_features_ + f], b1_[h]: input -> hidden.
  std::vector<double> w1_;
  std::vector<double> b1_;
  // w2_[h], b2_: hidden -> output logit.
  std::vector<double> w2_;
  double b2_ = 0.0;
  bool fitted_ = false;
};

}  // namespace smartflux::ml
