#include "ml/dataset.h"

#include <algorithm>

#include "common/error.h"

namespace smartflux::ml {

Dataset::Dataset(std::size_t num_features) : num_features_(num_features) {
  SF_CHECK(num_features >= 1, "a dataset needs at least one feature");
}

void Dataset::add(std::span<const double> x, int label) {
  SF_CHECK(num_features_ != 0, "dataset not initialized with a feature count");
  SF_CHECK(x.size() == num_features_, "feature vector width mismatch");
  SF_CHECK(label >= 0, "labels must be non-negative");
  data_.insert(data_.end(), x.begin(), x.end());
  labels_.push_back(label);
}

std::vector<int> Dataset::classes() const {
  std::vector<int> out(labels_.begin(), labels_.end());
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::size_t Dataset::count_label(int label) const noexcept {
  return static_cast<std::size_t>(std::count(labels_.begin(), labels_.end(), label));
}

Dataset Dataset::subset(std::span<const std::size_t> indices) const {
  Dataset out(num_features_);
  out.reserve(indices.size());
  for (std::size_t i : indices) out.add(features(i), label(i));
  return out;
}

std::vector<std::pair<double, double>> Dataset::feature_ranges() const {
  if (empty()) return {};
  std::vector<std::pair<double, double>> ranges(num_features_);
  for (std::size_t f = 0; f < num_features_; ++f) {
    ranges[f] = {features(0)[f], features(0)[f]};
  }
  for (std::size_t i = 1; i < size(); ++i) {
    const auto row = features(i);
    for (std::size_t f = 0; f < num_features_; ++f) {
      ranges[f].first = std::min(ranges[f].first, row[f]);
      ranges[f].second = std::max(ranges[f].second, row[f]);
    }
  }
  return ranges;
}

void Dataset::reserve(std::size_t rows) {
  data_.reserve(rows * num_features_);
  labels_.reserve(rows);
}

void Dataset::clear() noexcept {
  data_.clear();
  labels_.clear();
}

}  // namespace smartflux::ml
