#pragma once

#include <functional>
#include <memory>
#include <span>
#include <string>

#include "common/error.h"
#include "ml/dataset.h"

namespace smartflux::ml {

/// Common interface for all supervised classifiers in the library.
///
/// Contract: `fit` must be called before `predict`/`predict_score`;
/// implementations throw smartflux::StateError otherwise. `predict_score`
/// returns a monotone score for membership in class 1 (used for ROC curves
/// and threshold tuning); for multiclass models it is the posterior of the
/// largest non-zero class.
class Classifier {
 public:
  virtual ~Classifier() = default;

  virtual void fit(const Dataset& data) = 0;
  virtual int predict(std::span<const double> x) const = 0;
  virtual double predict_score(std::span<const double> x) const = 0;
  virtual bool is_fitted() const noexcept = 0;
  virtual std::string name() const = 0;

  /// Batched scoring: `rows` holds `num_rows` feature vectors contiguously
  /// row-major (rows.size() == num_rows * width) and one score per row is
  /// written to `out`. The default loops predict_score; models with an
  /// ensemble or flattened representation override it with a pass that
  /// amortizes model traversal across the whole batch. Results are identical
  /// to the per-row calls.
  virtual void predict_scores(std::span<const double> rows, std::size_t num_rows,
                              std::span<double> out) const {
    if (num_rows == 0) return;
    SF_CHECK(rows.size() % num_rows == 0, "row matrix width mismatch");
    SF_CHECK(out.size() >= num_rows, "output span too small");
    const std::size_t width = rows.size() / num_rows;
    for (std::size_t i = 0; i < num_rows; ++i) {
      out[i] = predict_score(rows.subspan(i * width, width));
    }
  }

  /// Batched class decisions over the same row-major layout as
  /// predict_scores. Default loops predict.
  virtual void predict_batch(std::span<const double> rows, std::size_t num_rows,
                             std::span<int> out) const {
    if (num_rows == 0) return;
    SF_CHECK(rows.size() % num_rows == 0, "row matrix width mismatch");
    SF_CHECK(out.size() >= num_rows, "output span too small");
    const std::size_t width = rows.size() / num_rows;
    for (std::size_t i = 0; i < num_rows; ++i) {
      out[i] = predict(rows.subspan(i * width, width));
    }
  }
};

/// Produces fresh untrained classifier instances; used by cross-validation
/// and the binary-relevance multi-label wrapper.
using ClassifierFactory = std::function<std::unique_ptr<Classifier>()>;

}  // namespace smartflux::ml
