#pragma once

#include <functional>
#include <memory>
#include <span>
#include <string>

#include "ml/dataset.h"

namespace smartflux::ml {

/// Common interface for all supervised classifiers in the library.
///
/// Contract: `fit` must be called before `predict`/`predict_score`;
/// implementations throw smartflux::StateError otherwise. `predict_score`
/// returns a monotone score for membership in class 1 (used for ROC curves
/// and threshold tuning); for multiclass models it is the posterior of the
/// largest non-zero class.
class Classifier {
 public:
  virtual ~Classifier() = default;

  virtual void fit(const Dataset& data) = 0;
  virtual int predict(std::span<const double> x) const = 0;
  virtual double predict_score(std::span<const double> x) const = 0;
  virtual bool is_fitted() const noexcept = 0;
  virtual std::string name() const = 0;
};

/// Produces fresh untrained classifier instances; used by cross-validation
/// and the binary-relevance multi-label wrapper.
using ClassifierFactory = std::function<std::unique_ptr<Classifier>()>;

}  // namespace smartflux::ml
