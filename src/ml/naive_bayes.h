#pragma once

#include <vector>

#include "ml/classifier.h"

namespace smartflux::ml {

/// Gaussian Naive Bayes: per-class, per-feature normal likelihoods with a
/// variance floor for numerical stability. Stands in for the paper's "Bayes
/// Network" baseline in the classifier-selection experiment (§3.2).
class GaussianNaiveBayes final : public Classifier {
 public:
  GaussianNaiveBayes() = default;

  void fit(const Dataset& data) override;
  int predict(std::span<const double> x) const override;
  double predict_score(std::span<const double> x) const override;
  bool is_fitted() const noexcept override { return !priors_.empty(); }
  std::string name() const override { return "GaussianNaiveBayes"; }

 private:
  /// Log-joint log p(c) + sum log p(x_f | c) per class.
  std::vector<double> log_joint(std::span<const double> x) const;

  std::size_t num_features_ = 0;
  std::vector<double> priors_;                  // per class
  std::vector<std::vector<double>> means_;      // [class][feature]
  std::vector<std::vector<double>> variances_;  // [class][feature]
};

}  // namespace smartflux::ml
