#include "ml/decision_tree.h"

#include <algorithm>
#include <cmath>
#include <istream>
#include <limits>
#include <numeric>
#include <ostream>

#include "common/error.h"

namespace smartflux::ml {

DecisionTree::DecisionTree(TreeOptions options, std::uint64_t seed)
    : options_(options), rng_(seed) {
  SF_CHECK(options_.max_depth >= 1, "max_depth must be >= 1");
  SF_CHECK(options_.min_samples_leaf >= 1, "min_samples_leaf must be >= 1");
  SF_CHECK(options_.positive_class_weight > 0.0, "positive_class_weight must be positive");
}

double DecisionTree::class_weight(int label) const noexcept {
  return label == 1 ? options_.positive_class_weight : 1.0;
}

void DecisionTree::fit(const Dataset& data) {
  SF_CHECK(!data.empty(), "cannot fit a tree on an empty dataset");
  std::vector<std::size_t> indices(data.size());
  std::iota(indices.begin(), indices.end(), std::size_t{0});
  fit_indices(data, indices);
}

void DecisionTree::fit_indices(const Dataset& data, std::span<const std::size_t> indices) {
  SF_CHECK(!indices.empty(), "cannot fit a tree without samples");
  nodes_.clear();
  depth_ = 0;
  num_features_ = data.num_features();
  num_classes_ = 0;
  for (std::size_t i : indices) {
    num_classes_ = std::max(num_classes_, static_cast<std::size_t>(data.label(i)) + 1);
  }
  std::vector<std::size_t> work(indices.begin(), indices.end());
  build(data, work, 0, work.size(), 0);
}

namespace {
/// Weighted Gini impurity of a class-count histogram.
double gini(std::span<const double> counts, double total) noexcept {
  if (total <= 0.0) return 0.0;
  double sum_sq = 0.0;
  for (double c : counts) sum_sq += c * c;
  return 1.0 - sum_sq / (total * total);
}
}  // namespace

std::int32_t DecisionTree::make_leaf(const Dataset& data, std::span<const std::size_t> indices) {
  Node leaf;
  std::vector<double> counts(num_classes_, 0.0);
  for (std::size_t i : indices) counts[static_cast<std::size_t>(data.label(i))] += 1.0;
  double total = 0.0;
  for (double c : counts) total += c;
  leaf.distribution.resize(num_classes_, 0.0);
  double best = -1.0;
  for (std::size_t c = 0; c < num_classes_; ++c) {
    leaf.distribution[c] = counts[c] / total;
    // Majority vote is weight-adjusted so positive_class_weight also shifts
    // the decision boundary, not just split selection.
    const double weighted = counts[c] * class_weight(static_cast<int>(c));
    if (weighted > best) {
      best = weighted;
      leaf.majority = static_cast<int>(c);
    }
  }
  nodes_.push_back(std::move(leaf));
  return static_cast<std::int32_t>(nodes_.size() - 1);
}

std::int32_t DecisionTree::build(const Dataset& data, std::vector<std::size_t>& indices,
                                 std::size_t begin, std::size_t end, std::size_t depth) {
  depth_ = std::max(depth_, depth);
  const std::size_t n = end - begin;
  const std::span<const std::size_t> node_indices{indices.data() + begin, n};

  // Stop: depth, size, or purity.
  bool pure = true;
  for (std::size_t k = 1; k < n; ++k) {
    if (data.label(node_indices[k]) != data.label(node_indices[0])) {
      pure = false;
      break;
    }
  }
  if (pure || depth >= options_.max_depth || n < options_.min_samples_split ||
      n < 2 * options_.min_samples_leaf) {
    return make_leaf(data, node_indices);
  }

  // Candidate features: all, or a random subset of size max_features.
  std::vector<std::size_t> feats(num_features_);
  std::iota(feats.begin(), feats.end(), std::size_t{0});
  std::size_t n_feats = num_features_;
  if (options_.max_features != 0 && options_.max_features < num_features_) {
    rng_.shuffle(feats);
    n_feats = options_.max_features;
  }

  // Parent weighted class counts.
  std::vector<double> parent_counts(num_classes_, 0.0);
  for (std::size_t i : node_indices) {
    parent_counts[static_cast<std::size_t>(data.label(i))] += class_weight(data.label(i));
  }
  double parent_total = 0.0;
  for (double c : parent_counts) parent_total += c;
  const double parent_gini = gini(parent_counts, parent_total);

  int best_feature = -1;
  double best_threshold = 0.0;
  double best_gain = 1e-12;

  std::vector<std::pair<double, int>> sorted;  // (feature value, label)
  sorted.reserve(n);
  std::vector<double> left_counts(num_classes_);

  for (std::size_t fi = 0; fi < n_feats; ++fi) {
    const std::size_t f = feats[fi];
    sorted.clear();
    for (std::size_t i : node_indices) sorted.emplace_back(data.features(i)[f], data.label(i));
    std::sort(sorted.begin(), sorted.end());
    if (sorted.front().first == sorted.back().first) continue;  // constant feature

    std::fill(left_counts.begin(), left_counts.end(), 0.0);
    double left_total = 0.0;
    std::size_t left_n = 0;
    for (std::size_t k = 0; k + 1 < n; ++k) {
      const double w = class_weight(sorted[k].second);
      left_counts[static_cast<std::size_t>(sorted[k].second)] += w;
      left_total += w;
      ++left_n;
      if (sorted[k].first == sorted[k + 1].first) continue;  // not a valid cut point
      if (left_n < options_.min_samples_leaf || n - left_n < options_.min_samples_leaf) continue;

      const double right_total = parent_total - left_total;
      double right_gini_sum = 0.0;
      {
        double sum_sq = 0.0;
        for (std::size_t c = 0; c < num_classes_; ++c) {
          const double rc = parent_counts[c] - left_counts[c];
          sum_sq += rc * rc;
        }
        right_gini_sum = right_total <= 0.0 ? 0.0 : 1.0 - sum_sq / (right_total * right_total);
      }
      const double wl = left_total / parent_total;
      const double wr = right_total / parent_total;
      const double gain = parent_gini - (wl * gini(left_counts, left_total) + wr * right_gini_sum);
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = static_cast<int>(f);
        best_threshold = 0.5 * (sorted[k].first + sorted[k + 1].first);
      }
    }
  }

  if (best_feature < 0) return make_leaf(data, node_indices);

  // Partition indices in place around the threshold.
  const auto mid_it = std::partition(
      indices.begin() + static_cast<std::ptrdiff_t>(begin),
      indices.begin() + static_cast<std::ptrdiff_t>(end), [&](std::size_t i) {
        return data.features(i)[static_cast<std::size_t>(best_feature)] <= best_threshold;
      });
  const auto mid = static_cast<std::size_t>(mid_it - indices.begin());
  if (mid == begin || mid == end) return make_leaf(data, node_indices);

  // Reserve this node's slot before recursing so the root stays at index 0.
  nodes_.emplace_back();
  const auto self = static_cast<std::int32_t>(nodes_.size() - 1);
  const std::int32_t left = build(data, indices, begin, mid, depth + 1);
  const std::int32_t right = build(data, indices, mid, end, depth + 1);
  Node& node = nodes_[static_cast<std::size_t>(self)];
  node.feature = best_feature;
  node.threshold = best_threshold;
  node.left = left;
  node.right = right;
  return self;
}

const DecisionTree::Node& DecisionTree::descend(std::span<const double> x) const {
  if (nodes_.empty()) throw StateError("DecisionTree::predict called before fit");
  SF_CHECK(x.size() == num_features_, "feature vector width mismatch");
  const Node* node = &nodes_[0];
  while (node->left != -1) {
    const bool go_left = x[static_cast<std::size_t>(node->feature)] <= node->threshold;
    node = &nodes_[static_cast<std::size_t>(go_left ? node->left : node->right)];
  }
  return *node;
}

int DecisionTree::predict(std::span<const double> x) const { return descend(x).majority; }

double DecisionTree::predict_score(std::span<const double> x) const {
  const Node& leaf = descend(x);
  return leaf.distribution.size() > 1 ? leaf.distribution[1] : 0.0;
}

std::vector<double> DecisionTree::leaf_distribution(std::span<const double> x) const {
  return descend(x).distribution;
}

void DecisionTree::save(std::ostream& os) const {
  if (nodes_.empty()) throw StateError("cannot save an unfitted DecisionTree");
  os.precision(17);
  os << "tree " << num_features_ << ' ' << num_classes_ << ' ' << depth_ << ' '
     << nodes_.size() << '\n';
  for (const Node& node : nodes_) {
    os << node.feature << ' ' << node.threshold << ' ' << node.left << ' ' << node.right << ' '
       << node.majority << ' ' << node.distribution.size();
    for (double p : node.distribution) os << ' ' << p;
    os << '\n';
  }
}

DecisionTree DecisionTree::load(std::istream& is) {
  std::string magic;
  std::size_t node_count = 0;
  DecisionTree tree;
  if (!(is >> magic >> tree.num_features_ >> tree.num_classes_ >> tree.depth_ >> node_count) ||
      magic != "tree") {
    throw InvalidArgument("malformed DecisionTree stream (bad header)");
  }
  tree.nodes_.resize(node_count);
  for (Node& node : tree.nodes_) {
    std::size_t dist_size = 0;
    if (!(is >> node.feature >> node.threshold >> node.left >> node.right >> node.majority >>
          dist_size)) {
      throw InvalidArgument("malformed DecisionTree stream (truncated node)");
    }
    node.distribution.resize(dist_size);
    for (double& p : node.distribution) {
      if (!(is >> p)) throw InvalidArgument("malformed DecisionTree stream (truncated node)");
    }
    const auto count = static_cast<std::int64_t>(node_count);
    if (node.left >= count || node.right >= count) {
      throw InvalidArgument("malformed DecisionTree stream (child index out of range)");
    }
  }
  if (tree.nodes_.empty()) throw InvalidArgument("DecisionTree stream contains no nodes");
  return tree;
}

}  // namespace smartflux::ml
