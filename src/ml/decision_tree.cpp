#include "ml/decision_tree.h"

#include <algorithm>
#include <cmath>
#include <istream>
#include <limits>
#include <numeric>
#include <ostream>

#include "common/error.h"

namespace smartflux::ml {

DecisionTree::DecisionTree(TreeOptions options, std::uint64_t seed)
    : options_(options), rng_(seed) {
  SF_CHECK(options_.max_depth >= 1, "max_depth must be >= 1");
  SF_CHECK(options_.min_samples_leaf >= 1, "min_samples_leaf must be >= 1");
  SF_CHECK(options_.positive_class_weight > 0.0, "positive_class_weight must be positive");
}

double DecisionTree::class_weight(int label) const noexcept {
  return label == 1 ? options_.positive_class_weight : 1.0;
}

void DecisionTree::fit(const Dataset& data) {
  SF_CHECK(!data.empty(), "cannot fit a tree on an empty dataset");
  std::vector<std::size_t> indices(data.size());
  std::iota(indices.begin(), indices.end(), std::size_t{0});
  fit_indices(data, indices);
}

void DecisionTree::fit_indices(const Dataset& data, std::span<const std::size_t> indices) {
  SF_CHECK(!indices.empty(), "cannot fit a tree without samples");
  feature_.clear();
  threshold_.clear();
  left_.clear();
  right_.clear();
  majority_.clear();
  dist_offset_.clear();
  dist_len_.clear();
  dist_pool_.clear();
  depth_ = 0;
  num_features_ = data.num_features();
  num_classes_ = 0;
  for (std::size_t i : indices) {
    num_classes_ = std::max(num_classes_, static_cast<std::size_t>(data.label(i)) + 1);
  }
  std::vector<std::size_t> work(indices.begin(), indices.end());
  BuildScratch scratch;
  scratch.feats.resize(num_features_);
  scratch.sorted.reserve(work.size());
  scratch.parent_counts.resize(num_classes_);
  scratch.left_counts.resize(num_classes_);
  scratch.leaf_counts.resize(num_classes_);
  build(data, work, 0, work.size(), 0, scratch);
}

std::int32_t DecisionTree::push_node() {
  feature_.push_back(-1);
  threshold_.push_back(0.0);
  left_.push_back(-1);
  right_.push_back(-1);
  majority_.push_back(0);
  dist_offset_.push_back(0);
  dist_len_.push_back(0);
  return static_cast<std::int32_t>(feature_.size() - 1);
}

namespace {
/// Weighted Gini impurity of a class-count histogram.
double gini(std::span<const double> counts, double total) noexcept {
  if (total <= 0.0) return 0.0;
  double sum_sq = 0.0;
  for (double c : counts) sum_sq += c * c;
  return 1.0 - sum_sq / (total * total);
}
}  // namespace

std::int32_t DecisionTree::make_leaf(const Dataset& data, std::span<const std::size_t> indices,
                                     BuildScratch& scratch) {
  auto& counts = scratch.leaf_counts;
  std::fill(counts.begin(), counts.end(), 0.0);
  for (std::size_t i : indices) counts[static_cast<std::size_t>(data.label(i))] += 1.0;
  double total = 0.0;
  for (double c : counts) total += c;

  const std::int32_t self = push_node();
  dist_offset_[static_cast<std::size_t>(self)] = static_cast<std::uint32_t>(dist_pool_.size());
  dist_len_[static_cast<std::size_t>(self)] = static_cast<std::uint32_t>(num_classes_);
  double best = -1.0;
  for (std::size_t c = 0; c < num_classes_; ++c) {
    dist_pool_.push_back(counts[c] / total);
    // Majority vote is weight-adjusted so positive_class_weight also shifts
    // the decision boundary, not just split selection.
    const double weighted = counts[c] * class_weight(static_cast<int>(c));
    if (weighted > best) {
      best = weighted;
      majority_[static_cast<std::size_t>(self)] = static_cast<int>(c);
    }
  }
  return self;
}

std::int32_t DecisionTree::build(const Dataset& data, std::vector<std::size_t>& indices,
                                 std::size_t begin, std::size_t end, std::size_t depth,
                                 BuildScratch& scratch) {
  depth_ = std::max(depth_, depth);
  const std::size_t n = end - begin;
  const std::span<const std::size_t> node_indices{indices.data() + begin, n};

  // Stop: depth, size, or purity.
  bool pure = true;
  for (std::size_t k = 1; k < n; ++k) {
    if (data.label(node_indices[k]) != data.label(node_indices[0])) {
      pure = false;
      break;
    }
  }
  if (pure || depth >= options_.max_depth || n < options_.min_samples_split ||
      n < 2 * options_.min_samples_leaf) {
    return make_leaf(data, node_indices, scratch);
  }

  // Candidate features: all, or a random subset of size max_features.
  auto& feats = scratch.feats;
  std::iota(feats.begin(), feats.end(), std::size_t{0});
  std::size_t n_feats = num_features_;
  if (options_.max_features != 0 && options_.max_features < num_features_) {
    rng_.shuffle(feats);
    n_feats = options_.max_features;
  }

  // Parent weighted class counts.
  auto& parent_counts = scratch.parent_counts;
  std::fill(parent_counts.begin(), parent_counts.end(), 0.0);
  for (std::size_t i : node_indices) {
    parent_counts[static_cast<std::size_t>(data.label(i))] += class_weight(data.label(i));
  }
  double parent_total = 0.0;
  for (double c : parent_counts) parent_total += c;
  const double parent_gini = gini(parent_counts, parent_total);

  int best_feature = -1;
  double best_threshold = 0.0;
  double best_gain = 1e-12;

  auto& sorted = scratch.sorted;  // (feature value, label)
  auto& left_counts = scratch.left_counts;

  for (std::size_t fi = 0; fi < n_feats; ++fi) {
    const std::size_t f = feats[fi];
    sorted.clear();
    for (std::size_t i : node_indices) sorted.emplace_back(data.features(i)[f], data.label(i));
    std::sort(sorted.begin(), sorted.end());
    if (sorted.front().first == sorted.back().first) continue;  // constant feature

    std::fill(left_counts.begin(), left_counts.end(), 0.0);
    double left_total = 0.0;
    std::size_t left_n = 0;
    for (std::size_t k = 0; k + 1 < n; ++k) {
      const double w = class_weight(sorted[k].second);
      left_counts[static_cast<std::size_t>(sorted[k].second)] += w;
      left_total += w;
      ++left_n;
      if (sorted[k].first == sorted[k + 1].first) continue;  // not a valid cut point
      if (left_n < options_.min_samples_leaf || n - left_n < options_.min_samples_leaf) continue;

      const double right_total = parent_total - left_total;
      double right_gini_sum = 0.0;
      {
        double sum_sq = 0.0;
        for (std::size_t c = 0; c < num_classes_; ++c) {
          const double rc = parent_counts[c] - left_counts[c];
          sum_sq += rc * rc;
        }
        right_gini_sum = right_total <= 0.0 ? 0.0 : 1.0 - sum_sq / (right_total * right_total);
      }
      const double wl = left_total / parent_total;
      const double wr = right_total / parent_total;
      const double gain = parent_gini - (wl * gini(left_counts, left_total) + wr * right_gini_sum);
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = static_cast<int>(f);
        best_threshold = 0.5 * (sorted[k].first + sorted[k + 1].first);
      }
    }
  }

  if (best_feature < 0) return make_leaf(data, node_indices, scratch);

  // Partition indices in place around the threshold.
  const auto mid_it = std::partition(
      indices.begin() + static_cast<std::ptrdiff_t>(begin),
      indices.begin() + static_cast<std::ptrdiff_t>(end), [&](std::size_t i) {
        return data.features(i)[static_cast<std::size_t>(best_feature)] <= best_threshold;
      });
  const auto mid = static_cast<std::size_t>(mid_it - indices.begin());
  if (mid == begin || mid == end) return make_leaf(data, node_indices, scratch);

  // Reserve this node's slot before recursing so the root stays at index 0.
  const std::int32_t self = push_node();
  const std::int32_t left = build(data, indices, begin, mid, depth + 1, scratch);
  const std::int32_t right = build(data, indices, mid, end, depth + 1, scratch);
  const auto s = static_cast<std::size_t>(self);
  feature_[s] = best_feature;
  threshold_[s] = best_threshold;
  left_[s] = left;
  right_[s] = right;
  return self;
}

std::size_t DecisionTree::descend_from(const double* x) const noexcept {
  std::size_t node = 0;
  while (left_[node] != -1) {
    const bool go_left = x[static_cast<std::size_t>(feature_[node])] <= threshold_[node];
    node = static_cast<std::size_t>(go_left ? left_[node] : right_[node]);
  }
  return node;
}

std::size_t DecisionTree::descend(std::span<const double> x) const {
  if (feature_.empty()) throw StateError("DecisionTree::predict called before fit");
  SF_CHECK(x.size() == num_features_, "feature vector width mismatch");
  return descend_from(x.data());
}

int DecisionTree::predict(std::span<const double> x) const { return majority_[descend(x)]; }

double DecisionTree::predict_score(std::span<const double> x) const {
  const std::size_t leaf = descend(x);
  return dist_len_[leaf] > 1 ? dist_pool_[dist_offset_[leaf] + 1] : 0.0;
}

void DecisionTree::predict_scores(std::span<const double> rows, std::size_t num_rows,
                                  std::span<double> out) const {
  if (num_rows == 0) return;
  if (feature_.empty()) throw StateError("DecisionTree::predict called before fit");
  SF_CHECK(rows.size() == num_rows * num_features_, "row matrix width mismatch");
  SF_CHECK(out.size() >= num_rows, "output span too small");
  // Bounds were checked once for the whole batch; the inner loop is pure
  // array walking.
  for (std::size_t i = 0; i < num_rows; ++i) {
    const std::size_t leaf = descend_from(rows.data() + i * num_features_);
    out[i] = dist_len_[leaf] > 1 ? dist_pool_[dist_offset_[leaf] + 1] : 0.0;
  }
}

std::vector<double> DecisionTree::leaf_distribution(std::span<const double> x) const {
  const std::size_t leaf = descend(x);
  const auto first = dist_pool_.begin() + dist_offset_[leaf];
  return {first, first + dist_len_[leaf]};
}

void DecisionTree::save(std::ostream& os) const {
  if (feature_.empty()) throw StateError("cannot save an unfitted DecisionTree");
  os.precision(17);
  os << "tree " << num_features_ << ' ' << num_classes_ << ' ' << depth_ << ' '
     << feature_.size() << '\n';
  for (std::size_t i = 0; i < feature_.size(); ++i) {
    os << feature_[i] << ' ' << threshold_[i] << ' ' << left_[i] << ' ' << right_[i] << ' '
       << majority_[i] << ' ' << dist_len_[i];
    for (std::uint32_t k = 0; k < dist_len_[i]; ++k) os << ' ' << dist_pool_[dist_offset_[i] + k];
    os << '\n';
  }
}

DecisionTree DecisionTree::load(std::istream& is) {
  std::string magic;
  std::size_t node_count = 0;
  DecisionTree tree;
  if (!(is >> magic >> tree.num_features_ >> tree.num_classes_ >> tree.depth_ >> node_count) ||
      magic != "tree") {
    throw InvalidArgument("malformed DecisionTree stream (bad header)");
  }
  tree.feature_.resize(node_count);
  tree.threshold_.resize(node_count);
  tree.left_.resize(node_count);
  tree.right_.resize(node_count);
  tree.majority_.resize(node_count);
  tree.dist_offset_.resize(node_count);
  tree.dist_len_.resize(node_count);
  for (std::size_t i = 0; i < node_count; ++i) {
    std::size_t dist_size = 0;
    if (!(is >> tree.feature_[i] >> tree.threshold_[i] >> tree.left_[i] >> tree.right_[i] >>
          tree.majority_[i] >> dist_size)) {
      throw InvalidArgument("malformed DecisionTree stream (truncated node)");
    }
    tree.dist_offset_[i] = static_cast<std::uint32_t>(tree.dist_pool_.size());
    tree.dist_len_[i] = static_cast<std::uint32_t>(dist_size);
    for (std::size_t k = 0; k < dist_size; ++k) {
      double p = 0.0;
      if (!(is >> p)) throw InvalidArgument("malformed DecisionTree stream (truncated node)");
      tree.dist_pool_.push_back(p);
    }
    const auto count = static_cast<std::int64_t>(node_count);
    if (tree.left_[i] >= count || tree.right_[i] >= count) {
      throw InvalidArgument("malformed DecisionTree stream (child index out of range)");
    }
  }
  if (tree.feature_.empty()) throw InvalidArgument("DecisionTree stream contains no nodes");
  return tree;
}

}  // namespace smartflux::ml
