file(REMOVE_RECURSE
  "CMakeFiles/workflow_from_xml.dir/workflow_from_xml.cpp.o"
  "CMakeFiles/workflow_from_xml.dir/workflow_from_xml.cpp.o.d"
  "workflow_from_xml"
  "workflow_from_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workflow_from_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
