# Empty compiler generated dependencies file for workflow_from_xml.
# This may be replaced when dependencies are built.
