# Empty dependencies file for fire_stress.
# This may be replaced when dependencies are built.
