file(REMOVE_RECURSE
  "CMakeFiles/fire_stress.dir/fire_stress.cpp.o"
  "CMakeFiles/fire_stress.dir/fire_stress.cpp.o.d"
  "fire_stress"
  "fire_stress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fire_stress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
