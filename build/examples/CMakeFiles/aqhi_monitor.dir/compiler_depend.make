# Empty compiler generated dependencies file for aqhi_monitor.
# This may be replaced when dependencies are built.
