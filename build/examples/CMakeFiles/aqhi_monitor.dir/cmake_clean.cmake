file(REMOVE_RECURSE
  "CMakeFiles/aqhi_monitor.dir/aqhi_monitor.cpp.o"
  "CMakeFiles/aqhi_monitor.dir/aqhi_monitor.cpp.o.d"
  "aqhi_monitor"
  "aqhi_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aqhi_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
