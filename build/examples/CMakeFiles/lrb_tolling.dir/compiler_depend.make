# Empty compiler generated dependencies file for lrb_tolling.
# This may be replaced when dependencies are built.
