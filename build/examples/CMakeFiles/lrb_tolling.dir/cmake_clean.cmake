file(REMOVE_RECURSE
  "CMakeFiles/lrb_tolling.dir/lrb_tolling.cpp.o"
  "CMakeFiles/lrb_tolling.dir/lrb_tolling.cpp.o.d"
  "lrb_tolling"
  "lrb_tolling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lrb_tolling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
