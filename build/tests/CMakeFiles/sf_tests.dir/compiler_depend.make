# Empty compiler generated dependencies file for sf_tests.
# This may be replaced when dependencies are built.
