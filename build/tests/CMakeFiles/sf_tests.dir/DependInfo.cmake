
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/baselines_test.cpp" "tests/CMakeFiles/sf_tests.dir/baselines_test.cpp.o" "gcc" "tests/CMakeFiles/sf_tests.dir/baselines_test.cpp.o.d"
  "/root/repo/tests/change_metric_test.cpp" "tests/CMakeFiles/sf_tests.dir/change_metric_test.cpp.o" "gcc" "tests/CMakeFiles/sf_tests.dir/change_metric_test.cpp.o.d"
  "/root/repo/tests/common_test.cpp" "tests/CMakeFiles/sf_tests.dir/common_test.cpp.o" "gcc" "tests/CMakeFiles/sf_tests.dir/common_test.cpp.o.d"
  "/root/repo/tests/datastore_test.cpp" "tests/CMakeFiles/sf_tests.dir/datastore_test.cpp.o" "gcc" "tests/CMakeFiles/sf_tests.dir/datastore_test.cpp.o.d"
  "/root/repo/tests/experiment_test.cpp" "tests/CMakeFiles/sf_tests.dir/experiment_test.cpp.o" "gcc" "tests/CMakeFiles/sf_tests.dir/experiment_test.cpp.o.d"
  "/root/repo/tests/failure_policy_test.cpp" "tests/CMakeFiles/sf_tests.dir/failure_policy_test.cpp.o" "gcc" "tests/CMakeFiles/sf_tests.dir/failure_policy_test.cpp.o.d"
  "/root/repo/tests/generality_workloads_test.cpp" "tests/CMakeFiles/sf_tests.dir/generality_workloads_test.cpp.o" "gcc" "tests/CMakeFiles/sf_tests.dir/generality_workloads_test.cpp.o.d"
  "/root/repo/tests/hashing_test.cpp" "tests/CMakeFiles/sf_tests.dir/hashing_test.cpp.o" "gcc" "tests/CMakeFiles/sf_tests.dir/hashing_test.cpp.o.d"
  "/root/repo/tests/incremental_monitor_test.cpp" "tests/CMakeFiles/sf_tests.dir/incremental_monitor_test.cpp.o" "gcc" "tests/CMakeFiles/sf_tests.dir/incremental_monitor_test.cpp.o.d"
  "/root/repo/tests/integration_test.cpp" "tests/CMakeFiles/sf_tests.dir/integration_test.cpp.o" "gcc" "tests/CMakeFiles/sf_tests.dir/integration_test.cpp.o.d"
  "/root/repo/tests/knowledge_base_test.cpp" "tests/CMakeFiles/sf_tests.dir/knowledge_base_test.cpp.o" "gcc" "tests/CMakeFiles/sf_tests.dir/knowledge_base_test.cpp.o.d"
  "/root/repo/tests/metric_dsl_test.cpp" "tests/CMakeFiles/sf_tests.dir/metric_dsl_test.cpp.o" "gcc" "tests/CMakeFiles/sf_tests.dir/metric_dsl_test.cpp.o.d"
  "/root/repo/tests/ml_baselines_test.cpp" "tests/CMakeFiles/sf_tests.dir/ml_baselines_test.cpp.o" "gcc" "tests/CMakeFiles/sf_tests.dir/ml_baselines_test.cpp.o.d"
  "/root/repo/tests/ml_dataset_test.cpp" "tests/CMakeFiles/sf_tests.dir/ml_dataset_test.cpp.o" "gcc" "tests/CMakeFiles/sf_tests.dir/ml_dataset_test.cpp.o.d"
  "/root/repo/tests/ml_evaluation_test.cpp" "tests/CMakeFiles/sf_tests.dir/ml_evaluation_test.cpp.o" "gcc" "tests/CMakeFiles/sf_tests.dir/ml_evaluation_test.cpp.o.d"
  "/root/repo/tests/ml_multilabel_test.cpp" "tests/CMakeFiles/sf_tests.dir/ml_multilabel_test.cpp.o" "gcc" "tests/CMakeFiles/sf_tests.dir/ml_multilabel_test.cpp.o.d"
  "/root/repo/tests/ml_persistence_test.cpp" "tests/CMakeFiles/sf_tests.dir/ml_persistence_test.cpp.o" "gcc" "tests/CMakeFiles/sf_tests.dir/ml_persistence_test.cpp.o.d"
  "/root/repo/tests/ml_tree_forest_test.cpp" "tests/CMakeFiles/sf_tests.dir/ml_tree_forest_test.cpp.o" "gcc" "tests/CMakeFiles/sf_tests.dir/ml_tree_forest_test.cpp.o.d"
  "/root/repo/tests/monitoring_test.cpp" "tests/CMakeFiles/sf_tests.dir/monitoring_test.cpp.o" "gcc" "tests/CMakeFiles/sf_tests.dir/monitoring_test.cpp.o.d"
  "/root/repo/tests/predictor_test.cpp" "tests/CMakeFiles/sf_tests.dir/predictor_test.cpp.o" "gcc" "tests/CMakeFiles/sf_tests.dir/predictor_test.cpp.o.d"
  "/root/repo/tests/property_test.cpp" "tests/CMakeFiles/sf_tests.dir/property_test.cpp.o" "gcc" "tests/CMakeFiles/sf_tests.dir/property_test.cpp.o.d"
  "/root/repo/tests/qod_engine_test.cpp" "tests/CMakeFiles/sf_tests.dir/qod_engine_test.cpp.o" "gcc" "tests/CMakeFiles/sf_tests.dir/qod_engine_test.cpp.o.d"
  "/root/repo/tests/scheduler_test.cpp" "tests/CMakeFiles/sf_tests.dir/scheduler_test.cpp.o" "gcc" "tests/CMakeFiles/sf_tests.dir/scheduler_test.cpp.o.d"
  "/root/repo/tests/session_test.cpp" "tests/CMakeFiles/sf_tests.dir/session_test.cpp.o" "gcc" "tests/CMakeFiles/sf_tests.dir/session_test.cpp.o.d"
  "/root/repo/tests/smartflux_engine_test.cpp" "tests/CMakeFiles/sf_tests.dir/smartflux_engine_test.cpp.o" "gcc" "tests/CMakeFiles/sf_tests.dir/smartflux_engine_test.cpp.o.d"
  "/root/repo/tests/thread_pool_test.cpp" "tests/CMakeFiles/sf_tests.dir/thread_pool_test.cpp.o" "gcc" "tests/CMakeFiles/sf_tests.dir/thread_pool_test.cpp.o.d"
  "/root/repo/tests/wms_test.cpp" "tests/CMakeFiles/sf_tests.dir/wms_test.cpp.o" "gcc" "tests/CMakeFiles/sf_tests.dir/wms_test.cpp.o.d"
  "/root/repo/tests/workloads_test.cpp" "tests/CMakeFiles/sf_tests.dir/workloads_test.cpp.o" "gcc" "tests/CMakeFiles/sf_tests.dir/workloads_test.cpp.o.d"
  "/root/repo/tests/xml_test.cpp" "tests/CMakeFiles/sf_tests.dir/xml_test.cpp.o" "gcc" "tests/CMakeFiles/sf_tests.dir/xml_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/sf_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/sf_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/wms/CMakeFiles/sf_wms.dir/DependInfo.cmake"
  "/root/repo/build/src/datastore/CMakeFiles/sf_datastore.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
