
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/baselines.cpp" "src/core/CMakeFiles/sf_core.dir/baselines.cpp.o" "gcc" "src/core/CMakeFiles/sf_core.dir/baselines.cpp.o.d"
  "/root/repo/src/core/change_metric.cpp" "src/core/CMakeFiles/sf_core.dir/change_metric.cpp.o" "gcc" "src/core/CMakeFiles/sf_core.dir/change_metric.cpp.o.d"
  "/root/repo/src/core/experiment.cpp" "src/core/CMakeFiles/sf_core.dir/experiment.cpp.o" "gcc" "src/core/CMakeFiles/sf_core.dir/experiment.cpp.o.d"
  "/root/repo/src/core/incremental_monitor.cpp" "src/core/CMakeFiles/sf_core.dir/incremental_monitor.cpp.o" "gcc" "src/core/CMakeFiles/sf_core.dir/incremental_monitor.cpp.o.d"
  "/root/repo/src/core/knowledge_base.cpp" "src/core/CMakeFiles/sf_core.dir/knowledge_base.cpp.o" "gcc" "src/core/CMakeFiles/sf_core.dir/knowledge_base.cpp.o.d"
  "/root/repo/src/core/metric_dsl.cpp" "src/core/CMakeFiles/sf_core.dir/metric_dsl.cpp.o" "gcc" "src/core/CMakeFiles/sf_core.dir/metric_dsl.cpp.o.d"
  "/root/repo/src/core/monitoring.cpp" "src/core/CMakeFiles/sf_core.dir/monitoring.cpp.o" "gcc" "src/core/CMakeFiles/sf_core.dir/monitoring.cpp.o.d"
  "/root/repo/src/core/predictor.cpp" "src/core/CMakeFiles/sf_core.dir/predictor.cpp.o" "gcc" "src/core/CMakeFiles/sf_core.dir/predictor.cpp.o.d"
  "/root/repo/src/core/qod_engine.cpp" "src/core/CMakeFiles/sf_core.dir/qod_engine.cpp.o" "gcc" "src/core/CMakeFiles/sf_core.dir/qod_engine.cpp.o.d"
  "/root/repo/src/core/session.cpp" "src/core/CMakeFiles/sf_core.dir/session.cpp.o" "gcc" "src/core/CMakeFiles/sf_core.dir/session.cpp.o.d"
  "/root/repo/src/core/smartflux.cpp" "src/core/CMakeFiles/sf_core.dir/smartflux.cpp.o" "gcc" "src/core/CMakeFiles/sf_core.dir/smartflux.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sf_common.dir/DependInfo.cmake"
  "/root/repo/build/src/datastore/CMakeFiles/sf_datastore.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/sf_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/wms/CMakeFiles/sf_wms.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
