file(REMOVE_RECURSE
  "CMakeFiles/sf_core.dir/baselines.cpp.o"
  "CMakeFiles/sf_core.dir/baselines.cpp.o.d"
  "CMakeFiles/sf_core.dir/change_metric.cpp.o"
  "CMakeFiles/sf_core.dir/change_metric.cpp.o.d"
  "CMakeFiles/sf_core.dir/experiment.cpp.o"
  "CMakeFiles/sf_core.dir/experiment.cpp.o.d"
  "CMakeFiles/sf_core.dir/incremental_monitor.cpp.o"
  "CMakeFiles/sf_core.dir/incremental_monitor.cpp.o.d"
  "CMakeFiles/sf_core.dir/knowledge_base.cpp.o"
  "CMakeFiles/sf_core.dir/knowledge_base.cpp.o.d"
  "CMakeFiles/sf_core.dir/metric_dsl.cpp.o"
  "CMakeFiles/sf_core.dir/metric_dsl.cpp.o.d"
  "CMakeFiles/sf_core.dir/monitoring.cpp.o"
  "CMakeFiles/sf_core.dir/monitoring.cpp.o.d"
  "CMakeFiles/sf_core.dir/predictor.cpp.o"
  "CMakeFiles/sf_core.dir/predictor.cpp.o.d"
  "CMakeFiles/sf_core.dir/qod_engine.cpp.o"
  "CMakeFiles/sf_core.dir/qod_engine.cpp.o.d"
  "CMakeFiles/sf_core.dir/session.cpp.o"
  "CMakeFiles/sf_core.dir/session.cpp.o.d"
  "CMakeFiles/sf_core.dir/smartflux.cpp.o"
  "CMakeFiles/sf_core.dir/smartflux.cpp.o.d"
  "libsf_core.a"
  "libsf_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sf_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
