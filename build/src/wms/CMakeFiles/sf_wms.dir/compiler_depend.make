# Empty compiler generated dependencies file for sf_wms.
# This may be replaced when dependencies are built.
