file(REMOVE_RECURSE
  "libsf_wms.a"
)
