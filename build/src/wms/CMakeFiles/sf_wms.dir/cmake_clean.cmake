file(REMOVE_RECURSE
  "CMakeFiles/sf_wms.dir/engine.cpp.o"
  "CMakeFiles/sf_wms.dir/engine.cpp.o.d"
  "CMakeFiles/sf_wms.dir/scheduler.cpp.o"
  "CMakeFiles/sf_wms.dir/scheduler.cpp.o.d"
  "CMakeFiles/sf_wms.dir/workflow_spec.cpp.o"
  "CMakeFiles/sf_wms.dir/workflow_spec.cpp.o.d"
  "CMakeFiles/sf_wms.dir/xml.cpp.o"
  "CMakeFiles/sf_wms.dir/xml.cpp.o.d"
  "CMakeFiles/sf_wms.dir/xml_loader.cpp.o"
  "CMakeFiles/sf_wms.dir/xml_loader.cpp.o.d"
  "libsf_wms.a"
  "libsf_wms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sf_wms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
