
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wms/engine.cpp" "src/wms/CMakeFiles/sf_wms.dir/engine.cpp.o" "gcc" "src/wms/CMakeFiles/sf_wms.dir/engine.cpp.o.d"
  "/root/repo/src/wms/scheduler.cpp" "src/wms/CMakeFiles/sf_wms.dir/scheduler.cpp.o" "gcc" "src/wms/CMakeFiles/sf_wms.dir/scheduler.cpp.o.d"
  "/root/repo/src/wms/workflow_spec.cpp" "src/wms/CMakeFiles/sf_wms.dir/workflow_spec.cpp.o" "gcc" "src/wms/CMakeFiles/sf_wms.dir/workflow_spec.cpp.o.d"
  "/root/repo/src/wms/xml.cpp" "src/wms/CMakeFiles/sf_wms.dir/xml.cpp.o" "gcc" "src/wms/CMakeFiles/sf_wms.dir/xml.cpp.o.d"
  "/root/repo/src/wms/xml_loader.cpp" "src/wms/CMakeFiles/sf_wms.dir/xml_loader.cpp.o" "gcc" "src/wms/CMakeFiles/sf_wms.dir/xml_loader.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sf_common.dir/DependInfo.cmake"
  "/root/repo/build/src/datastore/CMakeFiles/sf_datastore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
