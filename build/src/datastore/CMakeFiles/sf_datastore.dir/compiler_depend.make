# Empty compiler generated dependencies file for sf_datastore.
# This may be replaced when dependencies are built.
