file(REMOVE_RECURSE
  "libsf_datastore.a"
)
