file(REMOVE_RECURSE
  "CMakeFiles/sf_datastore.dir/datastore.cpp.o"
  "CMakeFiles/sf_datastore.dir/datastore.cpp.o.d"
  "CMakeFiles/sf_datastore.dir/table.cpp.o"
  "CMakeFiles/sf_datastore.dir/table.cpp.o.d"
  "libsf_datastore.a"
  "libsf_datastore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sf_datastore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
