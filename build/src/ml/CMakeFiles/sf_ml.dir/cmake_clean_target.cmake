file(REMOVE_RECURSE
  "libsf_ml.a"
)
