file(REMOVE_RECURSE
  "CMakeFiles/sf_ml.dir/dataset.cpp.o"
  "CMakeFiles/sf_ml.dir/dataset.cpp.o.d"
  "CMakeFiles/sf_ml.dir/decision_tree.cpp.o"
  "CMakeFiles/sf_ml.dir/decision_tree.cpp.o.d"
  "CMakeFiles/sf_ml.dir/evaluation.cpp.o"
  "CMakeFiles/sf_ml.dir/evaluation.cpp.o.d"
  "CMakeFiles/sf_ml.dir/linear.cpp.o"
  "CMakeFiles/sf_ml.dir/linear.cpp.o.d"
  "CMakeFiles/sf_ml.dir/mlp.cpp.o"
  "CMakeFiles/sf_ml.dir/mlp.cpp.o.d"
  "CMakeFiles/sf_ml.dir/multilabel.cpp.o"
  "CMakeFiles/sf_ml.dir/multilabel.cpp.o.d"
  "CMakeFiles/sf_ml.dir/naive_bayes.cpp.o"
  "CMakeFiles/sf_ml.dir/naive_bayes.cpp.o.d"
  "CMakeFiles/sf_ml.dir/random_forest.cpp.o"
  "CMakeFiles/sf_ml.dir/random_forest.cpp.o.d"
  "libsf_ml.a"
  "libsf_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sf_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
