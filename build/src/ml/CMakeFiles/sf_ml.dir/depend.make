# Empty dependencies file for sf_ml.
# This may be replaced when dependencies are built.
