
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/dataset.cpp" "src/ml/CMakeFiles/sf_ml.dir/dataset.cpp.o" "gcc" "src/ml/CMakeFiles/sf_ml.dir/dataset.cpp.o.d"
  "/root/repo/src/ml/decision_tree.cpp" "src/ml/CMakeFiles/sf_ml.dir/decision_tree.cpp.o" "gcc" "src/ml/CMakeFiles/sf_ml.dir/decision_tree.cpp.o.d"
  "/root/repo/src/ml/evaluation.cpp" "src/ml/CMakeFiles/sf_ml.dir/evaluation.cpp.o" "gcc" "src/ml/CMakeFiles/sf_ml.dir/evaluation.cpp.o.d"
  "/root/repo/src/ml/linear.cpp" "src/ml/CMakeFiles/sf_ml.dir/linear.cpp.o" "gcc" "src/ml/CMakeFiles/sf_ml.dir/linear.cpp.o.d"
  "/root/repo/src/ml/mlp.cpp" "src/ml/CMakeFiles/sf_ml.dir/mlp.cpp.o" "gcc" "src/ml/CMakeFiles/sf_ml.dir/mlp.cpp.o.d"
  "/root/repo/src/ml/multilabel.cpp" "src/ml/CMakeFiles/sf_ml.dir/multilabel.cpp.o" "gcc" "src/ml/CMakeFiles/sf_ml.dir/multilabel.cpp.o.d"
  "/root/repo/src/ml/naive_bayes.cpp" "src/ml/CMakeFiles/sf_ml.dir/naive_bayes.cpp.o" "gcc" "src/ml/CMakeFiles/sf_ml.dir/naive_bayes.cpp.o.d"
  "/root/repo/src/ml/random_forest.cpp" "src/ml/CMakeFiles/sf_ml.dir/random_forest.cpp.o" "gcc" "src/ml/CMakeFiles/sf_ml.dir/random_forest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
