file(REMOVE_RECURSE
  "libsf_common.a"
)
