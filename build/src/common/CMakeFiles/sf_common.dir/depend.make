# Empty dependencies file for sf_common.
# This may be replaced when dependencies are built.
