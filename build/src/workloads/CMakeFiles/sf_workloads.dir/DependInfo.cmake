
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/aqhi/aqhi.cpp" "src/workloads/CMakeFiles/sf_workloads.dir/aqhi/aqhi.cpp.o" "gcc" "src/workloads/CMakeFiles/sf_workloads.dir/aqhi/aqhi.cpp.o.d"
  "/root/repo/src/workloads/cybershake/cybershake.cpp" "src/workloads/CMakeFiles/sf_workloads.dir/cybershake/cybershake.cpp.o" "gcc" "src/workloads/CMakeFiles/sf_workloads.dir/cybershake/cybershake.cpp.o.d"
  "/root/repo/src/workloads/firerisk/firerisk.cpp" "src/workloads/CMakeFiles/sf_workloads.dir/firerisk/firerisk.cpp.o" "gcc" "src/workloads/CMakeFiles/sf_workloads.dir/firerisk/firerisk.cpp.o.d"
  "/root/repo/src/workloads/lrb/lrb.cpp" "src/workloads/CMakeFiles/sf_workloads.dir/lrb/lrb.cpp.o" "gcc" "src/workloads/CMakeFiles/sf_workloads.dir/lrb/lrb.cpp.o.d"
  "/root/repo/src/workloads/pagerank/pagerank.cpp" "src/workloads/CMakeFiles/sf_workloads.dir/pagerank/pagerank.cpp.o" "gcc" "src/workloads/CMakeFiles/sf_workloads.dir/pagerank/pagerank.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sf_common.dir/DependInfo.cmake"
  "/root/repo/build/src/datastore/CMakeFiles/sf_datastore.dir/DependInfo.cmake"
  "/root/repo/build/src/wms/CMakeFiles/sf_wms.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
