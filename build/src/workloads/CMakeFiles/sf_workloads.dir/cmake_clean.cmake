file(REMOVE_RECURSE
  "CMakeFiles/sf_workloads.dir/aqhi/aqhi.cpp.o"
  "CMakeFiles/sf_workloads.dir/aqhi/aqhi.cpp.o.d"
  "CMakeFiles/sf_workloads.dir/cybershake/cybershake.cpp.o"
  "CMakeFiles/sf_workloads.dir/cybershake/cybershake.cpp.o.d"
  "CMakeFiles/sf_workloads.dir/firerisk/firerisk.cpp.o"
  "CMakeFiles/sf_workloads.dir/firerisk/firerisk.cpp.o.d"
  "CMakeFiles/sf_workloads.dir/lrb/lrb.cpp.o"
  "CMakeFiles/sf_workloads.dir/lrb/lrb.cpp.o.d"
  "CMakeFiles/sf_workloads.dir/pagerank/pagerank.cpp.o"
  "CMakeFiles/sf_workloads.dir/pagerank/pagerank.cpp.o.d"
  "libsf_workloads.a"
  "libsf_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sf_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
