# Empty compiler generated dependencies file for ablation_functions.
# This may be replaced when dependencies are built.
