file(REMOVE_RECURSE
  "../bench/ablation_functions"
  "../bench/ablation_functions.pdb"
  "CMakeFiles/ablation_functions.dir/ablation_functions.cpp.o"
  "CMakeFiles/ablation_functions.dir/ablation_functions.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_functions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
