# Empty dependencies file for fig8_learning_curves.
# This may be replaced when dependencies are built.
