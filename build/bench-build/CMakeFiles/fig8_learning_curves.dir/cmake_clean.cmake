file(REMOVE_RECURSE
  "../bench/fig8_learning_curves"
  "../bench/fig8_learning_curves.pdb"
  "CMakeFiles/fig8_learning_curves.dir/fig8_learning_curves.cpp.o"
  "CMakeFiles/fig8_learning_curves.dir/fig8_learning_curves.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_learning_curves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
