file(REMOVE_RECURSE
  "../bench/fig7_correlation"
  "../bench/fig7_correlation.pdb"
  "CMakeFiles/fig7_correlation.dir/fig7_correlation.cpp.o"
  "CMakeFiles/fig7_correlation.dir/fig7_correlation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_correlation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
