# Empty compiler generated dependencies file for fig10_confidence.
# This may be replaced when dependencies are built.
