file(REMOVE_RECURSE
  "../bench/fig10_confidence"
  "../bench/fig10_confidence.pdb"
  "CMakeFiles/fig10_confidence.dir/fig10_confidence.cpp.o"
  "CMakeFiles/fig10_confidence.dir/fig10_confidence.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_confidence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
