
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/tab_classifier_selection.cpp" "bench-build/CMakeFiles/tab_classifier_selection.dir/tab_classifier_selection.cpp.o" "gcc" "bench-build/CMakeFiles/tab_classifier_selection.dir/tab_classifier_selection.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/sf_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/sf_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/wms/CMakeFiles/sf_wms.dir/DependInfo.cmake"
  "/root/repo/build/src/datastore/CMakeFiles/sf_datastore.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
