# Empty compiler generated dependencies file for tab_classifier_selection.
# This may be replaced when dependencies are built.
