file(REMOVE_RECURSE
  "../bench/tab_classifier_selection"
  "../bench/tab_classifier_selection.pdb"
  "CMakeFiles/tab_classifier_selection.dir/tab_classifier_selection.cpp.o"
  "CMakeFiles/tab_classifier_selection.dir/tab_classifier_selection.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_classifier_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
