# Empty compiler generated dependencies file for fig3_sensor_traces.
# This may be replaced when dependencies are built.
