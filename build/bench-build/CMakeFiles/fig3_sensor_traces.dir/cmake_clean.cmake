file(REMOVE_RECURSE
  "../bench/fig3_sensor_traces"
  "../bench/fig3_sensor_traces.pdb"
  "CMakeFiles/fig3_sensor_traces.dir/fig3_sensor_traces.cpp.o"
  "CMakeFiles/fig3_sensor_traces.dir/fig3_sensor_traces.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_sensor_traces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
