# Empty compiler generated dependencies file for fig11_baselines.
# This may be replaced when dependencies are built.
