file(REMOVE_RECURSE
  "../bench/fig11_baselines"
  "../bench/fig11_baselines.pdb"
  "CMakeFiles/fig11_baselines.dir/fig11_baselines.cpp.o"
  "CMakeFiles/fig11_baselines.dir/fig11_baselines.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
