file(REMOVE_RECURSE
  "../bench/fig12_executions"
  "../bench/fig12_executions.pdb"
  "CMakeFiles/fig12_executions.dir/fig12_executions.cpp.o"
  "CMakeFiles/fig12_executions.dir/fig12_executions.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_executions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
