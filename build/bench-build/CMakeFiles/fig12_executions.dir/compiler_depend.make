# Empty compiler generated dependencies file for fig12_executions.
# This may be replaced when dependencies are built.
