file(REMOVE_RECURSE
  "../bench/ablation_accumulation"
  "../bench/ablation_accumulation.pdb"
  "CMakeFiles/ablation_accumulation.dir/ablation_accumulation.cpp.o"
  "CMakeFiles/ablation_accumulation.dir/ablation_accumulation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_accumulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
