file(REMOVE_RECURSE
  "../bench/overhead_micro"
  "../bench/overhead_micro.pdb"
  "CMakeFiles/overhead_micro.dir/overhead_micro.cpp.o"
  "CMakeFiles/overhead_micro.dir/overhead_micro.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overhead_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
