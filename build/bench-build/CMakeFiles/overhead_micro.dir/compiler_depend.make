# Empty compiler generated dependencies file for overhead_micro.
# This may be replaced when dependencies are built.
