# Empty compiler generated dependencies file for fig9_error_tracking.
# This may be replaced when dependencies are built.
