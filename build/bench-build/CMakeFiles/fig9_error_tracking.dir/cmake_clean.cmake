file(REMOVE_RECURSE
  "../bench/fig9_error_tracking"
  "../bench/fig9_error_tracking.pdb"
  "CMakeFiles/fig9_error_tracking.dir/fig9_error_tracking.cpp.o"
  "CMakeFiles/fig9_error_tracking.dir/fig9_error_tracking.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_error_tracking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
